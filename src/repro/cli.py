"""Command-line interface.

Everything a user needs to poke the reproduction without writing code::

    repro workload                      # list the 25 templates
    repro sql 71                        # one SQL instance of template 71
    repro isolated 26                   # cold-cache isolated run
    repro mix 26 71                     # steady-state mix execution
    repro explain 26 71                 # who slows whom: blame matrix
    repro spoiler 22 --mpl 5            # worst-case latency at MPL 5
    repro train --out campaign.pkl      # collect the sampling campaign
    repro predict campaign.pkl 26 65    # known-template prediction
    repro predict-new campaign.pkl 71 26   # Fig. 5 pipeline (71 is new)
    repro pack campaign.pkl --out model.json   # registry artifact
    repro serve model.json --port 8181  # online prediction service
    repro load-test model.json          # p50/p99/QPS under load
    repro stats 127.0.0.1:8181          # live server counters/metrics
    repro lifecycle run --state-dir st  # drift -> retrain -> promote demo
    repro lifecycle status --state-dir st   # deployment state + ledger
    repro lifecycle promote cand.json --state-dir st  # forced promotion
    repro lifecycle rollback --state-dir st # swap the previous model back
    repro sched run --trace bursty --policy predictive  # one replay
    repro sched compare                 # 3 trace families x 3 policies
    repro eval run --seed 7 --json      # ranking-quality scenario matrix
    repro eval compare                  # qs vs knn on one ground truth
    repro experiment table2             # regenerate one table/figure
    repro report                        # the full EXPERIMENTS.md content

Installed as the ``repro`` console script; also runs as
``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from .core.contender import Contender, SpoilerMode
from .core.training import (
    TrainingData,
    collect_training_data,
    measure_spoiler_curve,
    measure_template_profile,
)
from .engine.spoiler import measure_spoiler_latency
from .errors import ReproError
from .sampling.steady_state import run_steady_state
from .sched.policies import POLICY_NAMES
from .sched.traces import TRACE_KINDS
from .units import fmt_bytes, fmt_duration
from .workload.catalog import TemplateCatalog
from .workload.sql import render_sql

#: Backend labels for the ``eval`` subcommand (mirrors
#: :data:`repro.eval.backends.BACKEND_NAMES`; kept literal so parser
#: construction stays import-light).
_EVAL_BACKENDS = ("qs", "knn")

#: Experiment-name aliases for the ``experiment`` subcommand.
EXPERIMENTS = {
    "fig1": "fig1_lhs",
    "fig2": "fig2_steady_state",
    "fig4": "fig4_coefficients",
    "fig6": "fig6_spoiler_growth",
    "fig7": "fig7_cqi_mpl4",
    "fig8": "fig8_known_unknown",
    "fig9": "fig9_spoiler_prediction",
    "fig10": "fig10_new_templates",
    "table2": "table2_cqi",
    "ext-operator": "ext_operator_model",
    "ext-growth": "ext_database_growth",
    "ext-distributed": "ext_distributed",
    "table3": "table3_features",
    "sec54": "sec54_sampling_cost",
    "prior-work": "baseline_prior_work",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contender (EDBT 2014) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workload", help="describe the 25-template workload")

    p = sub.add_parser("sql", help="render one SQL instance of a template")
    p.add_argument("template", type=int)
    p.add_argument("--seed", type=int, default=None)

    p = sub.add_parser("isolated", help="run a template alone (cold cache)")
    p.add_argument("template", type=int)

    p = sub.add_parser("mix", help="run a mix in steady state")
    p.add_argument("templates", type=int, nargs="+")
    p.add_argument("--samples", type=int, default=5)

    p = sub.add_parser(
        "explain",
        help="decompose each mix member's slowdown into per-co-runner, "
        "per-resource blame",
    )
    p.add_argument("templates", type=int, nargs="+")
    p.add_argument(
        "--samples",
        type=int,
        default=None,
        help="steady-state samples per stream (default: config)",
    )
    p.add_argument(
        "--top-k",
        type=int,
        default=None,
        dest="top_k",
        help="co-runners listed in the ranking summary (default: config)",
    )
    p.add_argument("--json", action="store_true", dest="as_json")

    p = sub.add_parser("spoiler", help="measure spoiler latency")
    p.add_argument("template", type=int)
    p.add_argument("--mpl", type=int, default=2)

    p = sub.add_parser("train", help="collect the sampling campaign")
    p.add_argument("--out", type=Path, required=True)
    p.add_argument("--mpls", type=str, default="2,3,4,5")
    p.add_argument("--lhs-runs", type=int, default=4)
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (1 = in-process, 0 = all cores); "
        "results are identical for any value",
    )
    p.add_argument(
        "--seed", type=int, default=None, help="campaign seed override"
    )
    p.add_argument(
        "--engine",
        choices=("virtual_time", "batched", "reference"),
        default=None,
        help="simulation engine; 'batched' groups runs into lockstep "
        "batches with bit-identical results, faster campaigns",
    )

    p = sub.add_parser("predict", help="predict a known template in a mix")
    p.add_argument("data", type=Path)
    p.add_argument("primary", type=int)
    p.add_argument("concurrent", type=int, nargs="+")

    p = sub.add_parser(
        "predict-new", help="predict a new template (Fig. 5 pipeline)"
    )
    p.add_argument("data", type=Path)
    p.add_argument("template", type=int)
    p.add_argument("concurrent", type=int, nargs="+")
    p.add_argument(
        "--spoiler",
        choices=[m.value for m in SpoilerMode],
        default=SpoilerMode.KNN.value,
    )

    p = sub.add_parser("diagnose", help="QS model diagnostics per template")
    p.add_argument("data", type=Path)
    p.add_argument("--mpl", type=int, default=2)

    p = sub.add_parser(
        "pack", help="pack a training campaign into a registry artifact"
    )
    p.add_argument("data", type=Path, help="campaign pickle from `repro train`")
    p.add_argument("--out", type=Path, required=True)
    p.add_argument("--knn-k", type=int, default=3)

    p = sub.add_parser("serve", help="serve predictions from an artifact")
    p.add_argument("artifact", type=Path)
    p.add_argument("--host", type=str, default=None)
    p.add_argument("--port", type=int, default=None)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="HTTP worker processes sharing the port (default: CPU "
        "count); falls back to the threaded single-process server "
        "when fork/SO_REUSEPORT are unavailable",
    )
    p.add_argument(
        "--batch-workers",
        type=int,
        default=None,
        help="batch-evaluation threads inside each worker",
    )
    p.add_argument("--cache-entries", type=int, default=None)
    p.add_argument("--cache-ttl", type=float, default=None)
    p.add_argument(
        "--verify",
        action="store_true",
        help="refit the stored coefficients on load and require agreement",
    )

    p = sub.add_parser(
        "load-test", help="drive a server (or artifact) and report p50/p99/QPS"
    )
    p.add_argument(
        "artifact",
        type=Path,
        nargs="?",
        default=None,
        help="artifact to serve in-process (omit when using --url)",
    )
    p.add_argument("--url", type=str, default=None, help="host:port of a running server")
    p.add_argument(
        "--connections",
        "--submitters",
        dest="connections",
        type=int,
        default=8,
        help="concurrent keep-alive connections per client process",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=1,
        help="client processes to spread the connections across",
    )
    p.add_argument(
        "--batch",
        type=int,
        default=1,
        help="items per predict-batch round trip (1 = plain predict)",
    )
    p.add_argument("--requests", type=int, default=400)
    p.add_argument("--pool", type=int, default=16, help="distinct mixes in the workload")
    p.add_argument("--mpl", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "stats", help="operational stats of a running prediction server"
    )
    p.add_argument("url", type=str, help="host:port of a running server")
    p.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the raw /v1/stats JSON document",
    )
    p.add_argument(
        "--prometheus",
        action="store_true",
        help="print the raw /metrics Prometheus exposition",
    )

    p = sub.add_parser(
        "lifecycle",
        help="model lifecycle: drift scenario, deployment status, "
        "promotion, rollback",
    )
    lsub = p.add_subparsers(dest="lifecycle_command", required=True)

    lp = lsub.add_parser(
        "run",
        help="run the growth scenario: drift detection, scoped retrain, "
        "gated promotion",
    )
    lp.add_argument(
        "--state-dir",
        type=Path,
        required=True,
        help="deployment state directory (artifacts + promotion ledger)",
    )
    lp.add_argument("--seed", type=int, default=20140324)
    lp.add_argument(
        "--scale-after",
        type=float,
        default=140.0,
        help="scale factor the database grows to mid-stream",
    )
    lp.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="campaign worker processes (0 = all cores)",
    )
    lp.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the full scenario report as JSON",
    )

    lp = lsub.add_parser(
        "status", help="deployment state and promotion ledger"
    )
    lp.add_argument("--state-dir", type=Path, required=True)
    lp.add_argument("--json", action="store_true", dest="as_json")

    lp = lsub.add_parser(
        "promote",
        help="force-promote a candidate artifact (bypasses the shadow gate)",
    )
    lp.add_argument("candidate", type=Path, help="candidate artifact file")
    lp.add_argument("--state-dir", type=Path, required=True)

    lp = lsub.add_parser(
        "rollback", help="swap the previous artifact back into the slot"
    )
    lp.add_argument("--state-dir", type=Path, required=True)

    p = sub.add_parser(
        "sched", help="replay arrival traces under scheduling policies"
    )
    ssub = p.add_subparsers(dest="sched_command", required=True)

    def _sched_common(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--data",
            type=Path,
            default=None,
            help="campaign pickle from `repro train`; when omitted a "
            "small campaign is collected in-process",
        )
        sp.add_argument(
            "--templates",
            type=str,
            default=None,
            help="comma-separated template ids (default: the campaign's, "
            "or a diverse 7-template subset)",
        )
        sp.add_argument(
            "--rate",
            type=float,
            default=1.0 / 120.0,
            help="mean arrival rate, queries/second",
        )
        sp.add_argument("--count", type=int, default=30, help="arrivals")
        sp.add_argument("--seed", type=int, default=0, help="trace seed")
        sp.add_argument(
            "--max-mpl", type=int, default=3, help="execution slots"
        )
        sp.add_argument(
            "--sla-factor",
            type=float,
            default=2.5,
            help="admission SLA as a multiple of isolated latency",
        )
        sp.add_argument(
            "--window",
            type=int,
            default=8,
            help="predictive policy queue-search depth",
        )
        sp.add_argument("--json", action="store_true", help="JSON output")

    sp = ssub.add_parser("run", help="replay one trace under one policy")
    sp.add_argument("--trace", choices=list(TRACE_KINDS), default="poisson")
    sp.add_argument(
        "--policy", choices=list(POLICY_NAMES), default="predictive"
    )
    _sched_common(sp)

    sp = ssub.add_parser(
        "compare", help="replay trace families under every policy"
    )
    sp.add_argument(
        "--traces",
        type=str,
        default=",".join(TRACE_KINDS),
        help="comma-separated trace kinds",
    )
    sp.add_argument(
        "--policies",
        type=str,
        default=",".join(POLICY_NAMES),
        help="comma-separated policy names",
    )
    _sched_common(sp)

    p = sub.add_parser(
        "eval",
        help="ranking-quality evaluation over a scenario matrix "
        "(pairwise accuracy, Kendall tau, q-error)",
    )
    esub = p.add_subparsers(dest="eval_command", required=True)

    def _eval_common(ep: argparse.ArgumentParser) -> None:
        ep.add_argument(
            "--data",
            type=Path,
            default=None,
            help="campaign pickle from `repro train`; when omitted a "
            "small campaign is collected in-process",
        )
        ep.add_argument(
            "--templates",
            type=str,
            default=None,
            help="comma-separated template ids (default: the campaign's, "
            "or a diverse 7-template subset)",
        )
        ep.add_argument(
            "--seed",
            type=int,
            default=7,
            help="matrix + ground-truth seed; the whole report "
            "reproduces from it",
        )
        ep.add_argument(
            "--mpls",
            type=str,
            default="2,3",
            help="comma-separated MPLs the matrix sweeps",
        )
        ep.add_argument(
            "--sets", type=int, default=3, help="candidate sets per scenario"
        )
        ep.add_argument(
            "--window", type=int, default=4, help="candidates per set"
        )
        ep.add_argument(
            "--objective",
            choices=("makespan", "sum"),
            default="makespan",
            help="scheduler objective scored against ground truth",
        )
        ep.add_argument(
            "--engine",
            choices=("virtual_time", "batched", "reference"),
            default=None,
            help="simulation engine for ground truth (and the "
            "in-process campaign)",
        )
        ep.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="ground-truth worker processes (1 = in-process, 0 = "
            "all cores); results are identical for any value",
        )
        ep.add_argument("--json", action="store_true", help="JSON output")

    ep = esub.add_parser(
        "run", help="score one predictor on the scenario matrix"
    )
    ep.add_argument(
        "--predictor",
        choices=list(_EVAL_BACKENDS),
        default="qs",
        help="prediction backend to score",
    )
    _eval_common(ep)

    ep = esub.add_parser(
        "compare", help="score several predictors on one ground truth"
    )
    ep.add_argument(
        "--predictors",
        type=str,
        default=",".join(_EVAL_BACKENDS),
        help="comma-separated backend names",
    )
    _eval_common(ep)

    p = sub.add_parser("experiment", help="run one experiment runner")
    p.add_argument("name", choices=sorted(EXPERIMENTS))
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="campaign worker processes (0 = all cores)",
    )

    p = sub.add_parser("report", help="regenerate the full report")
    p.add_argument("--skip-ml", action="store_true")
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="campaign worker processes (0 = all cores)",
    )

    return parser


def _cmd_workload(_: argparse.Namespace) -> int:
    catalog = TemplateCatalog()
    print(catalog.describe())
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed) if args.seed is not None else None
    print(render_sql(args.template, rng))
    return 0


def _cmd_isolated(args: argparse.Namespace) -> int:
    catalog = TemplateCatalog()
    profile = measure_template_profile(catalog, args.template)
    print(f"template          : {args.template}")
    print(f"isolated latency  : {fmt_duration(profile.isolated_latency)}")
    print(f"I/O fraction      : {profile.io_fraction:.1%}")
    print(f"working set       : {fmt_bytes(profile.working_set_bytes)}")
    print(f"records accessed  : {profile.records_accessed:,.0f}")
    print(f"plan steps        : {profile.plan_steps}")
    print(f"fact scans        : {', '.join(sorted(profile.fact_scans)) or '-'}")
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    from .sampling.steady_state import SteadyStateConfig

    catalog = TemplateCatalog()
    cfg = SteadyStateConfig(samples_per_stream=args.samples)
    result = run_steady_state(catalog, tuple(args.templates), config=cfg)
    print(f"mix {result.mix} (steady state, {args.samples} samples/stream)")
    for template in sorted(set(result.mix)):
        latency = result.mean_latency(template)
        isolated = catalog.run_isolated(template).latency
        print(
            f"  T{template:<3} mean latency {fmt_duration(latency):>10}  "
            f"({latency / isolated:4.2f}x isolated)"
        )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json as _json

    from .explain import explain_mix

    catalog = TemplateCatalog()
    report = explain_mix(
        catalog, tuple(args.templates), samples_per_stream=args.samples
    )
    if args.as_json:
        print(_json.dumps(report.to_doc(), indent=2, sort_keys=True))
        return 0
    top_k = (
        args.top_k if args.top_k is not None else catalog.config.explain.top_k
    )
    print(f"mix {report.mix} blame attribution (seconds; + delays, - speeds up)")
    print(report.format_table())
    print()
    for entry in report.templates:
        ranked = ", ".join(
            f"t{co} ({seconds:+.1f}s)"
            for co, seconds in entry.ranked()[:top_k]
        )
        print(f"  t{entry.template_id} top blamed: {ranked or '-'}")
    print(f"  conservation residual: {report.max_residual:.2e}")
    return 0


def _cmd_spoiler(args: argparse.Namespace) -> int:
    catalog = TemplateCatalog()
    stats = measure_spoiler_latency(
        catalog.profile(args.template), args.mpl, catalog.config
    )
    isolated = catalog.run_isolated(args.template).latency
    print(
        f"T{args.template} spoiler latency at MPL {args.mpl}: "
        f"{fmt_duration(stats.latency)} ({stats.latency / isolated:.2f}x isolated)"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    mpls = tuple(int(m) for m in args.mpls.split(","))
    if args.engine:
        from .config import SimulationConfig, SystemConfig

        catalog = TemplateCatalog(
            config=SystemConfig(
                simulation=SimulationConfig(engine=args.engine)
            )
        )
    else:
        catalog = TemplateCatalog()
    print(f"collecting campaign for MPLs {mpls} (LHS runs: {args.lhs_runs})...")
    data = collect_training_data(
        catalog,
        mpls=mpls,
        lhs_runs_per_mpl=args.lhs_runs,
        seed=args.seed,
        jobs=args.jobs,
    )
    data.save(args.out)
    observations = sum(len(v) for v in data.observations.values())
    print(
        f"saved {args.out}: {len(data.profiles)} templates, "
        f"{observations} mix observations"
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    data = TrainingData.load(args.data)
    contender = Contender(data)
    mix = (args.primary, *args.concurrent)
    latency = contender.predict_known(args.primary, mix)
    print(
        f"T{args.primary} in mix {mix}: predicted {fmt_duration(latency)} "
        f"(isolated {fmt_duration(data.profile(args.primary).isolated_latency)})"
    )
    return 0


def _cmd_predict_new(args: argparse.Namespace) -> int:
    data = TrainingData.load(args.data)
    if args.template in data.profiles:
        # Honour the 'new template' semantics even when the campaign
        # happens to contain it: scrub it from the training side.
        data = data.restricted_to(
            [t for t in data.template_ids if t != args.template]
        )
    contender = Contender(data)
    catalog = TemplateCatalog()
    profile = measure_template_profile(catalog, args.template)
    mode = SpoilerMode(args.spoiler)
    mix = (args.template, *args.concurrent)
    measured = None
    if mode is SpoilerMode.MEASURED:
        measured = measure_spoiler_curve(catalog, args.template, [len(mix)])
    latency = contender.predict_new(
        profile, mix, spoiler_mode=mode, measured_spoiler=measured
    )
    print(
        f"new T{args.template} in mix {mix}: predicted {fmt_duration(latency)} "
        f"(isolated {fmt_duration(profile.isolated_latency)}, "
        f"spoiler mode {mode.value})"
    )
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from .core.diagnostics import diagnose_workload

    data = TrainingData.load(args.data)
    contender = Contender(data)
    print(diagnose_workload(contender, mpl=args.mpl).format_table())
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from .core.contender import ContenderOptions
    from .serving.registry import save_artifact

    data = TrainingData.load(args.data)
    contender = Contender(data, ContenderOptions(knn_k=args.knn_k))
    info = save_artifact(contender, args.out)
    print(
        f"packed {args.out}: {len(info.template_ids)} templates, "
        f"QS models at MPLs {list(info.qs_mpls)}, version {info.version}"
    )
    return 0


def _serving_config(args: argparse.Namespace):
    from dataclasses import replace

    from .config import DEFAULT_CONFIG

    overrides = {
        name: value
        for name, value in (
            ("host", getattr(args, "host", None)),
            ("port", getattr(args, "port", None)),
            ("worker_processes", getattr(args, "workers", None)),
            ("workers", getattr(args, "batch_workers", None)),
            ("cache_entries", getattr(args, "cache_entries", None)),
            ("cache_ttl", getattr(args, "cache_ttl", None)),
        )
        if value is not None
    }
    return replace(DEFAULT_CONFIG.serving, **overrides)


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    from dataclasses import replace

    from .serving.frontend import MultiWorkerServer, multiworker_supported
    from .serving.server import PredictionServer

    config = _serving_config(args)
    if args.workers is None:
        # Default the front end to one worker process per CPU.
        config = replace(config, worker_processes=os.cpu_count() or 1)

    if config.worker_processes > 1:
        supported, reason = multiworker_supported()
        if supported:
            server = MultiWorkerServer(
                args.artifact, config=config, verify=args.verify
            )
            server.start()
            print(
                f"serving {args.artifact} with "
                f"{server.worker_count} workers on "
                f"http://{server.host}:{server.port} — Ctrl-C to stop"
            )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                print("\nshutting down")
            finally:
                server.shutdown()
            return 0
        print(
            f"multi-worker serving unavailable ({reason}); "
            "falling back to the threaded single-process server"
        )

    server = PredictionServer.from_artifact(
        args.artifact, config=config, verify=args.verify
    )
    version = server.registry.entry("default").version
    print(
        f"serving {args.artifact} ({version}) on "
        f"http://{server.host}:{server.port} — Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.shutdown()
    return 0


def _cmd_load_test(args: argparse.Namespace) -> int:
    from .serving.client import LoadGenerator, PredictionClient, mix_pool_workload
    from .serving.server import PredictionServer

    if (args.artifact is None) == (args.url is None):
        print(
            "error: load-test needs an artifact path or --url, not both",
            file=sys.stderr,
        )
        return 2

    server = None
    if args.url is not None:
        host, _, port_text = args.url.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            print(f"error: malformed --url {args.url!r}", file=sys.stderr)
            return 2
    else:
        from dataclasses import replace

        from .config import DEFAULT_CONFIG

        server = PredictionServer.from_artifact(
            args.artifact, config=replace(DEFAULT_CONFIG.serving, port=0)
        ).start()
        host, port = server.host, server.port

    try:
        with PredictionClient(host, port) as probe:
            templates = list(probe.health().template_ids)
        workload = mix_pool_workload(
            templates,
            requests=args.requests,
            pool_size=args.pool,
            mpl=args.mpl,
            seed=args.seed,
        )
        report = LoadGenerator(
            host,
            port,
            submitters=args.connections,
            processes=args.processes,
            batch_size=args.batch,
        ).run(workload)
        print(report.format_table())
        with PredictionClient(host, port) as probe:
            stats = probe.stats()
        cache = stats["cache"]
        batching = stats["batching"]
        print(
            f"cache hit rate  {cache['hit_rate']:.1%} "
            f"({cache['hits']} hits / {cache['misses']} misses)"
        )
        print(
            f"coalesced       {batching['coalesced']} requests "
            f"across {batching['batches']} batches"
        )
    finally:
        if server is not None:
            server.shutdown()
    return 0


def _parse_url(url: str):
    host, _, port_text = url.rpartition(":")
    host = host or "127.0.0.1"
    try:
        return host, int(port_text)
    except ValueError:
        return None


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as _json

    from .serving.client import PredictionClient

    parsed = _parse_url(args.url)
    if parsed is None:
        print(f"error: malformed url {args.url!r}", file=sys.stderr)
        return 2
    host, port = parsed
    with PredictionClient(host, port) as client:
        if args.prometheus:
            sys.stdout.write(client.metrics_text())
            return 0
        stats = client.stats()
        if args.as_json:
            print(_json.dumps(stats, indent=2, sort_keys=True))
            return 0
        cache = stats["cache"]
        batching = stats["batching"]
        rows = [
            ("model", f"{stats.get('model_name', 'default')} "
             f"({stats['model_version']}, generation {stats['model_generation']})"),
            ("uptime", fmt_duration(stats["uptime_seconds"])),
            ("requests", f"{stats['requests_served']}"),
        ]
        for op in sorted(stats["requests"]):
            rows.append((f"  {op}", f"{stats['requests'][op]}"))
        workers = stats.get("workers")
        if workers is not None:
            rows.append(
                ("workers", f"{workers['alive']}/{workers['count']} alive")
            )
            for w in workers.get("workers", []):
                age = w.get("heartbeat_age_seconds")
                rows.append(
                    (
                        f"  worker {w['index']}",
                        f"pid {w['pid']}, "
                        + ("alive" if w["alive"] else "stale")
                        + (
                            f" (heartbeat {age:.1f}s ago)"
                            if age is not None
                            else " (no heartbeat)"
                        )
                        + f", {w['requests']} requests, "
                        f"{w['predictions']} predictions",
                    )
                )
        rows.extend(
            [
                (
                    "cache",
                    f"{cache['hit_rate']:.1%} hit rate "
                    f"({cache['hits']} hits / {cache['misses']} misses, "
                    f"{cache['size']}/{cache['max_entries']} resident)",
                ),
                (
                    "batching",
                    f"{batching['coalesced']} coalesced across "
                    f"{batching['batches']} batches "
                    f"(largest {batching['largest_batch']})",
                ),
                (
                    "metrics",
                    "enabled (GET /metrics)"
                    if stats.get("metrics_enabled")
                    else "disabled",
                ),
            ]
        )
        lifecycle = stats.get("lifecycle")
        if lifecycle is not None:
            drifted = lifecycle.get("drifted", [])
            rows.append(
                (
                    "lifecycle",
                    f"{len(lifecycle.get('templates', []))} templates "
                    f"monitored, {len(drifted)} drifted"
                    + (f" ({', '.join(f'T{t}' for t in drifted)})"
                       if drifted else ""),
                )
            )
            for state in lifecycle.get("templates", []):
                verdict = state.get("last_verdict")
                verdict_text = "-"
                if verdict is not None:
                    verdict_text = (
                        f"{verdict['detector']} at sample "
                        f"{verdict['sample_ordinal']}"
                    )
                rows.append(
                    (
                        f"  T{state['template_id']}",
                        f"window {state['window_size']}, "
                        f"mean residual "
                        f"{state['window_mean_residual']:+.4f}, "
                        f"last verdict {verdict_text}",
                    )
                )
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")
    return 0


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    handler = {
        "run": _cmd_lifecycle_run,
        "status": _cmd_lifecycle_status,
        "promote": _cmd_lifecycle_promote,
        "rollback": _cmd_lifecycle_rollback,
    }[args.lifecycle_command]
    return handler(args)


def _cmd_lifecycle_run(args: argparse.Namespace) -> int:
    import json as _json

    from .lifecycle.manager import run_growth_scenario

    report = run_growth_scenario(
        args.state_dir,
        seed=args.seed,
        scale_after=args.scale_after,
        jobs=args.jobs,
    )
    if args.as_json:
        print(_json.dumps(report.to_doc(), indent=2, sort_keys=True))
        return 0 if report.recovered else 1
    print(
        f"growth scenario (seed {report.seed}): scale "
        f"{report.scale_before:g} -> {report.scale_after:g}, "
        f"templates {list(report.templates)}"
    )
    for phase in report.phases:
        print(
            f"  {phase.name:<9} MRE {phase.mre:.4f} "
            f"({phase.observations} observations)"
        )
    print(f"  verdicts  {len(report.verdicts)} drift verdicts")
    for verdict in report.verdicts:
        print(
            f"    T{verdict['template_id']} {verdict['detector']} "
            f"statistic {verdict['statistic']:.4f} "
            f"> {verdict['threshold']:.4f} at sample "
            f"{verdict['sample_ordinal']}"
        )
    if report.reaction is not None:
        shadow = report.reaction.get("shadow") or {}
        print(
            f"  shadow    candidate MRE {shadow.get('candidate_mre', 0):.4f} "
            f"vs incumbent {shadow.get('incumbent_mre', 0):.4f} "
            f"-> {report.reaction['action']}"
        )
    print(
        f"  model     {report.incumbent_fingerprint[:12]} -> "
        f"{(report.promoted_fingerprint or report.incumbent_fingerprint)[:12]}"
    )
    print(
        f"  recovered {report.recovered} "
        f"(final MRE vs threshold {report.recovery_mre:g})"
    )
    return 0 if report.recovered else 1


def _cmd_lifecycle_status(args: argparse.Namespace) -> int:
    import json as _json

    from .lifecycle.promotion import PromotionManager

    manager = PromotionManager(args.state_dir / "model.json")
    doc = manager.status_doc()
    if args.as_json:
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0
    current = doc["current_fingerprint"]
    print(f"model     : {doc['model_name']}")
    print(f"artifact  : {doc['artifact_path']}")
    print(f"current   : {doc['current_version'] or '-'}")
    print(f"previous  : {(doc['previous_fingerprint'] or '-')[:12]}")
    print(f"ledger    : {len(doc['promotions'])} records")
    for record in doc["promotions"]:
        gate = record.get("gate")
        gate_text = ""
        if gate is not None:
            gate_text = (
                f"  (gate: candidate {gate['candidate_mre']:.4f} vs "
                f"incumbent {gate['incumbent_mre']:.4f})"
            )
        print(
            f"  #{record['ordinal']} {record['action']:<10} "
            f"{record['fingerprint'][:12]}{gate_text}"
        )
    root_cause = doc.get("root_cause")
    if root_cause:
        print("root cause (latest drift reaction):")
        for template_id, analysis in sorted(
            root_cause.get("templates", {}).items()
        ):
            if "error" in analysis:
                print(f"  t{template_id}: {analysis['error']}")
                continue
            ranked = ", ".join(
                f"t{entry['template_id']} ({entry['seconds']:+.1f}s)"
                for entry in analysis.get("top", [])
            )
            print(f"  t{template_id} blames: {ranked or '-'}")
    return 0 if current is not None else 1


def _cmd_lifecycle_promote(args: argparse.Namespace) -> int:
    from .lifecycle.promotion import PromotionManager
    from .serving.registry import load_artifact

    candidate = load_artifact(args.candidate)
    manager = PromotionManager(args.state_dir / "model.json")
    if manager.current_info() is None:
        info = manager.initialize(candidate.contender)
        print(f"initialized slot with {info.version}")
        return 0
    record = manager.promote(candidate.contender, gate=None)
    print(
        f"promoted {record.fingerprint[:12]} over "
        f"{(record.previous_fingerprint or '-')[:12]} "
        f"(ledger #{record.ordinal}, no gate — forced)"
    )
    return 0


def _cmd_lifecycle_rollback(args: argparse.Namespace) -> int:
    from .lifecycle.promotion import PromotionManager

    manager = PromotionManager(args.state_dir / "model.json")
    record = manager.rollback()
    print(
        f"rolled back to {record.fingerprint[:12]} "
        f"(displaced {(record.previous_fingerprint or '-')[:12]}, "
        f"ledger #{record.ordinal})"
    )
    return 0


#: Default template subset for self-contained sched replays: I/O-bound,
#: CPU-bound, memory-bound, random-I/O, and a shared-fact-table pair.
_SCHED_TEMPLATES = (22, 26, 32, 62, 65, 71, 82)


def _sched_setup(args: argparse.Namespace):
    """Catalog, backend, and template ids for a sched subcommand."""
    from .apps.admission import ContenderBackend
    from .sampling.steady_state import SteadyStateConfig

    if args.data is not None:
        data = TrainingData.load(args.data)
        template_ids = (
            tuple(int(t) for t in args.templates.split(","))
            if args.templates
            else tuple(sorted(data.template_ids))
        )
        catalog = TemplateCatalog().subset(template_ids)
    else:
        template_ids = (
            tuple(int(t) for t in args.templates.split(","))
            if args.templates
            else _SCHED_TEMPLATES
        )
        catalog = TemplateCatalog().subset(template_ids)
        print(
            f"collecting in-process campaign over {len(template_ids)} "
            f"templates, MPLs 2-{args.max_mpl}...",
            file=sys.stderr,
        )
        data = collect_training_data(
            catalog,
            mpls=tuple(range(2, args.max_mpl + 1)),
            lhs_runs_per_mpl=2,
            steady_config=SteadyStateConfig(samples_per_stream=3),
        )
    backend = ContenderBackend(Contender(data))
    return catalog, backend, template_ids


def _sched_policies(args: argparse.Namespace, names, backend):
    from .sched.policies import make_policy

    return [
        make_policy(
            name,
            backend,
            sla_factor=args.sla_factor,
            max_mpl=args.max_mpl,
            window=args.window,
        )
        for name in names
    ]


def _sched_trace(args: argparse.Namespace, kind: str, template_ids):
    from .sched.traces import TemplateDistribution, TraceConfig, generate_trace

    return generate_trace(
        TraceConfig(
            kind=kind,
            templates=TemplateDistribution.uniform(template_ids),
            rate=args.rate,
            count=args.count,
            seed=args.seed,
        )
    )


def _cmd_sched(args: argparse.Namespace) -> int:
    if args.sched_command == "run":
        return _cmd_sched_run(args)
    return _cmd_sched_compare(args)


def _cmd_sched_run(args: argparse.Namespace) -> int:
    import json as _json

    from .sched.replay import replay_trace

    catalog, backend, template_ids = _sched_setup(args)
    trace = _sched_trace(args, args.trace, template_ids)
    policy = _sched_policies(args, [args.policy], backend)[0]
    result = replay_trace(
        trace, policy, catalog, max_mpl=args.max_mpl, backend=backend
    )
    if args.json:
        print(_json.dumps(result.to_doc(), indent=2))
        return 0
    print(
        f"{args.trace} trace, {len(trace)} arrivals at "
        f"{trace.rate:.4f} q/s (seed {trace.seed}), "
        f"policy {policy.name}, {args.max_mpl} slots"
    )
    print(f"  makespan    : {fmt_duration(result.makespan)}")
    print(f"  p50 latency : {fmt_duration(result.p50)}")
    print(f"  p95 latency : {fmt_duration(result.p95)}")
    print(f"  p99 latency : {fmt_duration(result.p99)}")
    print(f"  mean wait   : {fmt_duration(result.mean_queue_seconds)}")
    print(f"  deferrals   : {result.deferrals} of {result.decisions} decisions")
    accuracy = result.pairwise_accuracy
    if accuracy is not None:
        print(f"  pair-acc    : {accuracy:.3f} (prediction rank quality)")
    return 0


def _cmd_sched_compare(args: argparse.Namespace) -> int:
    import json as _json

    from .sched.replay import compare_policies

    catalog, backend, template_ids = _sched_setup(args)
    kinds = [k.strip() for k in args.traces.split(",") if k.strip()]
    names = [n.strip() for n in args.policies.split(",") if n.strip()]
    policies = _sched_policies(args, names, backend)
    reports = []
    for kind in kinds:
        trace = _sched_trace(args, kind, template_ids)
        reports.append(
            compare_policies(
                trace,
                policies,
                catalog,
                max_mpl=args.max_mpl,
                backend=backend,
            )
        )
    if args.json:
        print(_json.dumps([r.to_doc() for r in reports], indent=2))
        return 0
    for report in reports:
        print(
            f"\n== {report.trace_kind} trace: {report.count} arrivals at "
            f"{report.rate:.4f} q/s, seed {report.seed} =="
        )
        print(report.format_table())
    return 0


def _eval_matrix_mpls(args: argparse.Namespace):
    mpls = tuple(sorted(int(m) for m in args.mpls.split(",")))
    if not mpls or min(mpls) < 2:
        raise ReproError("--mpls must list MPLs >= 2")
    return mpls


def _eval_setup(args: argparse.Namespace):
    """Catalog and training data for an eval subcommand."""
    from .sampling.steady_state import SteadyStateConfig

    mpls = _eval_matrix_mpls(args)
    if args.engine:
        from .config import SimulationConfig, SystemConfig

        config = SystemConfig(simulation=SimulationConfig(engine=args.engine))
    else:
        config = None

    def _catalog(ids):
        base = (
            TemplateCatalog(config=config) if config else TemplateCatalog()
        )
        return base.subset(ids)

    if args.data is not None:
        data = TrainingData.load(args.data)
        template_ids = (
            tuple(int(t) for t in args.templates.split(","))
            if args.templates
            else tuple(sorted(data.template_ids))
        )
        catalog = _catalog(template_ids)
    else:
        template_ids = (
            tuple(int(t) for t in args.templates.split(","))
            if args.templates
            else _SCHED_TEMPLATES
        )
        catalog = _catalog(template_ids)
        print(
            f"collecting in-process campaign over {len(template_ids)} "
            f"templates, MPLs 2-{max(mpls)}...",
            file=sys.stderr,
        )
        data = collect_training_data(
            catalog,
            mpls=tuple(range(2, max(mpls) + 1)),
            lhs_runs_per_mpl=2,
            steady_config=SteadyStateConfig(samples_per_stream=3),
        )
    return catalog, data, mpls


def _eval_run_matrix(args: argparse.Namespace, backend_names):
    from .eval import default_matrix, named_backends, run_matrix
    from .sampling.steady_state import SteadyStateConfig

    catalog, data, mpls = _eval_setup(args)
    backends = named_backends(data, backend_names)
    matrix = default_matrix(mpls=mpls, window=args.window, sets=args.sets)
    return run_matrix(
        catalog,
        backends,
        matrix=matrix,
        seed=args.seed,
        objective=args.objective,
        steady=SteadyStateConfig(samples_per_stream=3),
        jobs=args.jobs,
    )


def _print_eval_result(result, as_json: bool) -> int:
    import json as _json

    if as_json:
        print(_json.dumps(result.to_doc(), indent=2, sort_keys=True))
        return 0
    print(
        f"scenario matrix (seed {result.seed}, objective "
        f"{result.objective}): {result.mixes} ground-truth mixes, "
        f"{fmt_duration(result.sim_seconds)} simulated"
    )
    for report in result.reports:
        print(f"\n== backend {report.backend} ==")
        print(report.format_table())
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    if args.eval_command == "run":
        return _cmd_eval_run(args)
    return _cmd_eval_compare(args)


def _cmd_eval_run(args: argparse.Namespace) -> int:
    result = _eval_run_matrix(args, [args.predictor])
    return _print_eval_result(result, args.json)


def _cmd_eval_compare(args: argparse.Namespace) -> int:
    names = [n.strip() for n in args.predictors.split(",") if n.strip()]
    result = _eval_run_matrix(args, names)
    return _print_eval_result(result, args.json)


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    from .experiments.harness import ExperimentContext

    module = importlib.import_module(
        f".experiments.{EXPERIMENTS[args.name]}", package=__package__
    )
    ctx = ExperimentContext(cache_dir=Path("benchmarks/.cache"), jobs=args.jobs)
    result = module.run(ctx)
    print(result.format_table())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.harness import ExperimentContext
    from .experiments.report import generate

    ctx = ExperimentContext(cache_dir=Path("benchmarks/.cache"), jobs=args.jobs)
    sys.stdout.write(generate(ctx, include_ml=not args.skip_ml))
    return 0


_HANDLERS = {
    "workload": _cmd_workload,
    "sql": _cmd_sql,
    "isolated": _cmd_isolated,
    "mix": _cmd_mix,
    "explain": _cmd_explain,
    "spoiler": _cmd_spoiler,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "predict-new": _cmd_predict_new,
    "diagnose": _cmd_diagnose,
    "pack": _cmd_pack,
    "serve": _cmd_serve,
    "load-test": _cmd_load_test,
    "stats": _cmd_stats,
    "lifecycle": _cmd_lifecycle,
    "sched": _cmd_sched,
    "eval": _cmd_eval,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (head, less).
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
