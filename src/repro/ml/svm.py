"""Kernel SVM baselines (the LibSVM stand-in of Sec. 3).

The paper's SVM baseline labels each training query with a coarse
latency class, trains a classifier over QEP feature space, and returns
the label's latency as the estimate.  We implement a binary soft-margin
C-SVC trained by simplified SMO (Platt), a one-vs-one multiclass
wrapper, :class:`SVMLatencyPredictor` (quantile binning + label
decoding), and :class:`SVR` — an ε-insensitive support vector
*regressor* for callers who prefer a continuous readout over the
paper's coarse labels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ModelError, NotFittedError
from .features import standardize_columns
from .kernels import median_heuristic_gamma, rbf_kernel


def _top_eigenvalue(
    K: np.ndarray, iterations: int = 200, rel_tol: float = 1e-10
) -> float:
    """Largest eigenvalue of a symmetric PSD matrix by power iteration.

    Deterministic (uniform start vector) and accurate to ``rel_tol``,
    which is far tighter than the Lipschitz estimate its callers need.
    """
    n = K.shape[0]
    v = np.full(n, 1.0 / np.sqrt(n))
    lam = 0.0
    for _ in range(iterations):
        Kv = K @ v
        norm = float(np.linalg.norm(Kv))
        if norm <= 0.0:
            return 0.0  # K v == 0 with v in the top eigenspace: K == 0
        if abs(norm - lam) <= rel_tol * norm:
            return norm
        lam = norm
        v = Kv / norm
    return lam


class _BinarySVC:
    """Soft-margin binary SVC on a precomputed kernel, trained by SMO."""

    def __init__(self, C: float, tol: float = 1e-3, max_passes: int = 8):
        self._C = C
        self._tol = tol
        self._max_passes = max_passes
        self.alpha: Optional[np.ndarray] = None
        self.b: float = 0.0

    #: Screening slack for the cached decision errors.  The cache is
    #: refreshed by one gemv per pass and rank-one updated per accepted
    #: step, so its drift from the exactly recomputed value is bounded by
    #: accumulated rounding (~1e-11 for the problem sizes here) — far
    #: below this margin, which is itself far below ``tol``.  Candidates
    #: whose cached KKT test is at least this conservative margin away
    #: from the threshold are skipped; everything else is recomputed
    #: exactly, so the accept/reject decisions (and therefore the RNG
    #: stream and the final model) are bit-identical to recomputing the
    #: error from scratch for every candidate.
    _SCREEN_MARGIN = 1e-6

    def fit(self, K: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> None:
        """Train on kernel matrix K (n x n) and labels y in {-1, +1}."""
        n = K.shape[0]
        alpha = np.zeros(n)
        b = 0.0
        passes = 0
        # w mirrors (alpha * y) elementwise-exactly: entries are set from
        # the same scalar products numpy's elementwise multiply performs,
        # so `w @ K[:, i]` is bit-identical to `(alpha * y) @ K[:, i]`.
        w = np.zeros(n)
        lo_screen = -self._tol + self._SCREEN_MARGIN
        hi_screen = self._tol - self._SCREEN_MARGIN
        while passes < self._max_passes:
            changed = 0
            # Cached decision values (without the bias): E[i] ~ w @ K[:, i].
            E = w @ K
            for i in range(n):
                cached = y[i] * (E[i] + b - y[i])
                # If the cached value sits at least one margin inside the
                # KKT tube (or the box constraint rules the branch out),
                # the exact value cannot violate; skip without the gemv.
                if not (
                    (cached < lo_screen and alpha[i] < self._C)
                    or (cached > hi_screen and alpha[i] > 0)
                ):
                    continue
                err_i = float(w @ K[:, i]) + b - y[i]
                if (y[i] * err_i < -self._tol and alpha[i] < self._C) or (
                    y[i] * err_i > self._tol and alpha[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    err_j = float(w @ K[:, j]) + b - y[j]
                    ai_old, aj_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        low = max(0.0, aj_old - ai_old)
                        high = min(self._C, self._C + aj_old - ai_old)
                    else:
                        low = max(0.0, ai_old + aj_old - self._C)
                        high = min(self._C, ai_old + aj_old)
                    if low >= high:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    aj = aj_old - y[j] * (err_i - err_j) / eta
                    aj = float(np.clip(aj, low, high))
                    if abs(aj - aj_old) < 1e-5:
                        continue
                    ai = ai_old + y[i] * y[j] * (aj_old - aj)
                    alpha[i], alpha[j] = ai, aj
                    # O(n) cache maintenance: w stays elementwise equal
                    # to alpha * y, E absorbs the two changed terms.
                    new_wi = ai * y[i]
                    new_wj = aj * y[j]
                    E += (new_wi - w[i]) * K[i] + (new_wj - w[j]) * K[j]
                    w[i] = new_wi
                    w[j] = new_wj
                    b1 = (
                        b
                        - err_i
                        - y[i] * (ai - ai_old) * K[i, i]
                        - y[j] * (aj - aj_old) * K[i, j]
                    )
                    b2 = (
                        b
                        - err_j
                        - y[i] * (ai - ai_old) * K[i, j]
                        - y[j] * (aj - aj_old) * K[j, j]
                    )
                    if 0 < ai < self._C:
                        b = b1
                    elif 0 < aj < self._C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
        self.alpha = alpha
        self.b = b
        self._y = y

    def decision(self, K_new: np.ndarray) -> np.ndarray:
        """Decision values for rows of K_new (m x n_train)."""
        if self.alpha is None:
            raise NotFittedError("binary SVC not fitted")
        return K_new @ (self.alpha * self._y) + self.b


class SVC:
    """Multiclass RBF SVM via one-vs-one voting.

    Args:
        C: Soft-margin penalty.
        gamma: RBF bandwidth; ``None`` uses the median heuristic.
        max_passes: SMO convergence patience.
        seed: RNG seed for SMO's partner selection.
    """

    def __init__(
        self,
        C: float = 10.0,
        gamma: Optional[float] = None,
        max_passes: int = 8,
        seed: int = 0,
    ):
        if C <= 0:
            raise ModelError("C must be positive")
        self._C = C
        self._gamma = gamma
        self._max_passes = max_passes
        self._seed = seed
        self._X: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._classes: Optional[np.ndarray] = None
        self._machines: List[tuple] = []

    def fit(self, X: Sequence[Sequence[float]], y: Sequence[int]) -> "SVC":
        """Fit one binary machine per class pair; returns self."""
        Xs, mean, scale = standardize_columns(np.asarray(X, dtype=float))
        labels = np.asarray(y, dtype=int)
        if Xs.shape[0] != labels.shape[0]:
            raise ModelError("X and y row counts differ")
        classes = np.unique(labels)
        if classes.size < 2:
            raise ModelError("need at least two classes")
        gamma = self._gamma if self._gamma is not None else median_heuristic_gamma(Xs)
        K_full = rbf_kernel(Xs, gamma=gamma)
        rng = np.random.default_rng(self._seed)

        machines: List[tuple] = []
        for a_idx in range(classes.size):
            for b_idx in range(a_idx + 1, classes.size):
                cls_a, cls_b = classes[a_idx], classes[b_idx]
                mask = (labels == cls_a) | (labels == cls_b)
                idx = np.where(mask)[0]
                sub_y = np.where(labels[idx] == cls_a, 1.0, -1.0)
                machine = _BinarySVC(self._C, max_passes=self._max_passes)
                machine.fit(K_full[np.ix_(idx, idx)], sub_y, rng)
                machines.append((cls_a, cls_b, idx, machine))

        self._X, self._mean, self._scale = Xs, mean, scale
        self._gamma_fitted = gamma
        self._classes = classes
        self._machines = machines
        return self

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Majority vote over the one-vs-one machines."""
        if self._X is None or self._classes is None:
            raise NotFittedError("SVC not fitted")
        Xq = (np.atleast_2d(np.asarray(X, dtype=float)) - self._mean) / self._scale
        K_new = rbf_kernel(Xq, self._X, gamma=self._gamma_fitted)
        votes = np.zeros((Xq.shape[0], self._classes.size), dtype=int)
        class_pos = {c: i for i, c in enumerate(self._classes)}
        rows = np.arange(Xq.shape[0])
        for cls_a, cls_b, idx, machine in self._machines:
            decision = machine.decision(K_new[:, idx])
            winner_pos = np.where(
                decision >= 0, class_pos[cls_a], class_pos[cls_b]
            )
            np.add.at(votes, (rows, winner_pos), 1)
        return self._classes[np.argmax(votes, axis=1)]


class SVMLatencyPredictor:
    """The Sec. 3 SVM baseline: classify into latency bins, return the bin.

    Args:
        num_bins: Coarse latency classes (quantile bins over training
            latencies).
        C, gamma, seed: Passed to :class:`SVC`.
    """

    def __init__(
        self,
        num_bins: int = 8,
        C: float = 10.0,
        gamma: Optional[float] = None,
        seed: int = 0,
    ):
        if num_bins < 2:
            raise ModelError("num_bins must be >= 2")
        self._num_bins = num_bins
        self._svc = SVC(C=C, gamma=gamma, seed=seed)
        self._bin_values: Optional[np.ndarray] = None

    def fit(
        self, X: Sequence[Sequence[float]], latencies: Sequence[float]
    ) -> "SVMLatencyPredictor":
        """Bin latencies into quantile classes and train the SVC."""
        lat = np.asarray(latencies, dtype=float)
        if np.any(lat <= 0):
            raise ModelError("latencies must be positive")
        bins = min(self._num_bins, np.unique(lat).size)
        if bins < 2:
            raise ModelError("latencies are constant; nothing to classify")
        edges = np.quantile(lat, np.linspace(0, 1, bins + 1))
        edges = np.unique(edges)
        labels = np.clip(np.searchsorted(edges, lat, side="right") - 1, 0, len(edges) - 2)
        # Quantile edges guarantee nothing about occupancy: with heavily
        # tied latencies a bin can be empty, and taking its mean would
        # emit a RuntimeWarning and leave a NaN "prediction" in the value
        # table.  Drop empty bins and compact the labels instead.
        counts = np.bincount(labels, minlength=len(edges) - 1)
        occupied = np.flatnonzero(counts)
        if occupied.size < 2:
            raise ModelError("quantile binning collapsed to one class")
        remap = np.zeros(len(edges) - 1, dtype=int)
        remap[occupied] = np.arange(occupied.size)
        labels = remap[labels]
        # Each class predicts the mean latency of its members.
        values = np.array(
            [lat[labels == c].mean() for c in range(occupied.size)]
        )
        self._svc.fit(X, labels)
        self._bin_values = values
        return self

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Predicted latency: the value of the predicted class."""
        if self._bin_values is None:
            raise NotFittedError("SVMLatencyPredictor not fitted")
        labels = self._svc.predict(X)
        return self._bin_values[labels]


class SVR:
    """ε-insensitive kernel support vector regression.

    Trained by projected gradient ascent on the dual (simple, dependency
    free, and fast enough for the few-hundred-sample sets the Sec. 3
    experiments use).

    Args:
        C: Regularization (dual box constraint).
        epsilon: Width of the insensitive tube, in *target* units after
            internal standardization.
        gamma: RBF bandwidth; ``None`` uses the median heuristic.
        iterations: Gradient steps on the dual.
        learning_rate: Dual step size.
    """

    def __init__(
        self,
        C: float = 10.0,
        epsilon: float = 0.1,
        gamma: Optional[float] = None,
        iterations: int = 400,
        learning_rate: float = 0.1,
    ):
        if C <= 0:
            raise ModelError("C must be positive")
        if epsilon < 0:
            raise ModelError("epsilon must be >= 0")
        if iterations < 1:
            raise ModelError("iterations must be >= 1")
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        self._C = C
        self._epsilon = epsilon
        self._gamma = gamma
        self._iterations = iterations
        self._lr = learning_rate
        self._X: Optional[np.ndarray] = None

    def fit(self, X: Sequence[Sequence[float]], y: Sequence[float]) -> "SVR":
        """Fit on features X and continuous targets y; returns self."""
        Xs, mean, scale = standardize_columns(np.asarray(X, dtype=float))
        yv = np.asarray(y, dtype=float)
        if Xs.shape[0] != yv.shape[0]:
            raise ModelError("X and y row counts differ")
        if Xs.shape[0] < 2:
            raise ModelError("need at least two samples")
        y_mean, y_std = float(yv.mean()), float(yv.std()) or 1.0
        t = (yv - y_mean) / y_std

        gamma = self._gamma if self._gamma is not None else median_heuristic_gamma(Xs)
        K = rbf_kernel(Xs, gamma=gamma)
        n = Xs.shape[0]

        # Dual variables beta = alpha - alpha*; the epsilon-SVR dual
        # objective is  -1/2 b'Kb + b't - eps*|b|_1  with |b_i| <= C.
        # Projected gradient ascent with the step scaled by the kernel's
        # top eigenvalue (the dual's Lipschitz constant).  Only that one
        # eigenvalue is needed, so power iteration beats the full O(n^3)
        # eigendecomposition; K is PSD with strictly positive entries
        # (RBF), so the top eigenvector is positive and the deterministic
        # uniform start vector cannot be orthogonal to it.
        lipschitz = _top_eigenvalue(K)
        step = self._lr / max(lipschitz, 1e-9)
        beta = np.zeros(n)
        for _ in range(self._iterations):
            grad = t - K @ beta - self._epsilon * np.sign(beta)
            beta = np.clip(beta + step * grad, -self._C, self._C)

        self._X, self._mean, self._scale = Xs, mean, scale
        self._gamma_fitted = gamma
        self._beta = beta
        self._y_mean, self._y_std = y_mean, y_std
        # Bias from the residual mean on non-saturated points.
        fitted = K @ beta
        free = np.abs(beta) < self._C * 0.999
        if np.any(free):
            self._bias = float(np.mean(t[free] - fitted[free]))
        else:
            self._bias = float(np.mean(t - fitted))
        return self

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Continuous predictions for rows of X."""
        if self._X is None:
            raise NotFittedError("SVR not fitted")
        Xq = (np.atleast_2d(np.asarray(X, dtype=float)) - self._mean) / self._scale
        K_new = rbf_kernel(Xq, self._X, gamma=self._gamma_fitted)
        t = K_new @ self._beta + self._bias
        return t * self._y_std + self._y_mean
