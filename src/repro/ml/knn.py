"""k-nearest-neighbour regression.

Used twice in the reproduction: as the spoiler-latency predictor for new
templates (Sec. 5.5 — neighbours in (working-set, I/O-time) space) and
as the readout stage of KCCA (Sec. 3 — neighbours in projection space).
Features are standardized so that wildly different units (bytes vs
fractions) do not swamp the distance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ModelError, NotFittedError


class KNNRegressor:
    """Average the targets of the k nearest training points.

    Args:
        k: Neighbours to average (the paper uses 3).
        standardize: Z-score the features on fit (recommended whenever
            feature units differ).
    """

    def __init__(self, k: int = 3, standardize: bool = True):
        if k < 1:
            raise ModelError("k must be >= 1")
        self._k = k
        self._standardize = standardize
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    @property
    def k(self) -> int:
        return self._k

    def fit(self, X: Sequence[Sequence[float]], y: Sequence[Sequence[float]]) -> "KNNRegressor":
        """Fit on features X and (possibly vector-valued) targets y."""
        Xm = np.atleast_2d(np.asarray(X, dtype=float))
        ym = np.asarray(y, dtype=float)
        if ym.ndim == 1:
            ym = ym[:, None]
        if Xm.shape[0] != ym.shape[0]:
            raise ModelError("X and y must have the same number of rows")
        if Xm.shape[0] < 1:
            raise ModelError("need at least one training sample")
        if self._standardize:
            self._mean = Xm.mean(axis=0)
            scale = Xm.std(axis=0)
            scale[scale == 0.0] = 1.0
            self._scale = scale
            Xm = (Xm - self._mean) / self._scale
        self._X = Xm
        self._y = ym
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        if self._standardize and self._mean is not None:
            return (X - self._mean) / self._scale
        return X

    def neighbors(self, x: Sequence[float]) -> np.ndarray:
        """Indices of the k nearest training points to *x*."""
        if self._X is None:
            raise NotFittedError("KNNRegressor not fitted")
        xv = self._transform(np.asarray(x, dtype=float)[None, :])
        dist = np.linalg.norm(self._X - xv, axis=1)
        k = min(self._k, len(dist))
        return np.argsort(dist, kind="stable")[:k]

    def predict(self, x: Sequence[float]) -> np.ndarray:
        """Mean target over the k nearest neighbours of *x*."""
        if self._y is None:
            raise NotFittedError("KNNRegressor not fitted")
        idx = self.neighbors(x)
        return self._y[idx].mean(axis=0)

    def predict_scalar(self, x: Sequence[float]) -> float:
        """Like :meth:`predict` for 1-D targets."""
        out = self.predict(x)
        if out.size != 1:
            raise ModelError("predict_scalar on a vector-valued regressor")
        return float(out[0])
