"""Machine-learning primitives implemented from scratch on numpy/scipy.

The environment has no sklearn/R, so everything the paper uses is
re-implemented here: ordinary least squares and ridge regression, a
k-nearest-neighbour regressor, an SMO-trained kernel SVM (the LibSVM
stand-in of Sec. 3), kernel canonical correlation analysis (the kernlab
stand-in), cross-validation splitters, and the QEP feature extraction of
Sec. 3.
"""

from .crossval import kfold_indices, leave_one_out
from .features import FeatureSpace, mix_feature_vector
from .kcca import KCCARegressor
from .kernels import rbf_kernel
from .knn import KNNRegressor
from .linreg import LinearRegression, SimpleLinearRegression
from .svm import SVC, SVMLatencyPredictor, SVR

__all__ = [
    "FeatureSpace",
    "KCCARegressor",
    "KNNRegressor",
    "LinearRegression",
    "SVC",
    "SVMLatencyPredictor",
    "SVR",
    "SimpleLinearRegression",
    "kfold_indices",
    "leave_one_out",
    "mix_feature_vector",
    "rbf_kernel",
]
