"""QEP feature extraction for the Sec. 3 machine-learning baselines.

The feature space is built from all distinct execution steps observed in
the training plans.  Sequential scans on different tables are distinct
features (one per table).  Each step contributes a pair: (number of
occurrences in the plan, summed cardinality estimate of its instances) —
so a plan maps to a 2n vector.  For a concurrent prediction the features
of the concurrent plans are summed into a second 2n vector and
concatenated with the primary's, giving 4n features per example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..engine.plans import QueryPlan
from ..errors import ModelError


@dataclass(frozen=True)
class FeatureSpace:
    """A global, ordered space of distinct QEP steps.

    Attributes:
        steps: Step names in a fixed order; the vector layout is
            ``[count_1, card_1, count_2, card_2, ...]``.
    """

    steps: Tuple[str, ...]

    @staticmethod
    def build(plans: Sequence[QueryPlan]) -> "FeatureSpace":
        """Collect the distinct steps of the training plans."""
        if not plans:
            raise ModelError("need at least one plan to build a feature space")
        names = sorted({name for plan in plans for name, _ in plan.step_cardinalities()})
        return FeatureSpace(steps=tuple(names))

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def vector_length(self) -> int:
        """Length of a single-plan vector (2n)."""
        return 2 * self.num_steps

    def vector(self, plan: QueryPlan) -> np.ndarray:
        """The 2n feature vector of one plan.

        Steps the space has never seen are ignored — exactly the failure
        mode that hurts these baselines on new templates (Sec. 3).
        """
        index: Dict[str, int] = {name: i for i, name in enumerate(self.steps)}
        out = np.zeros(self.vector_length, dtype=float)
        for name, cardinality in plan.step_cardinalities():
            i = index.get(name)
            if i is None:
                continue
            out[2 * i] += 1.0
            out[2 * i + 1] += cardinality
        return out

    def sum_vectors(self, plans: Sequence[QueryPlan]) -> np.ndarray:
        """Summed 2n vector of several plans (the concurrent side)."""
        out = np.zeros(self.vector_length, dtype=float)
        for plan in plans:
            out += self.vector(plan)
        return out


def mix_feature_vector(
    space: FeatureSpace,
    primary: QueryPlan,
    concurrent: Sequence[QueryPlan],
) -> np.ndarray:
    """The 4n concurrent-prediction vector: primary ++ summed concurrent."""
    return np.concatenate([space.vector(primary), space.sum_vectors(concurrent)])


def standardize_columns(
    X: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Z-score the columns of X; returns (X_std, mean, scale).

    Zero-variance columns keep scale 1 so they map to exactly zero.
    """
    Xm = np.atleast_2d(np.asarray(X, dtype=float))
    mean = Xm.mean(axis=0)
    scale = Xm.std(axis=0)
    scale[scale == 0.0] = 1.0
    return (Xm - mean) / scale, mean, scale
