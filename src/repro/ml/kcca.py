"""Kernel canonical correlation analysis (the kernlab stand-in of Sec. 3).

As in [10], one Gaussian kernel compares the QEP feature vectors of all
training queries and another compares their performance vectors.  KCCA
solves the (regularized) generalized eigenproblem for maximally
correlated projections of the two spaces; a new query is projected with
the learned basis and its latency is the average of its k nearest
training neighbours in projection space (k = 3 in the paper).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.linalg

from ..errors import ModelError, NotFittedError
from .features import standardize_columns
from .kernels import center_kernel, median_heuristic_gamma, rbf_kernel


class KCCARegressor:
    """KCCA projection + k-NN readout for latency prediction.

    Args:
        n_components: Projection dimensions kept.
        k: Neighbours averaged for the readout.
        reg: Kernel regularization (the kernlab ``kappa``-style term).
        gamma_x, gamma_y: RBF bandwidths; ``None`` = median heuristic.
    """

    def __init__(
        self,
        n_components: int = 4,
        k: int = 3,
        reg: float = 0.1,
        gamma_x: Optional[float] = None,
        gamma_y: Optional[float] = None,
    ):
        if n_components < 1:
            raise ModelError("n_components must be >= 1")
        if k < 1:
            raise ModelError("k must be >= 1")
        if reg <= 0:
            raise ModelError("reg must be positive")
        self._n_components = n_components
        self._k = k
        self._reg = reg
        self._gamma_x = gamma_x
        self._gamma_y = gamma_y
        self._X: Optional[np.ndarray] = None
        self._latencies: Optional[np.ndarray] = None
        self._basis: Optional[np.ndarray] = None
        self._projections: Optional[np.ndarray] = None

    def fit(
        self, X: Sequence[Sequence[float]], latencies: Sequence[float]
    ) -> "KCCARegressor":
        """Solve the KCCA eigenproblem on the training set; returns self."""
        Xs, mean, scale = standardize_columns(np.asarray(X, dtype=float))
        lat = np.asarray(latencies, dtype=float)
        if Xs.shape[0] != lat.shape[0]:
            raise ModelError("X and latencies row counts differ")
        n = Xs.shape[0]
        if n < 3:
            raise ModelError("need at least three training samples")

        # Performance space: log latency keeps the Gaussian kernel from
        # being dominated by the heaviest queries.
        Y = np.log(lat)[:, None]
        gamma_x = (
            self._gamma_x if self._gamma_x is not None else median_heuristic_gamma(Xs)
        )
        gamma_y = (
            self._gamma_y if self._gamma_y is not None else median_heuristic_gamma(Y)
        )
        Kx = center_kernel(rbf_kernel(Xs, gamma=gamma_x))
        Ky = center_kernel(rbf_kernel(Y, gamma=gamma_y))

        # Regularized KCCA: find alpha maximizing corr(Kx alpha, Ky beta).
        # Standard reduction: solve  (Kx + rI)^-1 Ky (Ky + rI)^-1 Kx a = l a.
        reg_eye = self._reg * n * np.eye(n)
        inv_x = np.linalg.solve(Kx + reg_eye, np.eye(n))
        inv_y = np.linalg.solve(Ky + reg_eye, np.eye(n))
        M = inv_x @ Ky @ inv_y @ Kx
        eigvals, eigvecs = scipy.linalg.eig(M)
        order = np.argsort(-np.real(eigvals))
        comps = min(self._n_components, n)
        basis = np.real(eigvecs[:, order[:comps]])

        self._mean, self._scale = mean, scale
        self._gx = gamma_x
        self._X = Xs
        self._latencies = lat
        self._basis = basis
        self._projections = Kx @ basis
        return self

    def project(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Project new feature vectors into KCCA space."""
        if self._X is None or self._basis is None:
            raise NotFittedError("KCCARegressor not fitted")
        Xq = (np.atleast_2d(np.asarray(X, dtype=float)) - self._mean) / self._scale
        K_new = rbf_kernel(Xq, self._X, gamma=self._gx)
        # Center against the training kernel's row/column means.
        K_train = rbf_kernel(self._X, gamma=self._gx)
        col_mean = K_train.mean(axis=0)[None, :]
        row_mean = K_new.mean(axis=1)[:, None]
        total_mean = K_train.mean()
        K_centered = K_new - col_mean - row_mean + total_mean
        return K_centered @ self._basis

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """k-NN latency readout in projection space."""
        if self._projections is None or self._latencies is None:
            raise NotFittedError("KCCARegressor not fitted")
        Z = self.project(X)
        out = np.empty(Z.shape[0])
        k = min(self._k, self._projections.shape[0])
        for row in range(Z.shape[0]):
            dist = np.linalg.norm(self._projections - Z[row][None, :], axis=1)
            idx = np.argsort(dist, kind="stable")[:k]
            out[row] = float(self._latencies[idx].mean())
        return out
