"""Kernel functions shared by the SVM and KCCA baselines."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ModelError


def rbf_kernel(
    X: np.ndarray, Y: Optional[np.ndarray] = None, gamma: float = 1.0
) -> np.ndarray:
    """Gaussian (RBF) kernel matrix ``exp(-gamma * ||x - y||^2)``.

    Args:
        X: (n, d) matrix.
        Y: (m, d) matrix; defaults to X.
        gamma: Inverse squared bandwidth.
    """
    if gamma <= 0:
        raise ModelError("gamma must be positive")
    Xm = np.atleast_2d(np.asarray(X, dtype=float))
    Ym = Xm if Y is None else np.atleast_2d(np.asarray(Y, dtype=float))
    x_sq = np.sum(Xm**2, axis=1)[:, None]
    y_sq = np.sum(Ym**2, axis=1)[None, :]
    sq_dist = np.maximum(x_sq + y_sq - 2.0 * Xm @ Ym.T, 0.0)
    return np.exp(-gamma * sq_dist)


def median_heuristic_gamma(X: np.ndarray) -> float:
    """The standard bandwidth pick: 1 / median squared pairwise distance."""
    Xm = np.atleast_2d(np.asarray(X, dtype=float))
    if Xm.shape[0] < 2:
        return 1.0
    x_sq = np.sum(Xm**2, axis=1)
    sq_dist = x_sq[:, None] + x_sq[None, :] - 2.0 * Xm @ Xm.T
    upper = sq_dist[np.triu_indices(Xm.shape[0], k=1)]
    med = float(np.median(upper))
    if med <= 0:
        return 1.0
    return 1.0 / med


def center_kernel(K: np.ndarray) -> np.ndarray:
    """Double-center a square kernel matrix (zero-mean in feature space)."""
    K = np.asarray(K, dtype=float)
    if K.ndim != 2 or K.shape[0] != K.shape[1]:
        raise ModelError("center_kernel expects a square matrix")
    n = K.shape[0]
    ones = np.full((n, n), 1.0 / n)
    return K - ones @ K - K @ ones + ones @ K @ ones
