"""Least-squares linear regression (closed form).

Contender is deliberately built on the simplest possible learners: the
QS model, the coefficient relationship, and the spoiler growth model are
all one-dimensional linear regressions.  :class:`SimpleLinearRegression`
is that 1-D case; :class:`LinearRegression` is the multi-feature version
(optionally ridge-regularized) used by the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ModelError, NotFittedError


@dataclass
class SimpleLinearRegression:
    """``y = slope * x + intercept`` fitted by ordinary least squares."""

    slope: Optional[float] = None
    intercept: Optional[float] = None

    @property
    def fitted(self) -> bool:
        return self.slope is not None and self.intercept is not None

    def fit(self, x: Sequence[float], y: Sequence[float]) -> "SimpleLinearRegression":
        """Fit on paired samples; returns self.

        With a degenerate (constant) x the slope is 0 and the intercept
        is the mean of y — the best constant predictor.
        """
        xv = np.asarray(x, dtype=float)
        yv = np.asarray(y, dtype=float)
        if xv.shape != yv.shape or xv.ndim != 1:
            raise ModelError("x and y must be 1-D and of equal length")
        if xv.size < 2:
            raise ModelError("need at least two samples to fit a line")
        var = float(np.var(xv))
        if var == 0.0:
            self.slope = 0.0
            self.intercept = float(np.mean(yv))
            return self
        cov = float(np.mean((xv - xv.mean()) * (yv - yv.mean())))
        self.slope = cov / var
        self.intercept = float(np.mean(yv)) - self.slope * float(np.mean(xv))
        return self

    def predict(self, x: float) -> float:
        """Predict y for a single x."""
        if not self.fitted:
            raise NotFittedError("SimpleLinearRegression.predict before fit")
        return self.slope * float(x) + self.intercept

    def predict_many(self, x: Sequence[float]) -> np.ndarray:
        """Vectorized prediction."""
        if not self.fitted:
            raise NotFittedError("SimpleLinearRegression.predict before fit")
        return self.slope * np.asarray(x, dtype=float) + self.intercept


class LinearRegression:
    """Multi-feature least squares with optional ridge penalty.

    Args:
        ridge: L2 penalty strength; 0 gives plain OLS (solved by
            ``lstsq`` so rank deficiency is tolerated).
    """

    def __init__(self, ridge: float = 0.0):
        if ridge < 0:
            raise ModelError("ridge must be >= 0")
        self._ridge = ridge
        self._coef: Optional[np.ndarray] = None
        self._intercept: Optional[float] = None

    @property
    def coef(self) -> np.ndarray:
        if self._coef is None:
            raise NotFittedError("LinearRegression not fitted")
        return self._coef

    @property
    def intercept(self) -> float:
        if self._intercept is None:
            raise NotFittedError("LinearRegression not fitted")
        return self._intercept

    def fit(self, X: Sequence[Sequence[float]], y: Sequence[float]) -> "LinearRegression":
        """Fit on an (n_samples, n_features) matrix; returns self."""
        Xm = np.atleast_2d(np.asarray(X, dtype=float))
        yv = np.asarray(y, dtype=float)
        if Xm.shape[0] != yv.shape[0]:
            raise ModelError(
                f"X has {Xm.shape[0]} rows but y has {yv.shape[0]} entries"
            )
        if Xm.shape[0] < 1:
            raise ModelError("need at least one sample")
        x_mean = Xm.mean(axis=0)
        y_mean = float(yv.mean())
        Xc = Xm - x_mean
        yc = yv - y_mean
        if self._ridge > 0:
            gram = Xc.T @ Xc + self._ridge * np.eye(Xm.shape[1])
            beta = np.linalg.solve(gram, Xc.T @ yc)
        else:
            beta, *_ = np.linalg.lstsq(Xc, yc, rcond=None)
        self._coef = beta
        self._intercept = y_mean - float(x_mean @ beta)
        return self

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict for an (n_samples, n_features) matrix."""
        Xm = np.atleast_2d(np.asarray(X, dtype=float))
        return Xm @ self.coef + self.intercept
