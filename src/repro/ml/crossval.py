"""Cross-validation splitters.

The paper evaluates with k-fold cross validation (k = 5 for the core
experiments, k = 6 inside the ML learners) and leave-one-template-out
for the new-template studies.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModelError


def kfold_indices(
    n: int, k: int, rng: Optional[np.random.Generator] = None
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """(train_idx, test_idx) pairs for k-fold CV over *n* samples.

    Folds differ in size by at most one.  With *rng* the sample order is
    shuffled first; otherwise folds are contiguous (deterministic).
    """
    if n < 2:
        raise ModelError("need at least two samples for cross-validation")
    if not 2 <= k <= n:
        raise ModelError(f"k must be in [2, {n}], got {k}")
    order = np.arange(n)
    if rng is not None:
        order = rng.permutation(n)
    folds = np.array_split(order, k)
    out: List[Tuple[np.ndarray, np.ndarray]] = []
    for i, test in enumerate(folds):
        train = np.concatenate([f for j, f in enumerate(folds) if j != i])
        out.append((train, test))
    return out


def leave_one_out(items: Sequence) -> Iterator[Tuple[List, object]]:
    """Yield (rest, held_out) for every item.

    The new-template experiments train on all templates but one and test
    on the excluded one (Sec. 6.4-6.5).
    """
    items = list(items)
    if len(items) < 2:
        raise ModelError("need at least two items to leave one out")
    for i, held in enumerate(items):
        yield items[:i] + items[i + 1 :], held
