"""Event-driven queue replay: arrivals × policy × the simulated engine.

The simulator couples an open-loop :class:`~repro.sched.traces.ArrivalTrace`
to the virtual-time :class:`~repro.engine.executor.ConcurrentExecutor`
through the timed-arrival stream extension: ``max_mpl`` *slot streams*
share one :class:`QueueDispatcher`, and each slot asks the dispatcher
for work whenever it is idle.  The dispatcher absorbs every arrival
whose time has come into a FIFO queue, consults the scheduling policy
for which queued query (if any) should occupy the free slot, and maps
the chosen template to an executable resource profile.  Queries the
policy defers wait in queue; the engine re-poses the question at the
next completion (deferral) or the next arrival (idle slot).

Latency therefore decomposes exactly as in a real admission queue:

* *queue wait* — arrival to dispatch (``stats.start_time - arrival``),
* *execution* — dispatch to completion under whatever contention the
  policy created (``stats.latency``),

and every replay is bit-reproducible from the trace seed: arrivals,
template draws, and the engine are all deterministic.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.admission import PredictionBackend
from ..engine.executor import ConcurrentExecutor, RunResult
from ..engine.profile import ResourceProfile
from ..errors import ModelError
from ..obs.metrics import Registry
from ..workload.catalog import TemplateCatalog
from .policies import SchedulerPolicy
from .traces import ArrivalTrace

__all__ = [
    "CompareReport",
    "QueryOutcome",
    "ReplayResult",
    "compare_policies",
    "replay_trace",
]

#: Histogram buckets for query-scale durations (isolated latencies run
#: 150-900 s; queue waits can exceed the longest query several times).
_SECONDS_BUCKETS = (
    30.0, 60.0, 120.0, 240.0, 480.0, 960.0, 1920.0, 3840.0, 7680.0,
)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass(frozen=True)
class QueryOutcome:
    """One replayed query, end to end.

    Attributes:
        template: Template id.
        arrival_time: When the trace injected it.
        start_time: When the policy dispatched it into the mix.
        end_time: When it completed.
        predicted_exec_seconds: The backend's decision-time prediction
            of this query's execution latency in the mix it joined
            (``None`` when the replay ran without a backend).
    """

    template: int
    arrival_time: float
    start_time: float
    end_time: float
    predicted_exec_seconds: Optional[float] = None

    @property
    def queue_seconds(self) -> float:
        """Time spent waiting for admission."""
        return self.start_time - self.arrival_time

    @property
    def exec_seconds(self) -> float:
        """Time spent executing (under contention)."""
        return self.end_time - self.start_time

    @property
    def total_seconds(self) -> float:
        """Client-observed latency: arrival to completion."""
        return self.end_time - self.arrival_time


class QueueDispatcher:
    """Shared queue + policy behind every slot stream of one replay.

    The engine guarantees a slot is polled only while idle, so a poll
    for a slot that holds a running entry means that query just
    completed.  All state is single-threaded — the engine is an event
    loop, not a thread pool.
    """

    def __init__(
        self,
        trace: ArrivalTrace,
        policy: SchedulerPolicy,
        catalog: TemplateCatalog,
        rng: Optional[np.random.Generator] = None,
        registry: Optional[Registry] = None,
        backend: Optional["PredictionBackend"] = None,
    ):
        self._arrivals = trace.arrivals
        self._policy = policy
        self._catalog = catalog
        self._rng = rng
        self._backend = backend
        self._next = 0  # first arrival not yet absorbed
        self._queue: List[Tuple[float, int]] = []  # (arrival_time, template)
        self._running: Dict[int, int] = {}  # slot -> template
        #: instance_id -> arrival_time, read back after the run.
        self.dispatched: Dict[int, float] = {}
        #: instance_id -> decision-time predicted execution latency.
        self.predicted: Dict[int, float] = {}
        self.deferrals = 0
        self.decisions = 0
        self.decision_seconds = 0.0
        self._depth_gauge = None
        self._admit_counter = None
        self._wait_hist = None
        if registry is not None:
            name = policy.name
            self._depth_gauge = registry.gauge(
                "sched_queue_depth",
                "Queries waiting for admission",
                labels=("policy",),
            ).labels(name)
            self._admit_counter = registry.counter(
                "sched_admissions_total",
                "Scheduling decisions by outcome",
                labels=("policy", "outcome"),
            )
            self._wait_hist = registry.histogram(
                "sched_queue_wait_seconds",
                "Arrival-to-dispatch wait",
                labels=("policy",),
                buckets=_SECONDS_BUCKETS,
            ).labels(name)

    def _absorb(self, now: float) -> None:
        arrivals = self._arrivals
        while self._next < len(arrivals) and arrivals[self._next].time <= now:
            entry = arrivals[self._next]
            self._queue.append((entry.time, entry.template))
            self._next += 1
        if self._depth_gauge is not None:
            self._depth_gauge.set(float(len(self._queue)))

    def poll(self, slot: int, now: float) -> Optional[ResourceProfile]:
        """The slot is idle: dispatch a queued query into it, or defer."""
        self._running.pop(slot, None)  # present => its query just finished
        self._absorb(now)
        if not self._queue:
            return None
        running = tuple(self._running.values())
        queued = tuple(template for _, template in self._queue)
        begin = time.perf_counter()
        choice = self._policy.pick(now, running, queued)
        self.decision_seconds += time.perf_counter() - begin
        self.decisions += 1
        if choice is None:
            self.deferrals += 1
            if self._admit_counter is not None:
                self._admit_counter.labels(self._policy.name, "deferred").inc()
            return None
        if not 0 <= choice < len(self._queue):
            raise ModelError(
                f"policy {self._policy.name!r} picked index {choice} "
                f"from a queue of {len(self._queue)}"
            )
        arrival_time, template = self._queue.pop(choice)
        profile = self._catalog.profile(template, self._rng)
        self._running[slot] = template
        self.dispatched[profile.instance_id] = arrival_time
        if self._backend is not None:
            # Predictions are pure (no RNG), so recording them cannot
            # perturb the replay itself.
            mix = (*running, template)
            self.predicted[profile.instance_id] = (
                self._backend.isolated_latency(template)
                if len(mix) == 1
                else self._backend.predict_known(template, mix)
            )
        if self._admit_counter is not None:
            self._admit_counter.labels(self._policy.name, "admitted").inc()
        if self._wait_hist is not None:
            self._wait_hist.observe(now - arrival_time)
        if self._depth_gauge is not None:
            self._depth_gauge.set(float(len(self._queue)))
        return profile

    def wake_after(self, now: float) -> Optional[float]:
        """When an idle slot should ask again (the stream-protocol answer).

        * Queue non-empty (the policy deferred): ``inf`` — only a
          completion changes the mix the policy objected to.
        * Arrivals remain: the next arrival's time.
        * Neither: ``None`` — the slot closes.
        """
        if self._queue:
            return math.inf
        if self._next < len(self._arrivals):
            return self._arrivals[self._next].time
        return None


class _SlotStream:
    """One execution slot: the engine-facing face of the dispatcher."""

    def __init__(self, slot: int, dispatcher: QueueDispatcher):
        self._slot = slot
        self._dispatcher = dispatcher
        self.name = f"slot-{slot:02d}"

    def next_profile(self, now: float, completed: int) -> Optional[ResourceProfile]:
        return self._dispatcher.poll(self._slot, now)

    def next_arrival(self, now: float) -> Optional[float]:
        return self._dispatcher.wake_after(now)


@dataclass(frozen=True)
class ReplayResult:
    """One trace replayed under one policy.

    Attributes:
        policy: Policy label.
        trace_kind: Arrival-process family replayed.
        seed: Trace seed (the whole result reproduces from it).
        max_mpl: Slot count (concurrency cap).
        outcomes: Every completed query, in completion order.
        makespan: Last completion time.
        deferrals: Decisions where the policy declined a free slot.
        decisions: Policy invocations.
        decision_seconds: Wall-clock time inside ``policy.pick``.
        sim_events: Engine scheduling events processed.
    """

    policy: str
    trace_kind: str
    seed: int
    max_mpl: int
    outcomes: Tuple[QueryOutcome, ...]
    makespan: float
    deferrals: int
    decisions: int
    decision_seconds: float
    sim_events: int

    def _sorted_totals(self) -> List[float]:
        return sorted(o.total_seconds for o in self.outcomes)

    def percentile(self, q: float) -> float:
        """q-quantile (0..1) of client-observed latency."""
        return _percentile(self._sorted_totals(), q)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def mean_queue_seconds(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.queue_seconds for o in self.outcomes) / len(self.outcomes)

    @property
    def pairwise_accuracy(self) -> Optional[float]:
        """Rank quality of the decision-time predictions.

        Over every pair of completed queries whose *realized* execution
        latencies differ: did the backend's decision-time predictions
        order them the same way?  ``None`` when the replay ran without
        a backend (no predictions to judge) or no pair of realized
        latencies differs.
        """
        if not self.outcomes:
            return None
        predictions = [o.predicted_exec_seconds for o in self.outcomes]
        if any(p is None for p in predictions):
            return None
        from ..eval.metrics import pairwise_counts  # avoid an import cycle

        correct, comparable = pairwise_counts(
            [o.exec_seconds for o in self.outcomes], predictions
        )
        if comparable == 0:
            return None
        return correct / comparable

    def to_doc(self) -> Dict[str, object]:
        """JSON-ready summary (outcomes elided)."""
        return {
            "policy": self.policy,
            "trace_kind": self.trace_kind,
            "seed": self.seed,
            "max_mpl": self.max_mpl,
            "completed": len(self.outcomes),
            "makespan": self.makespan,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "mean_queue_seconds": self.mean_queue_seconds,
            "deferrals": self.deferrals,
            "decisions": self.decisions,
            "pairwise_accuracy": self.pairwise_accuracy,
        }


def replay_trace(
    trace: ArrivalTrace,
    policy: SchedulerPolicy,
    catalog: TemplateCatalog,
    max_mpl: int = 5,
    registry: Optional[Registry] = None,
    jitter: bool = False,
    backend: Optional[PredictionBackend] = None,
) -> ReplayResult:
    """Replay *trace* under *policy* on *catalog*'s simulated machine.

    Args:
        trace: The arrival stream (drives all randomness via its seed).
        policy: Scheduling policy consulted at every free slot.
        catalog: Maps template ids to executable profiles; its config
            defines the machine.
        max_mpl: Execution slots — the hard concurrency cap.
        registry: Optional metrics registry for queue-depth / admission
            / wait instrumentation.
        jitter: Draw per-instance parameter jitter (seeded from the
            trace seed).  Off by default so the predictor and the
            replayed queries see identical plans.
        backend: When given, every dispatch records the backend's
            prediction of the admitted query's execution latency in
            the mix it joined, and the result carries
            :attr:`ReplayResult.pairwise_accuracy` — predictions are
            pure, so the replay itself is unchanged.
    """
    if max_mpl < 1:
        raise ModelError("max_mpl must be >= 1")
    if not trace.arrivals:
        raise ModelError("trace has no arrivals")
    rng = np.random.default_rng(trace.seed) if jitter else None
    dispatcher = QueueDispatcher(
        trace, policy, catalog, rng=rng, registry=registry, backend=backend
    )
    slots = [_SlotStream(i, dispatcher) for i in range(max_mpl)]
    executor = ConcurrentExecutor(
        catalog.config, rng=np.random.default_rng(trace.seed)
    )
    result: RunResult = executor.run(slots)

    outcomes = []
    for item in result.completions:
        stats = item.stats
        arrival_time = dispatcher.dispatched.get(stats.instance_id)
        if arrival_time is None:  # pragma: no cover — bookkeeping bug
            raise ModelError(
                f"completion {stats.instance_id} was never dispatched"
            )
        outcomes.append(
            QueryOutcome(
                template=stats.template_id,
                arrival_time=arrival_time,
                start_time=stats.start_time,
                end_time=stats.end_time,
                predicted_exec_seconds=dispatcher.predicted.get(
                    stats.instance_id
                ),
            )
        )
    if len(outcomes) != len(trace.arrivals):
        raise ModelError(
            f"replay completed {len(outcomes)} of {len(trace.arrivals)} "
            "arrivals"
        )
    if registry is not None:
        latency_hist = registry.histogram(
            "sched_latency_seconds",
            "Client-observed latency (arrival to completion)",
            labels=("policy",),
            buckets=_SECONDS_BUCKETS,
        ).labels(policy.name)
        latency_hist.observe_many([o.total_seconds for o in outcomes])
    return ReplayResult(
        policy=policy.name,
        trace_kind=trace.kind,
        seed=trace.seed,
        max_mpl=max_mpl,
        outcomes=tuple(outcomes),
        makespan=max(o.end_time for o in outcomes),
        deferrals=dispatcher.deferrals,
        decisions=dispatcher.decisions,
        decision_seconds=dispatcher.decision_seconds,
        sim_events=result.events,
    )


@dataclass(frozen=True)
class CompareReport:
    """The same trace replayed under several policies.

    Attributes:
        trace_kind: Arrival-process family.
        seed: Trace seed.
        rate: Configured mean arrival rate.
        count: Arrivals replayed.
        results: One :class:`ReplayResult` per policy, in input order.
    """

    trace_kind: str
    seed: int
    rate: float
    count: int
    results: Tuple[ReplayResult, ...]

    def result_for(self, policy: str) -> ReplayResult:
        for result in self.results:
            if result.policy == policy:
                return result
        raise ModelError(f"no result for policy {policy!r}")

    def to_doc(self) -> Dict[str, object]:
        return {
            "trace_kind": self.trace_kind,
            "seed": self.seed,
            "rate": self.rate,
            "count": self.count,
            "results": [r.to_doc() for r in self.results],
        }

    def format_table(self) -> str:
        header = (
            f"{'policy':<11} {'done':>5} {'makespan':>10} {'p50':>8} "
            f"{'p95':>8} {'p99':>8} {'mean-wait':>10} {'defer':>6} "
            f"{'pair-acc':>8}"
        )
        rows = [header, "-" * len(header)]
        for r in self.results:
            accuracy = r.pairwise_accuracy
            rows.append(
                f"{r.policy:<11} {len(r.outcomes):>5} {r.makespan:>10.1f} "
                f"{r.p50:>8.1f} {r.p95:>8.1f} {r.p99:>8.1f} "
                f"{r.mean_queue_seconds:>10.1f} {r.deferrals:>6} "
                + (f"{accuracy:>8.3f}" if accuracy is not None else f"{'-':>8}")
            )
        return "\n".join(rows)


def compare_policies(
    trace: ArrivalTrace,
    policies: Sequence[SchedulerPolicy],
    catalog: TemplateCatalog,
    max_mpl: int = 5,
    registry: Optional[Registry] = None,
    backend: Optional[PredictionBackend] = None,
) -> CompareReport:
    """Replay one trace under every policy and collect the results.

    Policies replay sequentially on identical fresh machines (cold
    cache each) so the comparison isolates the scheduling decision.
    With a *backend*, every policy's result additionally reports the
    rank quality of the backend's decision-time predictions
    (:attr:`ReplayResult.pairwise_accuracy`).
    """
    if not policies:
        raise ModelError("need at least one policy")
    results = tuple(
        replay_trace(
            trace,
            policy,
            catalog,
            max_mpl=max_mpl,
            registry=registry,
            backend=backend,
        )
        for policy in policies
    )
    return CompareReport(
        trace_kind=trace.kind,
        seed=trace.seed,
        rate=trace.rate,
        count=len(trace.arrivals),
        results=results,
    )
