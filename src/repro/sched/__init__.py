"""Prediction-driven scheduling: traces, policies, and queue replay.

The paper's payoff is *decisions*: "better scheduling decisions for
large query batches" (Sec. 1).  This package turns the predictor into a
control loop:

* :mod:`repro.sched.traces` — seed-deterministic open-loop arrival
  processes (Poisson, bursty MMPP, diurnal) emitting
  ``(arrival_time, template)`` streams from configurable template
  distributions;
* :mod:`repro.sched.policies` — a common scheduling-policy protocol
  with a FIFO baseline, an SLA-aware admission-gated FIFO (reusing
  :class:`~repro.apps.admission.AdmissionController`), and a
  prediction-driven reordering policy that picks the next admission by
  minimizing the predicted makespan of the resulting mix;
* :mod:`repro.sched.replay` — an event-driven queue simulator that
  couples arrivals to the virtual-time
  :class:`~repro.engine.executor.ConcurrentExecutor` through the timed
  -arrival stream extension, enforces an MPL cap, and reports
  per-policy p50/p95/p99 latency and makespan.

See docs/SCHEDULING.md for policy semantics and how to read the
benchmark output.
"""

from .policies import (
    FifoPolicy,
    GatedFifoPolicy,
    PredictivePolicy,
    SchedulerPolicy,
    make_policy,
)
from .replay import (
    CompareReport,
    QueryOutcome,
    ReplayResult,
    compare_policies,
    replay_trace,
)
from .traces import (
    Arrival,
    ArrivalTrace,
    TemplateDistribution,
    TraceConfig,
    bursty_trace,
    diurnal_trace,
    generate_trace,
    poisson_trace,
)

__all__ = [
    "Arrival",
    "ArrivalTrace",
    "CompareReport",
    "FifoPolicy",
    "GatedFifoPolicy",
    "PredictivePolicy",
    "QueryOutcome",
    "ReplayResult",
    "SchedulerPolicy",
    "TemplateDistribution",
    "TraceConfig",
    "bursty_trace",
    "compare_policies",
    "diurnal_trace",
    "generate_trace",
    "make_policy",
    "poisson_trace",
    "replay_trace",
]
