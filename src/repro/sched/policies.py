"""Scheduling policies over a predicted-latency queue.

A policy answers one question, posed by the replay simulator whenever an
execution slot is free: *which queued query, if any, should join the
running mix right now?*  Three answers are implemented:

``fifo``
    Arrival order, always admit.  The baseline every prediction-driven
    gain is measured against.

``gated``
    FIFO order, but the head of the queue only joins when the
    :class:`~repro.apps.admission.AdmissionController` predicts every
    member of the resulting mix stays within its SLA.  Head-of-line
    blocking is deliberate — it is the classic admission-control
    discipline the paper's Sec. 1 motivates.

``predictive``
    Reordering: score the first *window* queued candidates by the
    predicted marginal makespan of the mix they would create
    (``predict_known`` for every member of ``running + candidate``) and
    admit the candidate whose mix finishes soonest.  With an empty mix
    this degenerates to shortest-predicted-job-first.

Policies see template ids only; the replay layer maps ids to resource
profiles and owns the MPL cap (a policy is consulted only when a slot
is free).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..apps.admission import (
    AdmissionController,
    PredictionBackend,
    predicted_candidate_latencies,
    predicted_mix_latencies,
)
from ..errors import ModelError

__all__ = [
    "FifoPolicy",
    "GatedFifoPolicy",
    "PredictivePolicy",
    "SchedulerPolicy",
    "POLICY_NAMES",
    "make_policy",
]


@runtime_checkable
class SchedulerPolicy(Protocol):
    """What the replay simulator needs from a policy.

    Attributes:
        name: Stable label, used for metric labels and report rows.
    """

    name: str

    def pick(
        self,
        now: float,
        running: Sequence[int],
        queue: Sequence[int],
    ) -> Optional[int]:
        """Index into *queue* of the query to admit, or None to wait.

        Called only when an execution slot is free and *queue* is
        non-empty.  Returning None defers until the next completion
        (or the next arrival) re-poses the question.
        """
        ...


class FifoPolicy:
    """Admit strictly in arrival order; never defer."""

    name = "fifo"

    def pick(
        self,
        now: float,
        running: Sequence[int],
        queue: Sequence[int],
    ) -> Optional[int]:
        return 0 if queue else None


class GatedFifoPolicy:
    """FIFO with SLA-aware admission gating (head-of-line blocking).

    Args:
        controller: The admission policy; its backend may be embedded
            or remote — the decision code is identical.
    """

    name = "gated"

    def __init__(self, controller: AdmissionController):
        self._controller = controller

    @property
    def controller(self) -> AdmissionController:
        return self._controller

    def pick(
        self,
        now: float,
        running: Sequence[int],
        queue: Sequence[int],
    ) -> Optional[int]:
        if not queue:
            return None
        if not running:
            # An idle system always makes progress: a solo query cannot
            # violate an SLA expressed relative to isolated latency.
            return 0
        decision = self._controller.check(tuple(running), queue[0])
        return 0 if decision.admitted else None


class PredictivePolicy:
    """Admit the candidate whose resulting mix is predicted cheapest.

    For each of the first *window* queued candidates, predict the
    latency of every member of ``running + candidate`` and score the
    mix; admit the argmin.  The default objective is the predicted
    *makespan* (worst member latency — when the mix would drain); the
    ``"sum"`` objective minimizes total predicted latency instead,
    favouring aggregate throughput over tail.

    The window is scored through one
    :func:`~repro.apps.admission.predicted_candidate_latencies` array
    call (duplicate candidates deduplicated first), not a per-candidate
    Python loop; :meth:`score` remains the scalar single-candidate
    reference and :meth:`pick` matches its argmin bit-for-bit.

    Args:
        backend: Prediction backend (embedded Contender or remote).
        window: How deep into the queue to search.  Bounded so decision
            cost stays O(window * mpl) predictions, not O(queue).
        objective: ``"makespan"`` or ``"sum"``.
    """

    name = "predictive"

    def __init__(
        self,
        backend: PredictionBackend,
        window: int = 8,
        objective: str = "makespan",
    ):
        if window < 1:
            raise ModelError("window must be >= 1")
        if objective not in ("makespan", "sum"):
            raise ModelError("objective must be 'makespan' or 'sum'")
        self._backend = backend
        self._window = window
        self._objective = objective

    @property
    def window(self) -> int:
        return self._window

    def score(self, running: Sequence[int], candidate: int) -> float:
        """Predicted cost of the mix *candidate* would create."""
        mix = (*running, candidate)
        if len(mix) == 1:
            # MPL 1 has no contention model; the isolated latency is the
            # exact answer, and scoring by it yields SPJF.
            return self._backend.isolated_latency(candidate)
        latencies = predicted_mix_latencies(self._backend, mix)
        if self._objective == "sum":
            return float(sum(latencies))
        return float(max(latencies))

    def pick(
        self,
        now: float,
        running: Sequence[int],
        queue: Sequence[int],
    ) -> Optional[int]:
        if not queue:
            return None
        window = [int(c) for c in queue[: self._window]]
        row: Dict[int, int] = {}
        for candidate in window:
            row.setdefault(candidate, len(row))
        latencies = predicted_candidate_latencies(
            self._backend, tuple(running), tuple(row)
        )
        # Fold member columns one at a time so the score reproduces the
        # scalar ``sum``/``max`` over the mix exactly (no reassociation).
        scores = latencies[:, 0].copy()
        for col in range(1, latencies.shape[1]):
            if self._objective == "sum":
                scores += latencies[:, col]
            else:
                np.maximum(scores, latencies[:, col], out=scores)
        # First occurrence of the minimum — identical to the scalar
        # strict-< scan (duplicates score identically, so deduplication
        # cannot move the winner).
        return int(np.argmin(np.array([scores[row[c]] for c in window])))


#: Policy labels :func:`make_policy` accepts, in report order.
POLICY_NAMES = ("fifo", "gated", "predictive")


def make_policy(
    name: str,
    backend: Optional[PredictionBackend] = None,
    sla_factor: float = 1.5,
    max_mpl: int = 5,
    window: int = 8,
    objective: str = "makespan",
) -> SchedulerPolicy:
    """Build a policy by label.

    ``fifo`` needs no predictor; ``gated`` and ``predictive`` require
    *backend*.  *max_mpl* is forwarded to the admission controller so
    the gate and the replay slot cap agree.
    """
    if name == "fifo":
        return FifoPolicy()
    if name in ("gated", "predictive") and backend is None:
        raise ModelError(f"policy {name!r} requires a prediction backend")
    if name == "gated":
        controller = AdmissionController(
            backend, sla_factor=sla_factor, max_mpl=max_mpl
        )
        return GatedFifoPolicy(controller)
    if name == "predictive":
        return PredictivePolicy(backend, window=window, objective=objective)
    raise ModelError(
        f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
    )
