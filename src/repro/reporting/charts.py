"""Plain-text charts (bars, grouped bars, scatter, line series).

No plotting dependencies exist offline, and the paper's figures are
simple: per-template bars (Figs. 3, 7), grouped bars by MPL (Figs. 8-10),
a coefficient scatter (Fig. 4), and latency-vs-MPL lines (Fig. 6).
These renderers cover exactly those shapes.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from ..errors import ReproError

_FULL = "█"
_HALF = "▌"


def _validate_width(width: int) -> None:
    if width < 8:
        raise ReproError("chart width must be >= 8 columns")


def _bar(value: float, v_max: float, width: int) -> str:
    if v_max <= 0:
        return ""
    units = value / v_max * width
    whole = int(units)
    text = _FULL * whole
    if units - whole >= 0.5 and whole < width:
        text += _HALF
    return text


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 40,
    value_format: str = "{:.1%}",
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart: one ``(label, value)`` per row.

    Values must be non-negative; bars scale to the maximum.
    """
    _validate_width(width)
    if not items:
        raise ReproError("bar_chart needs at least one item")
    if any(v < 0 for _, v in items):
        raise ReproError("bar_chart values must be non-negative")
    v_max = max(v for _, v in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines: List[str] = [title] if title else []
    for label, value in items:
        bar = _bar(value, v_max, width)
        lines.append(
            f"{label:>{label_width}} | {bar:<{width}} {value_format.format(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    value_format: str = "{:.1%}",
    title: Optional[str] = None,
) -> str:
    """Grouped bars: ``{group: {series: value}}`` (the Fig. 8-10 layout)."""
    _validate_width(width)
    if not groups:
        raise ReproError("grouped_bar_chart needs at least one group")
    all_values = [v for series in groups.values() for v in series.values()]
    if not all_values:
        raise ReproError("grouped_bar_chart needs at least one value")
    if any(v < 0 for v in all_values):
        raise ReproError("grouped_bar_chart values must be non-negative")
    v_max = max(all_values) or 1.0
    series_width = max(
        len(name) for series in groups.values() for name in series
    )
    lines: List[str] = [title] if title else []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            bar = _bar(value, v_max, width)
            lines.append(
                f"  {name:>{series_width}} | {bar:<{width}} "
                f"{value_format.format(value)}"
            )
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 48,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
) -> str:
    """Character-grid scatter plot (the Fig. 4 coefficient cloud)."""
    _validate_width(width)
    if height < 4:
        raise ReproError("scatter height must be >= 4 rows")
    if not points:
        raise ReproError("scatter_plot needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = "o"

    lines: List[str] = [title] if title else []
    lines.append(f"{y_label} ({y_min:.2f} .. {y_max:.2f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_min:.2f} .. {x_max:.2f})")
    return "\n".join(lines)


def series_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 48,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
) -> str:
    """Several (x, y) series on one grid, one marker per series (Fig. 6)."""
    _validate_width(width)
    if not series:
        raise ReproError("series_plot needs at least one series")
    markers = "ox+*#@%&"
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ReproError("series_plot needs at least one point")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for idx, (name, pts) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker} = {name}")
        for x, y in pts:
            col = int((x - x_min) / x_span * (width - 1))
            row = int((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = [title] if title else []
    lines.append(f"{y_label} ({y_min:.0f} .. {y_max:.0f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_min:.0f} .. {x_max:.0f})   " + "   ".join(legend))
    return "\n".join(lines)
