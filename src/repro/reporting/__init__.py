"""Terminal rendering of the paper's figures.

The experiment runners return structured results; this subpackage turns
them into the bar charts and scatter plots the paper prints — as plain
text, so reports and CI logs carry the figures, not just the numbers.
"""

from .charts import bar_chart, grouped_bar_chart, scatter_plot, series_plot

__all__ = ["bar_chart", "grouped_bar_chart", "scatter_plot", "series_plot"]
