"""Lightweight span/trace recording with deterministic IDs.

Distributed tracers mint random span IDs; that would make two runs of
the same campaign produce different traces, which defeats the purpose in
a reproduction whose whole value is determinism.  Here every ID is a
BLAKE2b digest of ``(seed, name, key)``:

* the *seed* is the campaign seed (or any stable root), so traces are
  reproducible run to run;
* the *key* defaults to a per-recorder ordinal, which is deterministic
  for serial code; concurrent producers pass an explicit key derived
  from task identity (the campaign uses its ``(kind, key, mpl)`` task
  tuples), making IDs independent of completion order exactly like
  :func:`repro.core.campaign.task_seed`.

Spans nest through an explicit stack per recorder (`with
recorder.span(...)`), carry free-form attributes, and export to plain
dicts for JSON serialization.  :data:`NULL_TRACE` is the shared no-op
recorder for disabled paths.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "NULL_TRACE",
    "NullTraceRecorder",
    "Span",
    "TraceRecorder",
    "span_id",
]


def span_id(seed: int, name: str, key: Any = None) -> str:
    """A 16-hex-digit deterministic span ID.

    Stable across processes and runs for the same ``(seed, name, key)``;
    *key* must have a stable ``repr`` (ints, strings, tuples thereof),
    the same contract as :func:`repro.core.campaign.task_seed`.
    """
    material = repr((int(seed), str(name), key)).encode()
    return hashlib.blake2b(material, digest_size=8).hexdigest()


@dataclass
class Span:
    """One named interval with attributes and an optional parent.

    Attributes:
        name: Operation name (dotted convention, e.g. ``campaign.execute``).
        span_id: Deterministic ID (see :func:`span_id`).
        parent_id: Enclosing span's ID, or ``None`` for a root.
        start: Clock reading at entry.
        end: Clock reading at exit (``None`` while open).
        attributes: Free-form metadata attached at creation or via
            :meth:`set_attribute`.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds; 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_doc(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class TraceRecorder:
    """Collects spans for one logical operation tree.

    Args:
        seed: Root of the deterministic ID derivation (campaign seed).
        clock: Time source; injectable for tests.  Wall-clock durations
            vary run to run — only the IDs and the tree shape are
            reproducible.
    """

    def __init__(
        self, seed: int = 0, clock: Callable[[], float] = time.perf_counter
    ):
        self._seed = int(seed)
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._ordinal = 0

    @property
    def seed(self) -> int:
        return self._seed

    def start_span(
        self,
        name: str,
        key: Any = None,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span; pair with :meth:`end_span` (or use :meth:`span`).

        *key* scopes the deterministic ID; when omitted, a per-recorder
        ordinal is used (deterministic for serial span sequences).
        """
        with self._lock:
            if key is None:
                key = ("ordinal", self._ordinal)
            self._ordinal += 1
            if parent is None and self._stack:
                parent = self._stack[-1]
            span = Span(
                name=name,
                span_id=span_id(self._seed, name, key),
                parent_id=parent.span_id if parent is not None else None,
                start=self._clock(),
                attributes=dict(attributes),
            )
            self._spans.append(span)
            self._stack.append(span)
            return span

    def end_span(self, span: Span) -> None:
        """Close *span* (and anything left open above it on the stack)."""
        with self._lock:
            span.end = self._clock()
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()

    @contextmanager
    def span(self, name: str, key: Any = None, **attributes: Any) -> Iterator[Span]:
        """Context-managed span: opens on entry, closes on exit."""
        opened = self.start_span(name, key=key, **attributes)
        try:
            yield opened
        finally:
            self.end_span(opened)

    @property
    def spans(self) -> List[Span]:
        """All recorded spans in creation order."""
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> List[Span]:
        """Spans whose name equals *name*, in creation order."""
        return [s for s in self.spans if s.name == name]

    def to_docs(self) -> List[Dict[str, Any]]:
        """Every span as a JSON-serializable dict."""
        return [span.to_doc() for span in self.spans]


class NullTraceRecorder:
    """A recorder that drops everything (the disabled path)."""

    _SPAN = Span(name="", span_id="0" * 16, parent_id=None, start=0.0, end=0.0)

    def start_span(self, name, key=None, parent=None, **attributes) -> Span:
        return self._SPAN

    def end_span(self, span: Span) -> None:
        pass

    @contextmanager
    def span(self, name, key=None, **attributes) -> Iterator[Span]:
        yield self._SPAN

    @property
    def spans(self) -> List[Span]:
        return []

    def find(self, name: str) -> List[Span]:
        return []

    def to_docs(self) -> List[Dict[str, Any]]:
        return []


#: Shared no-op recorder.
NULL_TRACE = NullTraceRecorder()
