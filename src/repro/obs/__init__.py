"""Observability: metrics, exporters, and deterministic tracing.

The three runtime layers — the virtual-time executor, the sampling
campaign, and the prediction server — report into this package:

* :mod:`repro.obs.metrics` — thread-safe counters, gauges, and
  fixed-bucket histograms behind a get-or-create :class:`Registry`,
  with label support and a no-op :class:`NullRegistry` for disabled
  paths (the engine hot loop pays zero cost unless a registry is
  explicitly installed);
* :mod:`repro.obs.export` — Prometheus text-format and JSON renderers
  (the server's ``/metrics`` endpoint and the ``repro stats`` CLI);
* :mod:`repro.obs.tracing` — a span API whose IDs derive
  deterministically from the campaign seed, so traces reproduce.

Everything is stdlib-only by design: the package must import (and the
server must scrape) on a bare Python install.
"""

from .export import CONTENT_TYPE_LATEST, render_json, render_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    NULL_REGISTRY,
    NullRegistry,
    Registry,
)
from .tracing import NULL_TRACE, NullTraceRecorder, Span, TraceRecorder, span_id

__all__ = [
    "CONTENT_TYPE_LATEST",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "NULL_REGISTRY",
    "NULL_TRACE",
    "NullRegistry",
    "NullTraceRecorder",
    "Registry",
    "Span",
    "TraceRecorder",
    "render_json",
    "render_prometheus",
    "span_id",
]
