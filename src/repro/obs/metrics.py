"""Dependency-free metrics core: counters, gauges, histograms, registry.

The instrument model mirrors the Prometheus client library, scaled down
to what this codebase needs and implemented on the stdlib alone:

* a :class:`Registry` maps metric names to *families*; a family carries
  the name, help string, type, and label schema;
* families with no labels behave as the instrument itself (``.inc()``
  directly); labelled families mint one child instrument per label-value
  combination via :meth:`~MetricFamily.labels`;
* all instruments are thread-safe (one lock per family — updates are a
  handful of arithmetic ops, so contention is not a concern outside the
  engine hot loop, which never takes the lock per event by design);
* registration is get-or-create: asking twice for the same name returns
  the same family, and a schema mismatch raises
  :class:`~repro.errors.ObservabilityError`.  That lets every layer
  declare its instruments locally while sharing one registry.

For the engine hot loop the contract is stronger than "cheap": with
observability disabled the executor must not execute a single extra
bytecode per event.  :data:`NULL_REGISTRY` supports callers that want
branch-free code anyway — every method is a no-op — but the executor
itself guards on ``is None`` so the disabled path stays untouched.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ObservabilityError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricFamily",
    "NULL_REGISTRY",
    "NullRegistry",
    "Registry",
    "Sample",
]

#: Default histogram buckets (seconds): spans sub-millisecond serving
#: latencies up to multi-minute simulated drains.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelValues = Tuple[str, ...]


class Sample:
    """One exported time-series point: label values plus a value."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: Mapping[str, str], value: float):
        self.labels = dict(labels)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Sample({self.labels!r}, {self.value!r})"


class HistogramSnapshot:
    """Point-in-time histogram state: cumulative buckets, sum, count."""

    __slots__ = ("buckets", "sum", "count")

    def __init__(
        self, buckets: Sequence[Tuple[float, int]], total: float, count: int
    ):
        self.buckets = list(buckets)  # (upper_bound, cumulative_count)
        self.sum = total
        self.count = count


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ObservabilityError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(
        self, lock: threading.Lock, fn: Optional[Callable[[], float]] = None
    ):
        self._lock = lock
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to *value* if it is below it (peak tracking)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution of observed values.

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    tail, so ``observe`` never drops a value.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: Sequence[float]):
        self._lock = lock
        self._bounds = tuple(bounds)
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a batch of observations under a single lock acquisition.

        For hot loops that buffer locally and flush once (the engine's
        per-phase drain latencies); equivalent to observing one by one.
        """
        bounds = self._bounds
        indices = [bisect_left(bounds, value) for value in values]
        with self._lock:
            counts = self._counts
            for index in indices:
                counts[index] += 1
            self._sum += sum(values)
            self._count += len(values)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> HistogramSnapshot:
        """Cumulative (Prometheus-style) view of the buckets."""
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self._bounds, counts):
            running += bucket_count
            cumulative.append((bound, running))
        cumulative.append((float("inf"), count))
        return HistogramSnapshot(cumulative, total, count)


def _validate_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    bounds = tuple(float(b) for b in buckets)
    if not bounds:
        raise ObservabilityError("histogram needs at least one bucket")
    if list(bounds) != sorted(set(bounds)):
        raise ObservabilityError("histogram buckets must strictly increase")
    return bounds


class MetricFamily:
    """All time series sharing one metric name.

    A family with an empty label schema holds exactly one child and
    forwards the instrument API to it, so unlabelled metrics read as
    ``registry.counter("x", "...").inc()``.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
        fn: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.label_names = label_names
        self.buckets = buckets
        self._fn = fn
        self._lock = threading.Lock()
        self._children: Dict[LabelValues, object] = {}
        if not label_names:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.type == "counter":
            return Counter(self._lock)
        if self.type == "gauge":
            return Gauge(self._lock, fn=self._fn)
        return Histogram(self._lock, self.buckets or DEFAULT_BUCKETS)

    def labels(self, *values: object):
        """The child instrument for one label-value combination."""
        if len(values) != len(self.label_names):
            raise ObservabilityError(
                f"{self.name}: expected {len(self.label_names)} label "
                f"value(s) {self.label_names}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    # Unlabelled convenience surface --------------------------------------

    def _solo(self):
        if self.label_names:
            raise ObservabilityError(
                f"{self.name} is labelled by {self.label_names}; "
                "call .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_max(self, value: float) -> None:
        self._solo().set_max(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        self._solo().observe_many(values)

    def snapshot(self) -> HistogramSnapshot:
        return self._solo().snapshot()

    @property
    def value(self) -> float:
        return self._solo().value

    # Export surface ------------------------------------------------------

    def children(self) -> List[Tuple[LabelValues, object]]:
        """Stable-order (label values, instrument) pairs."""
        with self._lock:
            return sorted(self._children.items(), key=lambda kv: kv[0])

    def total(self) -> float:
        """Sum of every child's value (counters and gauges only)."""
        if self.type == "histogram":
            raise ObservabilityError(f"{self.name}: histograms have no total")
        return sum(child.value for _, child in self.children())

    def _signature(self) -> tuple:
        return (self.type, self.label_names, self.buckets)


class Registry:
    """Thread-safe, get-or-create collection of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ObservabilityError(f"invalid label name {label!r}")
        bounds = _validate_buckets(buckets) if buckets is not None else None
        if metric_type == "histogram" and bounds is None:
            bounds = DEFAULT_BUCKETS
        family = MetricFamily(name, help_text, metric_type, label_names, bounds, fn)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing._signature() != family._signature():
                    raise ObservabilityError(
                        f"metric {name!r} already registered with a "
                        f"different type, labels, or buckets"
                    )
                return existing
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """A counter family (get-or-create)."""
        return self._register(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """A gauge family (get-or-create)."""
        return self._register(name, help_text, "gauge", labels)

    def gauge_function(
        self, name: str, help_text: str, fn: Callable[[], float]
    ) -> MetricFamily:
        """An unlabelled gauge whose value is *fn()* at collection time."""
        return self._register(name, help_text, "gauge", (), fn=fn)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        """A histogram family (get-or-create)."""
        return self._register(name, help_text, "histogram", labels, buckets)

    def collect(self) -> List[MetricFamily]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under *name*, or None."""
        with self._lock:
            return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families


class _NullInstrument:
    """Absorbs the whole instrument surface as no-ops."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Sequence[float]) -> None:
        pass

    def labels(self, *values: object) -> "_NullInstrument":
        return self

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(buckets=[], sum=0.0, count=0)

    def total(self) -> float:
        return 0.0

    @property
    def value(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """A registry whose instruments all discard their updates.

    Lets layered code take "a registry" unconditionally and stay
    branch-free; the engine hot loop goes further and skips even the
    no-op calls by guarding on ``metrics is None``.
    """

    def counter(self, name, help_text="", labels=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, help_text="", labels=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge_function(self, name, help_text, fn) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name, help_text="", labels=(), buckets=None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def collect(self) -> List[MetricFamily]:
        return []

    def get(self, name: str) -> None:
        return None

    def __contains__(self, name: str) -> bool:
        return False


#: Shared no-op registry for callers that want branch-free disabled code.
NULL_REGISTRY = NullRegistry()
