"""Registry exporters: Prometheus text exposition and plain JSON.

The Prometheus renderer follows the text exposition format 0.0.4 —
``# HELP`` / ``# TYPE`` headers, escaped label values, and the
``_bucket``/``_sum``/``_count`` expansion for histograms with cumulative
``le`` buckets — so the ``/metrics`` endpoint scrapes cleanly with a
stock Prometheus server.  The JSON renderer is a structured mirror of
the same data for dashboards and the ``repro stats`` CLI.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Union

from .metrics import Counter, Gauge, Histogram, NullRegistry, Registry

__all__ = ["CONTENT_TYPE_LATEST", "render_json", "render_prometheus"]

#: Content-Type of the Prometheus text format this module renders.
CONTENT_TYPE_LATEST = "text/plain; version=0.0.4; charset=utf-8"

AnyRegistry = Union[Registry, NullRegistry]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_str(names, values, extra: Mapping[str, str] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in dict(extra).items()
    )
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry: AnyRegistry) -> str:
    """The registry's current state in Prometheus text format."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for values, child in family.children():
            if isinstance(child, Histogram):
                snap = child.snapshot()
                for bound, cumulative in snap.buckets:
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_str(family.label_names, values, {'le': _fmt(bound)})}"
                        f" {cumulative}"
                    )
                labels = _label_str(family.label_names, values)
                lines.append(f"{family.name}_sum{labels} {_fmt(snap.sum)}")
                lines.append(f"{family.name}_count{labels} {snap.count}")
            else:
                labels = _label_str(family.label_names, values)
                lines.append(f"{family.name}{labels} {_fmt(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: AnyRegistry) -> Dict[str, Any]:
    """The registry's current state as a JSON-serializable document."""
    doc: Dict[str, Any] = {}
    for family in registry.collect():
        samples: List[Dict[str, Any]] = []
        for values, child in family.children():
            labels = dict(zip(family.label_names, values))
            if isinstance(child, Histogram):
                snap = child.snapshot()
                samples.append(
                    {
                        "labels": labels,
                        "buckets": [
                            {
                                "le": bound if math.isfinite(bound) else "+Inf",
                                "count": cumulative,
                            }
                            for bound, cumulative in snap.buckets
                        ],
                        "sum": snap.sum,
                        "count": snap.count,
                    }
                )
            else:
                samples.append({"labels": labels, "value": child.value})
        doc[family.name] = {
            "type": family.type,
            "help": family.help,
            "samples": samples,
        }
    return doc
