"""One registry, three layers: engine + campaign + serving on one page.

The acceptance path for the observability layer: run the simulator, run
a (tiny) sampling campaign, and serve predictions, all reporting into a
single shared :class:`Registry` — then scrape the server's ``/metrics``
and find every layer's families in one Prometheus exposition.
"""

import pytest

from repro.config import (
    HardwareSpec,
    ObservabilityConfig,
    ServingConfig,
    SimulationConfig,
    SystemConfig,
)
from repro.core.training import collect_training_data
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile
from repro.obs.export import render_json
from repro.obs.metrics import Registry
from repro.obs.tracing import TraceRecorder
from repro.sampling.steady_state import SteadyStateConfig
from repro.serving import PredictionClient, PredictionServer, save_artifact
from repro.units import MB
from repro.workload.catalog import TemplateCatalog


@pytest.fixture(scope="module")
def scrape(small_contender, tmp_path_factory):
    registry = Registry()
    tracer = TraceRecorder(seed=42)

    # Layer 1: the discrete-event executor, with the debug tier on so
    # the per-phase drain histogram shows up in the exposition too.
    engine_config = SystemConfig(
        hardware=HardwareSpec(seq_bandwidth=MB(100), random_iops=100.0),
        simulation=SimulationConfig(restart_cost=0.0),
        observability=ObservabilityConfig(engine_phase_timings=True),
    )
    executor = ConcurrentExecutor(engine_config, metrics=registry)
    executor.run([SingleShotStream(
        ResourceProfile(
            template_id=1, phases=(Phase(label="scan", seq_bytes=MB(10)),)
        ),
        name="s0",
    )])

    # Layer 2: a tiny sampling campaign.
    collect_training_data(
        TemplateCatalog().subset((26, 71)),
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=2),
        metrics=registry,
        tracer=tracer,
    )

    # Layer 3: the prediction server, scraped over HTTP.
    path = tmp_path_factory.mktemp("obs-e2e") / "model.json"
    save_artifact(small_contender, path)
    config = ServingConfig(port=0, workers=1, batch_window=0.0)
    with PredictionServer.from_artifact(
        path, config=config, metrics=registry
    ) as srv:
        with PredictionClient(srv.host, srv.port) as cli:
            cli.predict(26, (26, 65))
            cli.health()
            text = cli.metrics_text()
    return registry, tracer, text


def test_all_three_layers_share_one_exposition(scrape):
    _, _, text = scrape
    for family in (
        "engine_runs_total",
        "engine_events_total",
        "engine_vt_service_integral",
        "engine_phase_drain_seconds_bucket",
        "campaign_tasks_total",
        "campaign_task_seconds_bucket",
        "campaign_workers",
        "serving_requests_total",
        "serving_request_seconds_bucket",
        "serving_cache_misses",
    ):
        assert family in text, f"{family} missing from /metrics"
    # Spot-check real numbers made it through the wire.
    assert "engine_runs_total " in text
    assert 'serving_requests_total{endpoint="predict"} 1' in text


def test_layers_did_not_clobber_each_other(scrape):
    registry, _, _ = scrape
    # Engine ran once directly; the campaign runs its own executors with
    # campaign-level (not engine-level) instrumentation, so the direct
    # run is still the only one counted.
    assert registry.get("engine_runs_total").value == 1
    assert registry.get("campaign_tasks_total").total() > 0
    assert registry.get("serving_requests_total").total() >= 3


def test_json_mirror_covers_the_same_families(scrape):
    registry, _, _ = scrape
    doc = render_json(registry)
    assert {"engine_runs_total", "campaign_tasks_total",
            "serving_requests_total"} <= set(doc)


def test_campaign_trace_rides_alongside(scrape):
    _, tracer, _ = scrape
    assert tracer.find("campaign.collect")
    assert tracer.find("campaign.execute")
