"""Report generator, harness caching, and extension runners at small scale."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments import ext_operator_model
from repro.experiments.harness import ExperimentContext as Ctx


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.small(mpls=(2,))


def test_harness_caches_training_data_in_memory(ctx):
    first = ctx.training_data()
    second = ctx.training_data()
    assert first is second


def test_harness_disk_cache_round_trip(tmp_path):
    context = ExperimentContext.small(mpls=(2,))
    context.cache_dir = tmp_path
    data = context.training_data()
    cached_files = list(tmp_path.glob("campaign-*.pkl"))
    assert len(cached_files) == 1

    fresh = ExperimentContext.small(mpls=(2,))
    fresh.cache_dir = tmp_path
    reloaded = fresh.training_data()
    assert reloaded.template_ids == data.template_ids


def test_harness_cache_key_depends_on_settings(tmp_path):
    a = ExperimentContext.small(mpls=(2,))
    a.cache_dir = tmp_path
    a.training_data()
    b = ExperimentContext.small(mpls=(2,), template_ids=(26, 62, 71))
    b.cache_dir = tmp_path
    b.training_data()
    assert len(list(tmp_path.glob("campaign-*.pkl"))) == 2


def test_harness_cache_key_is_jobs_independent(tmp_path):
    """Parallelism is a throughput knob: any `jobs` shares one cache."""
    a = ExperimentContext.small(mpls=(2,))
    a.cache_dir = tmp_path
    a.training_data()
    b = ExperimentContext.small(mpls=(2,))
    b.cache_dir = tmp_path
    b.jobs = 4
    b.catalog.config = b.catalog.config.with_jobs(2)
    assert b._cache_key() == a._cache_key()
    b.training_data()
    assert len(list(tmp_path.glob("campaign-*.pkl"))) == 1


def test_harness_cache_key_carries_format_version(tmp_path):
    """Bumping the campaign format must invalidate old cache entries."""
    from repro.experiments import harness

    context = ExperimentContext.small(mpls=(2,))
    key = context._cache_key()
    original = harness.CAMPAIGN_CACHE_FORMAT
    try:
        harness.CAMPAIGN_CACHE_FORMAT = original + 1
        assert context._cache_key() != key
    finally:
        harness.CAMPAIGN_CACHE_FORMAT = original


def test_contender_cached_per_context(ctx):
    assert ctx.contender() is ctx.contender()


def test_report_generates_for_small_context(ctx):
    from repro.experiments.report import generate

    text = generate(ctx, include_ml=False)
    assert "# EXPERIMENTS" in text
    assert "Table 2" in text
    assert "Figure 9" in text
    assert "future work #3" in text
    assert "```text" in text


def test_ext_operator_model_small(ctx):
    result = ext_operator_model.run(ctx)
    assert set(result.qs_known) == {2}
    assert result.operator_new[2] < 0.5
    assert "operator-level" in result.format_table()
