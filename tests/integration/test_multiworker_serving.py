"""End-to-end tests of the pre-fork multi-worker front end.

The heart of the file is the reload hammer: multi-process clients fire
predictions while the artifact is flipped between two models, and every
response must satisfy the version-consistency invariant — the latency it
carries is exactly what the model named by its ``model_version`` would
predict.  A worker racing a reload may answer from either generation,
but never with model A's latency stamped with model B's version.
"""

import json
import multiprocessing
import os
import time
from dataclasses import replace

import pytest

from repro.config import LifecycleConfig, ServingConfig
from repro.core.contender import Contender
from repro.errors import ServingError
from repro.serving import (
    MultiWorkerServer,
    PredictionClient,
    load_artifact,
    multiworker_supported,
    save_artifact,
)
from repro.serving.protocol import PredictRequest

pytestmark = pytest.mark.skipif(
    not multiworker_supported()[0],
    reason=f"multi-worker serving unavailable: {multiworker_supported()[1]}",
)

_CONFIG = ServingConfig(port=0, worker_processes=2)


@pytest.fixture(scope="module")
def artifact_a(small_contender, tmp_path_factory):
    path = tmp_path_factory.mktemp("mw") / "model_a.json"
    save_artifact(small_contender, path)
    return path


@pytest.fixture(scope="module")
def contender_b(small_catalog):
    """A second, genuinely different model over a template subset."""
    from repro.core.training import collect_training_data
    from repro.sampling.steady_state import SteadyStateConfig

    subset = small_catalog.subset(tuple(small_catalog.template_ids)[:4])
    data = collect_training_data(
        subset,
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=4),
    )
    return Contender(data)


def test_health_reports_worker_liveness(artifact_a):
    with MultiWorkerServer(artifact_a, _CONFIG) as server:
        with PredictionClient(server.host, server.port) as client:
            health = client.health()
            assert health.status == "ok"
            assert health.workers is not None
            assert health.workers["count"] == 2
            assert health.workers["alive"] == 2
            pids = {w["pid"] for w in health.workers["workers"]}
            assert len(pids) == 2 and os.getpid() not in pids


def test_predictions_bit_identical_across_worker_counts(artifact_a):
    """--workers 1 and --workers N serve byte-identical predictions."""
    model = load_artifact(artifact_a)
    ids = model.contender.template_ids
    pairs = [(a, (a, b)) for a in ids for b in ids[:3]]

    def collect(workers: int):
        config = replace(_CONFIG, worker_processes=workers)
        with MultiWorkerServer(artifact_a, config) as server:
            with PredictionClient(server.host, server.port) as client:
                return [
                    client.predict(primary, mix).latency
                    for primary, mix in pairs
                ]

    single = collect(1)
    multi = collect(2)
    assert single == multi  # exact float equality, not approx
    expected = [
        model.contender.predict_known(primary, mix) for primary, mix in pairs
    ]
    assert single == expected


def test_batch_and_errors_through_the_async_path(artifact_a):
    model = load_artifact(artifact_a)
    ids = model.contender.template_ids
    with MultiWorkerServer(artifact_a, _CONFIG) as server:
        with PredictionClient(server.host, server.port) as client:
            items = [
                PredictRequest(primary=a, mix=(a, b))
                for a in ids[:4]
                for b in ids[:4]
            ]
            response = client.predict_batch(items)
            assert len(response.items) == len(items)
            for item, got in zip(items, response.items):
                assert got.latency == model.contender.predict_known(
                    item.primary, item.mix
                )
            # The same batch again answers from the cache.
            again = client.predict_batch(items)
            assert all(item.cached for item in again.items)

            from repro.errors import ModelError

            with pytest.raises(ModelError):
                client.predict(999_999, (999_999, ids[0]))


def test_shutdown_unlinks_all_segments(artifact_a):
    from multiprocessing import shared_memory

    from repro.serving.shm import _untrack

    server = MultiWorkerServer(artifact_a, _CONFIG)
    server.start()
    names = [seg.name for _gen, seg in server._segments]
    names.append(server.control.name)
    server.shutdown()
    for name in names:
        with pytest.raises(FileNotFoundError):
            probe = shared_memory.SharedMemory(name=name)
            _untrack(probe)
            probe.close()


def test_observe_fans_in_to_worker_zero(artifact_a):
    model = load_artifact(artifact_a)
    ids = model.contender.template_ids
    lifecycle = LifecycleConfig(enabled=True)
    with MultiWorkerServer(artifact_a, _CONFIG, lifecycle=lifecycle) as server:
        with PredictionClient(server.host, server.port) as client:
            predicted = model.contender.predict_known(ids[0], (ids[0], ids[1]))
            # Hit every worker's socket at least once: SO_REUSEPORT
            # balances by connection, so issue observes over several
            # fresh connections.
            for _ in range(8):
                with PredictionClient(server.host, server.port) as burst:
                    burst.observe(ids[0], (ids[0], ids[1]), predicted * 1.01)
            deadline = time.monotonic() + 10.0
            monitored = 0
            while time.monotonic() < deadline and not monitored:
                # Fresh connections so the stats probes land on both
                # workers; only worker 0's monitor holds the residuals.
                for _ in range(6):
                    with PredictionClient(server.host, server.port) as probe:
                        doc = probe.stats()
                    templates = (doc.get("lifecycle") or {}).get(
                        "templates", []
                    )
                    monitored = max(monitored, len(templates))
                time.sleep(0.2)
            assert monitored >= 1  # the fan-in delivered to one monitor


# ----------------------------------------------------------------------
# The reload hammer.


def _hammer_client(host, port, pairs, version_latency, duration, out):
    """Fire predictions for *duration* seconds; report any inconsistency.

    *version_latency* maps model_version -> {pair: expected_latency}.
    Each response must match its claimed version's expectation exactly.
    """
    import itertools

    violations = []
    checked = 0
    with PredictionClient(host, port, timeout=10.0) as client:
        deadline = time.monotonic() + duration
        for primary, mix in itertools.cycle(pairs):
            if time.monotonic() >= deadline:
                break
            try:
                response = client.predict(primary, mix)
            except ServingError:
                continue  # mid-flip timeout; consistency is what matters
            checked += 1
            expected = version_latency.get(response.model_version)
            if expected is None:
                violations.append(
                    (primary, mix, response.model_version, "unknown version")
                )
            elif response.latency != expected[(primary, mix)]:
                violations.append(
                    (
                        primary,
                        mix,
                        response.model_version,
                        response.latency,
                        expected[(primary, mix)],
                    )
                )
    out.put((checked, violations))


def test_reload_hammer_never_mixes_versions(
    artifact_a, small_contender, contender_b, tmp_path
):
    """Multi-process clients + artifact flips: every response's latency
    must come from the model its ``model_version`` names."""
    path = tmp_path / "hammer.json"
    save_artifact(small_contender, path)
    info_a = load_artifact(path).info

    path_b = tmp_path / "model_b.json"
    save_artifact(contender_b, path_b)
    info_b = load_artifact(path_b).info
    assert info_a.fingerprint != info_b.fingerprint

    # Pairs valid under BOTH models (model B covers a template subset).
    shared_ids = [
        t
        for t in contender_b.template_ids
        if t in small_contender.template_ids
    ]
    assert len(shared_ids) >= 2
    pairs = [(a, (a, b)) for a in shared_ids for b in shared_ids]
    version_latency = {
        info_a.version: {
            pair: small_contender.predict_known(*pair) for pair in pairs
        },
        info_b.version: {
            pair: contender_b.predict_known(*pair) for pair in pairs
        },
    }
    doc_a = json.loads(path.read_text())
    doc_b = json.loads(path_b.read_text())

    config = replace(_CONFIG, worker_processes=2)
    duration = 4.0
    with MultiWorkerServer(path, config) as server:
        ctx = multiprocessing.get_context("fork")
        out = ctx.Queue()
        clients = [
            ctx.Process(
                target=_hammer_client,
                args=(
                    server.host,
                    server.port,
                    pairs,
                    version_latency,
                    duration,
                    out,
                ),
                daemon=True,
            )
            for _ in range(3)
        ]
        for p in clients:
            p.start()

        # Flip the artifact back and forth while the hammer runs.
        flips = 0
        with PredictionClient(server.host, server.port) as admin:
            deadline = time.monotonic() + duration - 0.5
            current = "a"
            while time.monotonic() < deadline:
                nxt = doc_b if current == "a" else doc_a
                current = "b" if current == "a" else "a"
                path.write_text(json.dumps(nxt))
                result = admin.reload()
                assert result["reloaded"] is True
                flips += 1
                time.sleep(0.15)

        results = [out.get(timeout=30.0) for _ in clients]
        for p in clients:
            p.join(timeout=10.0)

    assert flips >= 2, "hammer must actually exercise reload"
    total_checked = sum(checked for checked, _ in results)
    all_violations = [v for _, violations in results for v in violations]
    assert total_checked > 0
    assert all_violations == [], (
        f"{len(all_violations)}/{total_checked} responses mixed model "
        f"versions: {all_violations[:5]}"
    )
