"""Failure injection: corrupted inputs surface as clean errors.

A production library must fail loudly on bad data, not emit garbage
predictions.  These tests tamper with every input surface.
"""

import pytest

from repro.core.contender import Contender
from repro.core.training import MixObservation, SpoilerCurve, TemplateProfile, TrainingData
from repro.errors import ModelError, ReproError


def test_negative_observed_latency_rejected():
    with pytest.raises(ModelError):
        MixObservation(primary=1, mix=(1, 2), latency=-5.0, latency_std=0.0, num_samples=1)


def test_zero_samples_rejected():
    with pytest.raises(ModelError):
        MixObservation(primary=1, mix=(1, 2), latency=5.0, latency_std=0.0, num_samples=0)


def test_primary_outside_mix_rejected():
    with pytest.raises(ModelError):
        MixObservation(primary=9, mix=(1, 2), latency=5.0, latency_std=0.0, num_samples=1)


def test_profile_with_nan_latency_rejected():
    with pytest.raises(ModelError):
        TemplateProfile(
            template_id=1,
            isolated_latency=float("nan"),
            io_fraction=0.5,
            working_set_bytes=0,
            records_accessed=0,
            plan_steps=1,
            fact_scans=frozenset(),
        )


def test_profile_with_io_fraction_above_one_rejected():
    with pytest.raises(ModelError):
        TemplateProfile(
            template_id=1,
            isolated_latency=10.0,
            io_fraction=1.5,
            working_set_bytes=0,
            records_accessed=0,
            plan_steps=1,
            fact_scans=frozenset(),
        )


def test_contender_with_missing_spoiler_curve_fails_cleanly(small_training_data):
    crippled = TrainingData(
        profiles=dict(small_training_data.profiles),
        spoilers={},  # all spoiler samples lost
        observations=dict(small_training_data.observations),
        scan_seconds=dict(small_training_data.scan_seconds),
    )
    contender = Contender(crippled)
    with pytest.raises(ModelError):
        contender.predict_known(26, (26, 65))


def test_contender_with_no_mix_samples_fails_cleanly(small_training_data):
    crippled = TrainingData(
        profiles=dict(small_training_data.profiles),
        spoilers=dict(small_training_data.spoilers),
        observations={},  # campaign lost
        scan_seconds=dict(small_training_data.scan_seconds),
    )
    contender = Contender(crippled)
    with pytest.raises(ModelError):
        contender.predict_known(26, (26, 65))


def test_spoiler_curve_missing_mpl_fails_cleanly(small_training_data):
    truncated = {
        t: SpoilerCurve(template_id=t, latencies={1: c.latency_at(1)})
        for t, c in small_training_data.spoilers.items()
    }
    data = TrainingData(
        profiles=dict(small_training_data.profiles),
        spoilers=truncated,
        observations=dict(small_training_data.observations),
        scan_seconds=dict(small_training_data.scan_seconds),
    )
    with pytest.raises(ModelError):
        Contender(data).predict_known(26, (26, 65))


def test_all_library_errors_share_a_root(small_training_data):
    """Everything raised on purpose is catchable as ReproError."""
    contender = Contender(small_training_data)
    with pytest.raises(ReproError):
        contender.predict_known(999, (999, 26))
