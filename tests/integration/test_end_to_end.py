"""End-to-end integration tests on the full 25-template campaign.

These assert the paper's *qualitative* claims on the complete pipeline:
variant orderings, category behaviour, and the headline accuracy bands.
The full campaign fixture is session-scoped (a few seconds once).
"""

import numpy as np
import pytest

from repro.core.contender import Contender, NewTemplateVariant, SpoilerMode
from repro.core.cqi import CQIVariant
from repro.core.evaluation import (
    evaluate_known_templates,
    evaluate_new_templates,
    evaluate_spoiler_predictors,
    overall_mre,
    summarize_by_template,
)
from repro.metrics.fit import pearson_r


@pytest.fixture(scope="module")
def contender(full_training_data):
    return Contender(full_training_data)


def test_workload_latency_band(full_training_data):
    """Sec. 2: 25 templates, isolated latencies within 130-1000 s."""
    lats = [p.isolated_latency for p in full_training_data.profiles.values()]
    assert len(lats) == 25
    assert min(lats) >= 130
    assert max(lats) <= 1100


def test_table2_variant_ordering(full_training_data, rng):
    """Table 2: Baseline > Positive >= CQI in error."""
    mre = {}
    for variant in CQIVariant:
        records = evaluate_known_templates(
            full_training_data, (2, 3, 4, 5), variant=variant, rng=rng
        )
        mre[variant] = overall_mre(records)
    assert mre[CQIVariant.BASELINE_IO] > mre[CQIVariant.POSITIVE_IO]
    assert mre[CQIVariant.POSITIVE_IO] >= mre[CQIVariant.FULL] - 0.005


def test_known_templates_beat_paper_band(full_training_data, rng):
    """Known templates: the paper achieves 19 %; the simulator is less
    noisy than real hardware, so we must land at or below ~20 %."""
    records = evaluate_known_templates(full_training_data, (2, 3, 4, 5), rng=rng)
    assert overall_mre(records) < 0.20


def test_fig8_known_beats_unknown(full_training_data, rng):
    known = overall_mre(
        evaluate_known_templates(full_training_data, (3, 4), rng=rng)
    )
    unknown = overall_mre(
        evaluate_new_templates(
            full_training_data, (3, 4), spoiler_mode=SpoilerMode.MEASURED
        )
    )
    assert known < unknown


def test_fig8_unknown_y_beats_unknown_qs(full_training_data):
    uy = overall_mre(
        evaluate_new_templates(
            full_training_data,
            (3, 4, 5),
            variant=NewTemplateVariant.UNKNOWN_Y,
            spoiler_mode=SpoilerMode.MEASURED,
        )
    )
    uqs = overall_mre(
        evaluate_new_templates(
            full_training_data,
            (3, 4, 5),
            variant=NewTemplateVariant.UNKNOWN_QS,
            spoiler_mode=SpoilerMode.MEASURED,
        )
    )
    assert uy < uqs


def test_fig9_knn_beats_io_time_at_every_mpl(full_training_data):
    result = evaluate_spoiler_predictors(full_training_data, (2, 3, 4, 5))
    for mpl in (2, 3, 4, 5):
        assert result["KNN"][mpl] < result["I/O Time"][mpl], f"MPL {mpl}"


def test_spoiler_growth_linear_in_mpl(full_training_data):
    """Sec. 5.5: spoiler latency is (approximately) linear in the MPL."""
    for tid in full_training_data.template_ids:
        curve = full_training_data.spoiler(tid)
        mpls = np.array(curve.mpls, dtype=float)
        lats = np.array([curve.latency_at(int(m)) for m in mpls])
        slope, intercept = np.polyfit(mpls, lats, 1)
        predicted = slope * mpls + intercept
        ss_res = float(np.sum((lats - predicted) ** 2))
        ss_tot = float(np.sum((lats - lats.mean()) ** 2))
        assert 1 - ss_res / ss_tot > 0.88, f"template {tid}"


def test_fig6_growth_categories(full_training_data):
    """T62 slow growth < T71 medium < T22 heavy (at MPL 5)."""

    def growth(tid):
        curve = full_training_data.spoiler(tid)
        return curve.latency_at(5) / curve.latency_at(1)

    assert growth(62) < growth(71) < growth(22)


def test_fig7_io_bound_templates_predicted_well(full_training_data, rng):
    records = evaluate_known_templates(full_training_data, (4,), rng=rng)
    per_template = summarize_by_template(records)
    average = overall_mre(records)
    io_mean = np.mean([per_template[t] for t in (26, 61, 62)])
    assert io_mean < average * 1.1


def test_isolated_latency_inversely_correlated_with_slope(contender):
    """Table 3's headline: light queries are more sensitive."""
    models = contender.reference_models(2)
    lats = [
        contender.data.profile(m.template_id).isolated_latency for m in models
    ]
    slopes = [m.slope for m in models]
    assert pearson_r(lats, slopes) < -0.5


def test_fig4_slope_intercept_negatively_related(contender):
    models = contender.reference_models(2)
    assert pearson_r(
        [m.intercept for m in models], [m.slope for m in models]
    ) < -0.3


def test_fig10_isolated_prediction_is_worst(full_training_data, rng):
    known = overall_mre(
        evaluate_new_templates(
            full_training_data,
            (3, 4),
            spoiler_mode=SpoilerMode.MEASURED,
            exclude=(2,),
        )
    )
    knn = overall_mre(
        evaluate_new_templates(
            full_training_data, (3, 4), spoiler_mode=SpoilerMode.KNN, exclude=(2,)
        )
    )
    from repro.core.isolated import perturb_profile

    isolated = overall_mre(
        evaluate_new_templates(
            full_training_data,
            (3, 4),
            spoiler_mode=SpoilerMode.KNN,
            exclude=(2,),
            profile_transform=lambda p: perturb_profile(p, rng),
        )
    )
    assert isolated > knn
    assert isolated > known


def test_outlier_rate_is_small(full_training_data):
    """Sec. 6.1: ~4 % of samples exceed 105 % of the spoiler latency."""
    from repro.core.continuum import exceeds_continuum

    total = over = 0
    for mpl, obs_list in full_training_data.observations.items():
        for obs in obs_list:
            bound = full_training_data.spoiler(obs.primary).latency_at(mpl)
            total += 1
            over += exceeds_continuum(obs.latency, bound)
    assert over / total < 0.10
