"""Example-script smoke tests.

Every example must at least import cleanly with a ``main``; the two
fastest ones run end to end (the heavier examples are exercised by the
equivalent apps-layer tests and benches).
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {p.stem for p in ALL_EXAMPLES}
    assert {
        "quickstart",
        "batch_scheduling",
        "cloud_provisioning",
        "admission_control",
        "ad_hoc_workload",
        "progress_estimation",
        "custom_template",
        "distributed_cluster",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
def test_every_example_defines_main(path):
    module = _load(path)
    assert callable(getattr(module, "main", None)), path.stem


@pytest.mark.parametrize("name", ["quickstart", "custom_template"])
def test_fast_examples_run_end_to_end(name):
    # The subprocess doesn't inherit pytest's `pythonpath` setting, so
    # pass the source tree explicitly (a bare checkout has no install).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (
            str(EXAMPLES_DIR.parent / "src"),
            env.get("PYTHONPATH", ""),
        )
        if p
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / f"{name}.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "predicted" in result.stdout
