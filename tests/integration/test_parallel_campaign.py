"""Serial vs. parallel campaign equivalence.

The whole point of order-independent seeding is that ``jobs`` is purely
a throughput knob: `collect_training_data` must produce bit-identical
`TrainingData` whether tasks run in-process or fan out over a process
pool, and artifacts packed from either campaign must verify to the same
fingerprint.
"""

import pytest

from repro.core.contender import Contender
from repro.core.training import collect_training_data
from repro.sampling.steady_state import SteadyStateConfig
from repro.serving.registry import save_artifact


@pytest.fixture(scope="module")
def campaigns(small_catalog):
    kwargs = dict(
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    )
    serial = collect_training_data(small_catalog, jobs=1, **kwargs)
    parallel = collect_training_data(small_catalog, jobs=4, **kwargs)
    return serial, parallel


def test_serial_and_parallel_campaigns_are_bit_identical(campaigns):
    serial, parallel = campaigns
    assert serial.to_json() == parallel.to_json()
    assert serial.profiles == parallel.profiles
    for tid in serial.template_ids:
        assert serial.spoiler(tid).latencies == parallel.spoiler(tid).latencies
    for mpl, obs in serial.observations.items():
        other = parallel.observations[mpl]
        assert [
            (o.primary, o.mix, o.latency, o.latency_std, o.num_samples)
            for o in obs
        ] == [
            (o.primary, o.mix, o.latency, o.latency_std, o.num_samples)
            for o in other
        ]
    assert serial.scan_seconds == parallel.scan_seconds


def test_packed_artifacts_share_one_fingerprint(campaigns, tmp_path):
    serial, parallel = campaigns
    info_serial = save_artifact(Contender(serial), tmp_path / "serial.json")
    info_parallel = save_artifact(
        Contender(parallel), tmp_path / "parallel.json"
    )
    assert info_serial.fingerprint == info_parallel.fingerprint


def test_jobs_zero_uses_every_core_and_matches(small_catalog):
    kwargs = dict(
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=2),
    )
    serial = collect_training_data(small_catalog, jobs=1, **kwargs)
    all_cores = collect_training_data(small_catalog, jobs=0, **kwargs)
    assert serial.to_json() == all_cores.to_json()
