"""Reproducibility: identical seeds produce identical campaigns."""

import numpy as np

from repro.core.training import collect_training_data
from repro.sampling.steady_state import SteadyStateConfig


def _collect(small_catalog, seed):
    return collect_training_data(
        small_catalog,
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=2),
        rng=np.random.default_rng(seed),
    )


def test_same_seed_same_campaign(small_catalog):
    a = _collect(small_catalog, 7)
    b = _collect(small_catalog, 7)
    assert a.to_json() == b.to_json()


def test_different_seed_different_mix_latencies(small_catalog):
    a = _collect(small_catalog, 7)
    b = _collect(small_catalog, 8)
    lat_a = [o.latency for o in a.observations[2]]
    lat_b = [o.latency for o in b.observations[2]]
    assert lat_a != lat_b


def test_isolated_profiles_are_seed_independent(small_catalog):
    """Canonical isolated profiles carry no RNG; they must agree."""
    a = _collect(small_catalog, 7)
    b = _collect(small_catalog, 8)
    for tid in a.template_ids:
        assert (
            a.profile(tid).isolated_latency == b.profile(tid).isolated_latency
        )
