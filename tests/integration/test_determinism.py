"""Reproducibility: identical seeds produce identical campaigns.

The campaign seeds every task from ``(kind, template-or-mix, mpl,
config_seed)``, so a campaign is a pure function of its seed — identical
for any task order or parallelism, different across seeds.
"""

from repro.core.training import collect_training_data
from repro.sampling.steady_state import SteadyStateConfig


def _collect(small_catalog, seed, mpls=(2,)):
    return collect_training_data(
        small_catalog,
        mpls=mpls,
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=2),
        seed=seed,
    )


def test_same_seed_same_campaign(small_catalog):
    a = _collect(small_catalog, 7)
    b = _collect(small_catalog, 7)
    assert a.to_json() == b.to_json()


def test_different_seed_different_mix_latencies(small_catalog):
    a = _collect(small_catalog, 7)
    b = _collect(small_catalog, 8)
    lat_a = [o.latency for o in a.observations[2]]
    lat_b = [o.latency for o in b.observations[2]]
    assert lat_a != lat_b


def test_isolated_profiles_are_seed_independent(small_catalog):
    """Canonical isolated profiles carry no RNG; they must agree."""
    a = _collect(small_catalog, 7)
    b = _collect(small_catalog, 8)
    for tid in a.template_ids:
        assert (
            a.profile(tid).isolated_latency == b.profile(tid).isolated_latency
        )


def test_mpl_order_does_not_change_results(small_catalog):
    """Per-task seeding makes the campaign iteration-order independent."""
    a = _collect(small_catalog, 7, mpls=(2, 3))
    b = _collect(small_catalog, 7, mpls=(3, 2))
    assert a.to_json() == b.to_json()


def test_default_seed_is_the_catalog_simulation_seed(small_catalog):
    a = _collect(small_catalog, None)
    assert a.config_seed == small_catalog.config.simulation.seed
    b = _collect(small_catalog, small_catalog.config.simulation.seed)
    assert a.to_json() == b.to_json()
