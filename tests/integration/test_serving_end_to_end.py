"""End-to-end serving tests: artifact → server → concurrent load client.

The acceptance path of the serving subsystem: start a server from a
saved registry artifact, drive it with the load client at 8 concurrent
submitters, and require (a) served predictions that match direct
``Contender.predict`` output exactly, (b) a cache hit rate above 50 % on
a repeated-mix workload, and (c) a throughput report with p50/p99/QPS.
"""

import dataclasses

import pytest

from repro.apps.admission import AdmissionController
from repro.config import ServingConfig
from repro.core.contender import SpoilerMode
from repro.core.isolated import perturb_profile
from repro.errors import ModelError, ProtocolError
from repro.serving import (
    LoadGenerator,
    PredictionClient,
    PredictionServer,
    RemotePredictionBackend,
    mix_pool_workload,
    save_artifact,
)

SUBMITTERS = 8


@pytest.fixture(scope="module")
def artifact_path(small_contender, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "model.json"
    save_artifact(small_contender, path)
    return path


@pytest.fixture(scope="module")
def server(artifact_path):
    config = ServingConfig(port=0, workers=2, batch_window=0.001)
    with PredictionServer.from_artifact(artifact_path, config=config) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with PredictionClient(server.host, server.port) as cli:
        yield cli


def test_served_predictions_match_direct_exactly(small_contender, client):
    ids = small_contender.template_ids
    for primary in ids:
        for other in ids:
            mix = (primary, other)
            served = client.predict(primary, mix).latency
            assert served == small_contender.predict_known(primary, mix)


def test_load_client_hits_cache_and_reports_percentiles(
    small_contender, server, client
):
    workload = mix_pool_workload(
        small_contender.template_ids, requests=400, pool_size=12, seed=7
    )
    report = LoadGenerator(
        server.host, server.port, submitters=SUBMITTERS
    ).run(workload)

    # (a) Every request succeeded and spot-checks match the model.
    assert report.errors == 0
    assert report.requests == 400
    sample = workload[0]
    assert client.predict(sample.primary, sample.mix).latency == (
        small_contender.predict_known(sample.primary, sample.mix)
    )

    # (b) Repeated mixes are memoized.
    stats = client.stats()
    assert stats["cache"]["hit_rate"] > 0.5

    # (c) The throughput report carries p50/p99/QPS.
    assert report.qps > 0
    assert 0 < report.p50_ms <= report.p99_ms <= report.max_ms
    table = report.format_table()
    assert "p50" in table and "p99" in table and "req/s" in table


def test_served_new_template_matches_direct(small_contender, client, rng):
    profile = dataclasses.replace(
        perturb_profile(small_contender.data.profile(71), rng),
        template_id=999,
    )
    mix = (999, 26)
    served = client.predict_new(profile, mix, spoiler_mode=SpoilerMode.KNN)
    assert served.latency == small_contender.predict_new(
        profile, mix, spoiler_mode=SpoilerMode.KNN
    )


def test_remote_admission_matches_embedded(small_contender, server):
    remote = AdmissionController(
        RemotePredictionBackend(PredictionClient(server.host, server.port)),
        sla_factor=1.5,
        max_mpl=3,
    )
    embedded = AdmissionController(small_contender, sla_factor=1.5, max_mpl=3)
    ids = small_contender.template_ids
    # The small fixture trains MPL 2 only, so keep mixes at |running| <= 1.
    for running in [(), (26,)]:
        for candidate in ids[:3]:
            assert remote.check(running, candidate) == embedded.check(
                running, candidate
            )
    # Beyond the trained MPL both sides fail identically (error parity).
    with pytest.raises(ModelError, match="MPL 3"):
        embedded.check((26, 65), 71)
    with pytest.raises(ModelError, match="MPL 3"):
        remote.check((26, 65), 71)


def test_predict_batch_matches_single_predicts(small_contender, client):
    from repro.serving.protocol import PredictRequest

    mix = (26, 65)
    items = [PredictRequest(primary=p, mix=mix) for p in mix]
    batched = client.predict_batch(items)
    assert len(batched.items) == len(items)
    for item, served in zip(items, batched.items):
        assert served.latency == small_contender.predict_known(
            item.primary, item.mix
        )


def test_remote_admission_uses_one_rpc_per_check(small_contender, server):
    raw_client = PredictionClient(server.host, server.port)
    calls = []
    original = raw_client._raw_request

    def counting(verb, path, doc=None):
        calls.append((verb, path))
        return original(verb, path, doc)

    raw_client._raw_request = counting
    controller = AdmissionController(
        RemotePredictionBackend(raw_client), sla_factor=1.5, max_mpl=3
    )

    controller.check((26,), 65)
    # First check: one batched predict for the whole simulated mix,
    # then one health RPC (isolated latencies, cached thereafter).
    assert calls == [
        ("POST", "/v1/predict-batch"),
        ("GET", "/v1/health"),
    ]

    calls.clear()
    controller.check((65,), 71)
    # Steady state: a 2-member mix is priced by exactly one RPC, not
    # one per member.
    assert calls == [("POST", "/v1/predict-batch")]


def test_admit_endpoint_mirrors_controller(small_contender, client):
    embedded = AdmissionController(small_contender, sla_factor=1.5, max_mpl=5)
    decision = embedded.check((26,), 65)
    served = client.admit((26,), 65, sla_factor=1.5, max_mpl=5)
    assert served.admitted == decision.admitted
    assert served.worst_ratio == decision.worst_ratio
    assert served.mix_after == decision.mix_after


def test_admit_mpl_cap_over_the_wire(client):
    served = client.admit((26, 65, 71), 22, max_mpl=3)
    assert not served.admitted
    assert served.worst_ratio == float("inf")


def test_health_reports_model_and_templates(small_contender, client):
    health = client.health()
    assert health.status == "ok"
    assert list(health.template_ids) == small_contender.template_ids
    assert health.model_version.startswith("v1-")
    assert health.isolated_latencies[26] == (
        small_contender.data.profile(26).isolated_latency
    )


def test_unknown_template_is_model_error(client):
    with pytest.raises(ModelError):
        client.predict(12345, (12345, 26))


def test_malformed_request_is_protocol_error(client):
    with pytest.raises(ProtocolError):
        client.predict(26, (65, 71))  # primary not in mix


def test_unknown_endpoint_is_404(server):
    import http.client

    conn = http.client.HTTPConnection(server.host, server.port, timeout=5.0)
    try:
        conn.request("GET", "/nope")
        response = conn.getresponse()
        response.read()
        assert response.status == 404
    finally:
        conn.close()


def test_reload_noop_when_artifact_unchanged(client):
    answer = client.reload()
    assert answer["reloaded"] is False


def test_hot_reload_swaps_model_and_clears_cache(
    small_contender, small_training_data, tmp_path
):
    from repro.core.contender import Contender

    path = tmp_path / "hot.json"
    save_artifact(small_contender, path)
    config = ServingConfig(port=0, workers=1, batch_window=0.0)
    with PredictionServer.from_artifact(path, config=config) as srv:
        with PredictionClient(srv.host, srv.port) as cli:
            before = cli.health().model_version
            cli.predict(26, (26, 65))

            import os

            smaller = small_training_data.restricted_to(
                [t for t in small_training_data.template_ids if t != 22]
            )
            save_artifact(Contender(smaller), path)
            os.utime(path, (1, 1))

            answer = cli.reload()
            assert answer["reloaded"] is True
            assert answer["model_version"] != before
            # The swapped model no longer knows template 22.
            with pytest.raises(ModelError):
                cli.predict(22, (22, 26))
            assert cli.stats()["cache"]["size"] == 0


def test_reload_under_concurrent_traffic_never_mixes_models(
    small_contender, small_training_data, tmp_path
):
    """Flip the artifact A/B under live ``/predict`` load.

    Every response pairs a latency with the version that produced it; a
    half-swapped model would show one version's tag with the other
    version's number.
    """
    import os
    import threading

    from repro.core.contender import Contender
    from repro.serving import load_artifact

    mix = (26, 65)
    smaller = Contender(
        small_training_data.restricted_to(
            [t for t in small_training_data.template_ids if t != 22]
        )
    )
    blobs, expected = [], {}
    for i, model in enumerate((small_contender, smaller)):
        variant = tmp_path / f"variant{i}.json"
        save_artifact(model, variant)
        expected[load_artifact(variant).info.version] = model.predict_known(
            mix[0], mix
        )
        blobs.append(variant.read_bytes())
    assert len(set(expected.values())) == 2, "variants must predict apart"

    path = tmp_path / "live.json"
    path.write_bytes(blobs[0])
    config = ServingConfig(port=0, workers=2, batch_window=0.0)
    with PredictionServer.from_artifact(path, config=config) as srv:
        stop = threading.Event()
        failures = []

        def drive():
            with PredictionClient(srv.host, srv.port) as cli:
                while not stop.is_set():
                    resp = cli.predict(mix[0], mix)
                    if resp.latency != expected[resp.model_version]:
                        failures.append((resp.model_version, resp.latency))
                        return

        drivers = [threading.Thread(target=drive) for _ in range(4)]
        for t in drivers:
            t.start()
        try:
            with PredictionClient(srv.host, srv.port) as admin:
                for flip in range(1, 9):
                    path.write_bytes(blobs[flip % 2])
                    os.utime(path, (flip, flip))
                    assert admin.reload()["reloaded"] is True
        finally:
            stop.set()
            for t in drivers:
                t.join()
        assert failures == []


def test_graceful_shutdown_refuses_new_connections(artifact_path):
    from repro.errors import ServingError

    config = ServingConfig(port=0, workers=1)
    server = PredictionServer.from_artifact(artifact_path, config=config)
    server.start()
    with PredictionClient(server.host, server.port) as cli:
        assert cli.health().status == "ok"
    server.shutdown()
    server.shutdown()  # idempotent
    with pytest.raises(ServingError):
        with PredictionClient(server.host, server.port, timeout=1.0) as cli:
            cli.health()
