"""End-to-end lifecycle: injected database growth degrades the serving
model, the detectors fire, a scoped retrain passes the shadow gate, and
the promoted model restores accuracy — all deterministically under a
fixed seed.
"""

import json

import pytest

from repro.cli import main
from repro.lifecycle.manager import run_growth_scenario

SEED = 20140324


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    state_dir = tmp_path_factory.mktemp("lifecycle-e2e")
    return run_growth_scenario(state_dir, seed=SEED), state_dir


def test_growth_degrades_then_promotion_recovers(scenario):
    report, _ = scenario
    phases = {p.name: p for p in report.phases}
    assert set(phases) == {"baseline", "drifted", "recovered"}
    # Growth pushed the error well past the baseline...
    assert phases["drifted"].mre > 3 * phases["baseline"].mre
    assert phases["drifted"].mre > report.recovery_mre
    # ...and the promoted model pulled it back under the bar.
    assert report.recovered
    assert phases["recovered"].mre <= report.recovery_mre
    assert phases["recovered"].mre < 2 * phases["baseline"].mre


def test_every_template_drifts_and_detection_precedes_promotion(scenario):
    report, _ = scenario
    drifted = {v["template_id"] for v in report.verdicts}
    assert drifted == set(report.templates)
    assert report.reaction is not None
    assert report.reaction["action"] == "promoted"
    shadow = report.reaction["shadow"]
    assert shadow["passed"] is True
    assert shadow["candidate_mre"] < shadow["incumbent_mre"]


def test_ledger_records_initialize_then_gated_promote(scenario):
    report, state_dir = scenario
    assert [r["action"] for r in report.ledger] == ["initialize", "promote"]
    promote = report.ledger[1]
    assert promote["fingerprint"] == report.promoted_fingerprint
    assert promote["previous_fingerprint"] == report.incumbent_fingerprint
    assert promote["gate"]["passed"] is True
    # The ledger on disk matches the report (and carries no timestamps).
    on_disk = json.loads((state_dir / "ledger.json").read_text())
    assert on_disk["records"] == report.ledger


def test_rerun_replays_verdicts_and_artifact_hash(scenario, tmp_path):
    first, _ = scenario
    second = run_growth_scenario(tmp_path / "replay", seed=SEED)
    # Determinism anchors: identical verdict stream (template, detector,
    # statistic, ordinal) and a bitwise-identical promoted artifact.
    assert second.verdicts == first.verdicts
    assert second.promoted_fingerprint == first.promoted_fingerprint
    assert second.incumbent_fingerprint == first.incumbent_fingerprint
    assert [p.to_doc() for p in second.phases] == [
        p.to_doc() for p in first.phases
    ]
    assert second.ledger == first.ledger


def test_different_seed_changes_the_draws(scenario, tmp_path):
    first, _ = scenario
    other = run_growth_scenario(tmp_path / "other", seed=SEED + 1)
    assert other.incumbent_fingerprint != first.incumbent_fingerprint
    # The arc still completes: drift detected, candidate promoted.
    assert other.recovered


def test_cli_run_emits_the_full_report_as_json(tmp_path, capsys):
    rc = main(
        [
            "lifecycle",
            "run",
            "--state-dir",
            str(tmp_path / "cli"),
            "--seed",
            str(SEED),
            "--json",
        ]
    )
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["recovered"] is True
    assert [r["action"] for r in doc["ledger"]] == ["initialize", "promote"]

    rc = main(["lifecycle", "status", "--state-dir", str(tmp_path / "cli")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "promote" in out and "gate" in out
