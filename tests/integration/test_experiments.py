"""Experiment-runner integration tests at reduced scale."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments import (
    ablations,
    fig1_lhs,
    fig2_steady_state,
    fig4_coefficients,
    fig6_spoiler_growth,
    fig7_cqi_mpl4,
    fig9_spoiler_prediction,
    sec54_sampling_cost,
    table2_cqi,
    table3_features,
)
from repro.core.cqi import CQIVariant


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.small(mpls=(2,))


def test_fig1_grid_has_one_mark_per_row_and_column(ctx):
    result = fig1_lhs.run(ctx, num_templates=5)
    grid = result.grid()
    assert all(sum(row) == 1 for row in grid)
    assert all(sum(col) == 1 for col in zip(*grid))
    assert "X" in result.format_table()


def test_fig2_timelines_are_contiguous(ctx):
    result = fig2_steady_state.run(ctx, mix=(26, 71))
    for timeline in result.timelines:
        for (start_a, end_a), (start_b, _) in zip(
            timeline.spans, timeline.spans[1:]
        ):
            assert end_a == pytest.approx(start_b)
    assert 0.0 <= result.outlier_rate <= 1.0
    assert "steady-state" in result.format_table()


def test_fig2_trims_first_and_last(ctx):
    result = fig2_steady_state.run(ctx, mix=(26, 71))
    for timeline in result.timelines:
        assert timeline.kept[0] is False
        assert timeline.kept[-1] is False


def test_table2_reports_all_variants(ctx):
    result = table2_cqi.run(ctx)
    assert set(result.mre) == set(CQIVariant)
    assert all(0 <= v < 1 for v in result.mre.values())
    assert "Baseline I/O" in result.format_table()


def test_table3_rows_and_format(ctx):
    result = table3_features.run(ctx, mpl=2)
    names = [row[0] for row in result.rows]
    assert "Isolated latency" in names
    assert "Spoiler slowdown" in names
    assert all(-1 <= rb <= 1 and -1 <= rm <= 1 for _, rb, rm in result.rows)
    assert "paper" in result.format_table()


def test_fig4_points_per_template(ctx):
    result = fig4_coefficients.run(ctx, mpl=2)
    assert len(result.points) == len(ctx.catalog.template_ids)
    assert -1.0 <= result.correlation <= 1.0


def test_fig6_curves_and_extrapolation(ctx):
    result = fig6_spoiler_growth.run(ctx)
    assert result.curves
    for curve in result.curves.values():
        lats = [curve[m] for m in sorted(curve)]
        assert lats == sorted(lats)
    # Only MPLs 1-2 collected in the small context: extrapolation NaN-safe.
    table = result.format_table()
    assert "spoiler latency" in table


def test_fig7_average_consistent(ctx):
    result = fig7_cqi_mpl4.run(ctx, mpl=2)
    assert result.per_template
    assert 0 <= result.average < 1
    assert "Avg" in result.format_table()


def test_fig9_both_approaches_reported(ctx):
    result = fig9_spoiler_prediction.run(ctx)
    assert set(result.mre) == {"KNN", "I/O Time"}
    assert "KNN" in result.format_table()


def test_sec54_cost_ordering(ctx):
    result = sec54_sampling_cost.run(ctx)
    costs = {name: secs for name, (secs, _) in result.per_approach.items()}
    prior = costs["prior work [8] (LHS mix sampling)"]
    linear = costs["Contender linear (spoiler/MPL)"]
    constant = costs["Contender constant (KNN spoiler)"]
    assert constant < linear < prior
    assert 0 < result.spoiler_vs_mix_ratio < 1
    assert "onboarding" in result.format_table()


def test_knn_k_ablation_runs(ctx):
    result = ablations.run_knn_k_ablation(ctx, ks=(1, 3))
    assert set(result.mre_by_k) == {1, 3}
    assert "k" in result.format_table()
