"""Operational tools on the full 25-template campaign.

Diagnostics, what-if attribution, prediction intervals, and the apps
layer — exercised against the full workload to make sure they scale
past the small fixtures and reproduce the paper's qualitative analysis.
"""

import pytest

from repro.apps.admission import AdmissionController
from repro.apps.placement import balanced_placement, placement_cost
from repro.apps.scheduling import greedy_pairing, predicted_makespan
from repro.core.contender import Contender
from repro.core.diagnostics import diagnose_workload
from repro.core.whatif import attribute_slowdown, best_swap


@pytest.fixture(scope="module")
def contender(full_training_data):
    return Contender(full_training_data)


def test_diagnostics_reproduce_paper_error_analysis(contender):
    report = diagnose_workload(contender, mpl=4)
    by_id = {row.template_id: row for row in report.rows}
    # Extremely I/O-bound templates fit the CQI line best (Sec. 6.2)...
    assert by_id[62].r2 > 0.8
    assert by_id[26].r2 > 0.8
    # ...and the memory-intensive templates carry their flag.
    assert any("memory" in f for f in by_id[2].flags)
    assert any("memory" in f for f in by_id[22].flags)


def test_intervals_cover_cross_mpl(contender, full_training_data):
    covered = total = 0
    for mpl in (2, 4):
        for tid in full_training_data.template_ids:
            for obs in full_training_data.observations_for(tid, mpl):
                low, _, high = contender.predict_known_interval(
                    tid, obs.mix, sigmas=2.0
                )
                total += 1
                covered += low <= obs.latency <= high
    assert covered / total > 0.80


def test_whatif_marginals_roughly_additive_at_mpl3(contender, full_training_data):
    """Sum of MPL-3 marginals should land near the total excess latency
    (the CQI model is linear in the mean of r_c)."""
    report = attribute_slowdown(contender, 26, (26, 82, 65))
    total_excess = report.predicted - report.isolated
    marginal_sum = sum(a.marginal_seconds for a in report.attributions)
    assert marginal_sum == pytest.approx(total_excess, rel=0.75)


def test_best_swap_improves_worst_pairing(contender):
    _, predicted = best_swap(
        contender, 71, (71, 17), candidates=[65, 33, 90]
    )
    assert predicted < contender.predict_known(71, (71, 17))


def test_greedy_pairing_full_batch(contender):
    batch = [26, 33, 61, 71, 82, 22, 62, 65, 17, 25]
    pairs = greedy_pairing(contender, batch)
    assert len(pairs) == 5
    worst = [(26, 33), (61, 71), (82, 22), (62, 65), (17, 25)]
    assert predicted_makespan(contender, pairs) <= predicted_makespan(
        contender, worst
    ) * 1.001


def test_balanced_placement_full(contender):
    placement = balanced_placement(
        contender, (26, 33, 71, 62, 65, 90), num_servers=2
    )
    assert placement_cost(contender, placement) < placement_cost(
        contender, ((26, 33, 71), (62, 65, 90))
    ) * 1.001


def test_admission_controller_full(contender):
    controller = AdmissionController(contender, sla_factor=1.5, max_mpl=4)
    batches = controller.plan_batches([26, 33, 61, 71, 62, 65])
    assert sum(len(b) for b in batches) == 6
    # The SLA forces at least one split: six disjoint-I/O queries cannot
    # all run as one happy batch of 4 + 2.
    assert len(batches) >= 2
