"""Property-based tests on the concurrent executor's physics."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import HardwareSpec, SimulationConfig, SystemConfig
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile
from repro.units import MB

_CONFIG = SystemConfig(
    hardware=HardwareSpec(
        seq_bandwidth=MB(100), random_iops=100.0, random_io_variance=0.0
    ),
    simulation=SimulationConfig(restart_cost=0.0),
)


def _mixed_profile(seq_mb, rand_ops, cpu_s, relation=None, template_id=1):
    phase = Phase(
        label="work",
        relation=relation,
        seq_bytes=MB(seq_mb),
        rand_ops=rand_ops,
        cpu_seconds=cpu_s,
    )
    return ResourceProfile(template_id=template_id, phases=(phase,))


def _run(profiles):
    streams = [SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)]
    return ConcurrentExecutor(_CONFIG).run(streams)


work = st.tuples(
    st.floats(min_value=1.0, max_value=500.0),  # seq MB
    st.floats(min_value=0.0, max_value=50.0),  # rand ops
    st.floats(min_value=0.0, max_value=5.0),  # cpu s
)


@given(spec=work)
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_isolated_latency_lower_bounded_by_each_component(spec):
    seq_mb, rand_ops, cpu_s = spec
    result = _run([_mixed_profile(seq_mb, rand_ops, cpu_s)])
    latency = result.latencies()[0]
    hw = _CONFIG.hardware
    components = 0
    if seq_mb > 0:
        components += 1
    if rand_ops > 0:
        components += 1
    lower = max(
        MB(seq_mb) / hw.seq_bandwidth * (1 if components < 2 else 1),
        rand_ops / hw.random_iops,
        cpu_s,
    )
    assert latency >= lower * (1 - 1e-9)
    # And never exceeds the fully serialized sum with both I/O kinds
    # contending (factor <= number of streams).
    upper = (
        MB(seq_mb) / hw.seq_bandwidth + rand_ops / hw.random_iops
    ) * 2 + cpu_s
    assert latency <= upper + 1e-6


@given(spec=work, extra_mb=st.floats(min_value=1.0, max_value=500.0))
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
def test_adding_a_nonsharing_contender_never_speeds_up(spec, extra_mb):
    seq_mb, rand_ops, cpu_s = spec
    alone = _run([_mixed_profile(seq_mb, rand_ops, cpu_s)]).latencies()[0]
    primary = _mixed_profile(seq_mb, rand_ops, cpu_s)
    contender = _mixed_profile(extra_mb, 0.0, 0.0, template_id=2)
    together = _run([primary, contender])
    primary_latency = next(
        item.stats.latency
        for item in together.completions
        if item.stats.template_id == 1
    )
    assert primary_latency >= alone - 1e-6


@given(
    seq_mb=st.floats(min_value=10.0, max_value=300.0),
    n=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
def test_n_identical_shared_scans_finish_together_at_full_speed(seq_mb, n):
    profiles = [
        _mixed_profile(seq_mb, 0, 0, relation="sales", template_id=i)
        for i in range(n)
    ]
    result = _run(profiles)
    expected = MB(seq_mb) / _CONFIG.hardware.seq_bandwidth
    for latency in result.latencies():
        assert latency == pytest.approx(expected, rel=1e-6)


@given(
    seq_mb=st.floats(min_value=10.0, max_value=200.0),
    n=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
def test_n_private_streams_scale_latency_linearly(seq_mb, n):
    profiles = [_mixed_profile(seq_mb, 0, 0, template_id=i) for i in range(n)]
    result = _run(profiles)
    expected = n * MB(seq_mb) / _CONFIG.hardware.seq_bandwidth
    for latency in result.latencies():
        assert latency == pytest.approx(expected, rel=1e-6)


@given(spec=work)
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
def test_stats_conserve_demand(spec):
    seq_mb, rand_ops, cpu_s = spec
    result = _run([_mixed_profile(seq_mb, rand_ops, cpu_s)])
    stats = result.completions[0].stats
    # Demands below the executor's drain tolerance (1e-7 units) are
    # legitimately treated as already complete.
    assert stats.seq_bytes_read == pytest.approx(MB(seq_mb), rel=1e-6)
    assert stats.rand_ops_done == pytest.approx(rand_ops, rel=1e-6, abs=2e-7)
    assert stats.cpu_seconds == pytest.approx(cpu_s, rel=1e-6, abs=2e-7)
