"""Property tests for the blame-attribution contracts.

Three invariants over randomized workloads:

* **Conservation** — every attributed query's blame rows plus its self
  adjustments sum to its measured slowdown (latency minus the analytic
  solo baseline) to a relative 1e-6.
* **Shared-scan credit** — synchronized same-table scans save their
  co-members divisor slots, which the accounting must report as
  *negative* ``seq`` blame between group members.
* **Read-only hooks** — a run with the recorder attached is
  bit-identical to the same run without it, on the same randomized
  workloads the engine-differential suite sweeps.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import HardwareSpec, SimulationConfig, SystemConfig
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile, reader_profile
from repro.explain import ExplainRecorder, attribute, max_residual
from repro.units import GB, MB

#: Per-query stat fields that must not move when the recorder attaches.
STAT_FIELDS = (
    "start_time",
    "end_time",
    "io_seconds",
    "cpu_seconds",
    "seq_bytes_read",
    "rand_ops_done",
    "spill_bytes",
    "cache_served_bytes",
    "shared_seq_bytes",
    "working_set_bytes",
)

REL_TOL = 1e-6

RELATIONS = ("facts", "orders", "dim_date")


def _config(*, window=1.0, ram_gb=1.0, variance=0.35):
    return SystemConfig(
        hardware=HardwareSpec(
            cores=4,
            ram_bytes=GB(ram_gb),
            seq_bandwidth=MB(100),
            random_iops=120.0,
            random_io_variance=variance,
        ),
        simulation=SimulationConfig(
            engine="virtual_time", scan_share_window=window, restart_cost=0.0
        ),
    )


def _run(profiles, *, window=1.0, ram_gb=1.0, variance=0.35, background=(),
         pinned=0.0, seed=0, recorder=None):
    config = _config(window=window, ram_gb=ram_gb, variance=variance)
    streams = [
        SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)
    ]
    executor = ConcurrentExecutor(
        config, rng=np.random.default_rng(seed), recorder=recorder
    )
    result = executor.run(
        streams, background=list(background), pinned_bytes=pinned
    )
    return result, config


# The engine-differential feature space: shared or private scans,
# random I/O, CPU, working memory that may spill, dimension scans.
phases = st.builds(
    Phase,
    label=st.just("p"),
    relation=st.one_of(st.none(), st.sampled_from(RELATIONS)),
    seq_bytes=st.one_of(
        st.just(0.0), st.floats(min_value=MB(1), max_value=MB(400))
    ),
    rand_ops=st.one_of(st.just(0.0), st.floats(min_value=1.0, max_value=60.0)),
    cpu_seconds=st.one_of(
        st.just(0.0), st.floats(min_value=0.05, max_value=4.0)
    ),
    mem_bytes=st.one_of(
        st.just(0.0), st.floats(min_value=MB(16), max_value=MB(900))
    ),
    spillable=st.booleans(),
    dimension_scan=st.booleans(),
)

profiles_strategy = st.lists(
    st.builds(
        lambda ps: ResourceProfile(template_id=1, phases=tuple(ps)),
        st.lists(phases, min_size=1, max_size=3),
    ),
    min_size=1,
    max_size=5,
)

workload = st.fixed_dictionaries(
    {
        "profiles": profiles_strategy,
        "window": st.sampled_from([1.0, 0.3]),
        "ram_gb": st.sampled_from([0.25, 1.0]),
        "variance": st.sampled_from([0.0, 0.35]),
        "spoilers": st.integers(min_value=0, max_value=2),
        "seed": st.integers(min_value=0, max_value=2**31),
    }
)


def _kwargs(spec):
    return dict(
        window=spec["window"],
        ram_gb=spec["ram_gb"],
        variance=spec["variance"],
        background=[
            reader_profile(MB(200)) for _ in range(spec["spoilers"])
        ],
        pinned=GB(spec["ram_gb"]) * 0.5 if spec["spoilers"] else 0.0,
        seed=spec["seed"],
    )


def _empty(spec):
    return all(
        phase.is_empty
        for profile in spec["profiles"]
        for phase in profile.phases
    )


@given(spec=workload)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_blame_rows_sum_to_slowdown(spec):
    """Conservation: slowdown == sum(blame) + sum(self) to rel 1e-6."""
    if _empty(spec):
        return
    recorder = ExplainRecorder()
    result, config = _run(spec["profiles"], recorder=recorder, **_kwargs(spec))
    attributions = attribute(recorder, result, config)
    assert len(attributions) == len(spec["profiles"])
    assert max_residual(attributions) <= REL_TOL
    for attr in attributions:
        scale = attr.latency if attr.latency > 1.0 else 1.0
        assert abs(attr.slowdown - attr.total_attributed()) <= REL_TOL * scale


@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_shared_scans_credit_their_co_members(n, seed):
    """Same-group synchronized scans show negative seq blame rows."""
    rng = np.random.default_rng(seed)
    profiles = [
        ResourceProfile(
            template_id=2,
            phases=(
                Phase(
                    label="scan",
                    relation="facts",
                    seq_bytes=float(rng.uniform(MB(80), MB(300))),
                ),
            ),
        )
        for _ in range(n)
    ]
    recorder = ExplainRecorder()
    # No lead CPU: every scan joins the same coalesced group at t=0.
    result, config = _run(profiles, window=1.0, seed=seed, recorder=recorder)
    attributions = attribute(recorder, result, config)
    assert max_residual(attributions) <= REL_TOL
    negative_rows = 0
    for attr in attributions:
        for row in attr.blame.values():
            if row.get("seq", 0.0) < 0.0:
                negative_rows += 1
        # The shared-scan credit is balanced by a non-negative self
        # offset, never by inventing co-runner delay.
        assert attr.self_adjust.get("seq", 0.0) >= -1e-12
    assert negative_rows > 0


@given(spec=workload)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_recorder_attachment_is_bit_invisible(spec):
    """Attribution on/off: identical stats, elapsed, and completions."""
    if _empty(spec):
        return
    plain, _ = _run(spec["profiles"], **_kwargs(spec))
    recorder = ExplainRecorder()
    recorded, _ = _run(spec["profiles"], recorder=recorder, **_kwargs(spec))
    assert len(plain.completions) == len(recorded.completions)
    for a, b in zip(plain.completions, recorded.completions):
        assert a.stream_name == b.stream_name
        for field in STAT_FIELDS:
            x = getattr(a.stats, field)
            y = getattr(b.stats, field)
            assert x == y, (
                f"{a.stream_name}.{field}: plain={x!r} recorded={y!r}"
            )
    assert plain.elapsed == recorded.elapsed
    assert len(recorder.phases) > 0
