"""Differential tests: the fast engines against the reference loop.

The reference engine is the executable specification; the virtual-time
and batched engines must reproduce its physics on arbitrary workloads.
Bit-equality with the reference is impossible — it decrements remaining
work per event while virtual time subtracts a cumulative integral from
a static deadline, and those float reassociations differ — so that
equivalence is held to a relative tolerance (documented in
docs/PERFORMANCE.md): per-query stats to 1e-6, tracer aggregates to
1e-6.  The batched engine, by contrast, mirrors virtual time expression
for expression, so its runs are additionally checked *bitwise* against
the scalar virtual-time results.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import HardwareSpec, SimulationConfig, SystemConfig
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile, reader_profile
from repro.engine.trace import UtilizationTrace
from repro.units import GB, MB

#: Per-query stat fields that must agree across engines.
STAT_FIELDS = (
    "start_time",
    "end_time",
    "io_seconds",
    "cpu_seconds",
    "seq_bytes_read",
    "rand_ops_done",
    "spill_bytes",
    "cache_served_bytes",
    "shared_seq_bytes",
    "working_set_bytes",
)

REL_TOL = 1e-6

RELATIONS = ("facts", "orders", "dim_date")


def _config(engine, *, window=1.0, ram_gb=1.0, variance=0.35):
    return SystemConfig(
        hardware=HardwareSpec(
            cores=4,
            ram_bytes=GB(ram_gb),
            seq_bandwidth=MB(100),
            random_iops=120.0,
            random_io_variance=variance,
        ),
        simulation=SimulationConfig(
            engine=engine, scan_share_window=window, restart_cost=0.0
        ),
    )


def _run_engine(engine, profiles, *, window=1.0, ram_gb=1.0, variance=0.35,
                background=(), pinned=0.0, seed=0, tracer=None):
    config = _config(engine, window=window, ram_gb=ram_gb, variance=variance)
    streams = [
        SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)
    ]
    executor = ConcurrentExecutor(
        config, rng=np.random.default_rng(seed), tracer=tracer
    )
    return executor.run(streams, background=background, pinned_bytes=pinned)


def assert_equivalent(ref, vt):
    """Both engines produced the same completions with the same physics."""
    assert len(ref.completions) == len(vt.completions)
    for a, b in zip(ref.completions, vt.completions):
        assert a.stream_name == b.stream_name
        assert a.stats.template_id == b.stats.template_id
        assert a.stats.instance_id == b.stats.instance_id
        for field in STAT_FIELDS:
            x = getattr(a.stats, field)
            y = getattr(b.stats, field)
            assert x == pytest.approx(y, rel=REL_TOL, abs=1e-6), (
                f"{a.stream_name}.{field}: reference={x!r} virtual_time={y!r}"
            )
    assert ref.elapsed == pytest.approx(vt.elapsed, rel=REL_TOL)


def assert_bitwise(vt, bt):
    """The batched engine must equal scalar virtual time exactly."""
    assert len(vt.completions) == len(bt.completions)
    for a, b in zip(vt.completions, bt.completions):
        assert a.stream_name == b.stream_name
        assert a.stats == b.stats, (
            f"{a.stream_name}: virtual_time={a.stats!r} batched={b.stats!r}"
        )
    assert vt.elapsed == bt.elapsed


# A phase drawn from the full feature space: shared or private scans,
# random I/O, CPU, working memory that may spill, dimension scans.
phases = st.builds(
    Phase,
    label=st.just("p"),
    relation=st.one_of(st.none(), st.sampled_from(RELATIONS)),
    seq_bytes=st.one_of(
        st.just(0.0), st.floats(min_value=MB(1), max_value=MB(400))
    ),
    rand_ops=st.one_of(st.just(0.0), st.floats(min_value=1.0, max_value=60.0)),
    cpu_seconds=st.one_of(
        st.just(0.0), st.floats(min_value=0.05, max_value=4.0)
    ),
    mem_bytes=st.one_of(
        st.just(0.0), st.floats(min_value=MB(16), max_value=MB(900))
    ),
    spillable=st.booleans(),
    dimension_scan=st.booleans(),
)

profiles_strategy = st.lists(
    st.builds(
        lambda ps: ResourceProfile(template_id=1, phases=tuple(ps)),
        st.lists(phases, min_size=1, max_size=3),
    ),
    min_size=1,
    max_size=5,
)

workload = st.fixed_dictionaries(
    {
        "profiles": profiles_strategy,
        "window": st.sampled_from([1.0, 0.3]),
        "ram_gb": st.sampled_from([0.25, 1.0]),
        "variance": st.sampled_from([0.0, 0.35]),
        "spoilers": st.integers(min_value=0, max_value=2),
        "seed": st.integers(min_value=0, max_value=2**31),
    }
)


@given(spec=workload)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_engines_agree_on_randomized_workloads(spec):
    """Sweep randomized stream sets through both engines."""
    if all(
        phase.is_empty
        for profile in spec["profiles"]
        for phase in profile.phases
    ):
        return  # nothing to simulate
    kwargs = dict(
        window=spec["window"],
        ram_gb=spec["ram_gb"],
        variance=spec["variance"],
        background=[
            reader_profile(MB(200)) for _ in range(spec["spoilers"])
        ],
        pinned=GB(spec["ram_gb"]) * 0.5 if spec["spoilers"] else 0.0,
        seed=spec["seed"],
    )
    ref = _run_engine("reference", spec["profiles"], **kwargs)
    vt = _run_engine("virtual_time", spec["profiles"], **kwargs)
    bt = _run_engine("batched", spec["profiles"], **kwargs)
    assert_equivalent(ref, vt)
    assert_equivalent(ref, bt)
    assert_bitwise(vt, bt)


@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
    window=st.sampled_from([1.0, 0.3]),
)
@settings(max_examples=25, deadline=None)
def test_engines_agree_on_shared_scan_groups(n, seed, window):
    """Concurrent same-table scans: coalescing and join windows."""
    rng = np.random.default_rng(seed)
    profiles = []
    for _ in range(n):
        size = float(rng.uniform(MB(50), MB(300)))
        lead_cpu = float(rng.uniform(0.0, 2.0))
        profiles.append(
            ResourceProfile(
                template_id=2,
                phases=(
                    Phase(label="warm", cpu_seconds=lead_cpu),
                    Phase(label="scan", relation="facts", seq_bytes=size),
                ),
            )
        )
    ref = _run_engine("reference", profiles, window=window, seed=seed)
    vt = _run_engine("virtual_time", profiles, window=window, seed=seed)
    bt = _run_engine("batched", profiles, window=window, seed=seed)
    assert_equivalent(ref, vt)
    assert_equivalent(ref, bt)
    assert_bitwise(vt, bt)


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None)
def test_engines_agree_with_tracer_attached(seed):
    """Tracer on/off must not perturb either engine, and the traces of
    the two engines must aggregate identically."""
    rng = np.random.default_rng(seed)
    profiles = [
        ResourceProfile(
            template_id=3,
            phases=(
                Phase(
                    label="dim",
                    relation="dim_date",
                    seq_bytes=MB(20),
                    dimension_scan=True,
                ),
                Phase(
                    label="join",
                    relation="facts",
                    seq_bytes=float(rng.uniform(MB(30), MB(120))),
                    rand_ops=float(rng.uniform(0, 20)),
                    cpu_seconds=float(rng.uniform(0, 1.0)),
                    mem_bytes=MB(300),
                    spillable=True,
                ),
            ),
        )
        for _ in range(3)
    ]
    traces = {}
    results = {}
    for engine in ("reference", "virtual_time"):
        traces[engine] = UtilizationTrace()
        results[engine] = _run_engine(
            engine, profiles, ram_gb=0.5, seed=seed, tracer=traces[engine]
        )
        untraced = _run_engine(engine, profiles, ram_gb=0.5, seed=seed)
        assert results[engine].elapsed == untraced.elapsed  # same engine: exact
    assert_equivalent(results["reference"], results["virtual_time"])
    ref_trace, vt_trace = traces["reference"], traces["virtual_time"]
    assert ref_trace.elapsed == pytest.approx(vt_trace.elapsed, rel=REL_TOL)
    assert ref_trace.seq_bytes_total() == pytest.approx(
        vt_trace.seq_bytes_total(), rel=REL_TOL
    )
    assert ref_trace.logical_seq_bytes_total() == pytest.approx(
        vt_trace.logical_seq_bytes_total(), rel=REL_TOL
    )
    assert ref_trace.mean_concurrency() == pytest.approx(
        vt_trace.mean_concurrency(), rel=REL_TOL
    )
    ref_occ = ref_trace.phase_occupancy()
    vt_occ = vt_trace.phase_occupancy()
    assert set(ref_occ) == set(vt_occ)
    for label, seconds in ref_occ.items():
        assert seconds == pytest.approx(vt_occ[label], rel=REL_TOL, abs=1e-6)
