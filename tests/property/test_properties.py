"""Property-based tests (hypothesis) on the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import HardwareSpec
from repro.core.continuum import continuum_point, latency_from_point
from repro.core.cqi import CQICalculator, CQIVariant
from repro.core.training import TemplateProfile
from repro.engine import disk
from repro.engine.memory import MemoryLedger
from repro.metrics.errors import mean_relative_error
from repro.metrics.fit import r_squared, signed_r_squared
from repro.ml.linreg import SimpleLinearRegression
from repro.sampling.lhs import latin_hypercube
from repro.sampling.mixes import all_mixes, mix_count
from repro.units import GB

# ----------------------------------------------------------------------
# LHS invariants.


@given(
    n=st.integers(min_value=1, max_value=12),
    mpl=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_lhs_every_dimension_is_a_permutation(n, mpl, seed):
    templates = list(range(100, 100 + n))
    design = latin_hypercube(templates, mpl, np.random.default_rng(seed))
    assert len(design) == n
    for dim in range(mpl):
        assert sorted(m[dim] for m in design) == templates


# ----------------------------------------------------------------------
# Mix-space counting.


@given(
    n=st.integers(min_value=1, max_value=8),
    mpl=st.integers(min_value=1, max_value=4),
)
def test_enumeration_matches_count_formula(n, mpl):
    templates = list(range(n))
    assert len(all_mixes(templates, mpl)) == mix_count(n, mpl)
    assert mix_count(n, mpl) == math.comb(n + mpl - 1, mpl)


# ----------------------------------------------------------------------
# Continuum round trip.


@given(
    l_min=st.floats(min_value=1.0, max_value=1e4),
    span=st.floats(min_value=1e-3, max_value=1e4),
    latency=st.floats(min_value=1.0, max_value=1e5),
)
def test_continuum_round_trip(l_min, span, latency):
    l_max = l_min + span
    point = continuum_point(latency, l_min, l_max)
    back = latency_from_point(point, l_min, l_max)
    # The inverse floors absurd latencies; inside the floor it is exact.
    if latency >= 0.05 * l_min:
        assert back == pytest.approx(latency, rel=1e-9)


@given(
    l_min=st.floats(min_value=1.0, max_value=1e4),
    span=st.floats(min_value=1e-3, max_value=1e4),
)
def test_continuum_endpoints(l_min, span):
    l_max = l_min + span
    assert continuum_point(l_min, l_min, l_max) == 0.0
    assert continuum_point(l_max, l_min, l_max) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Disk fair share conserves capacity.


@given(
    seq_owners=st.lists(st.integers(0, 50), max_size=20),
    rand_owners=st.lists(st.integers(51, 99), max_size=20),
    tables=st.lists(st.sampled_from(["a", "b", "c"]), max_size=10),
)
def test_disk_allocation_conserves_device_time(seq_owners, rand_owners, tables):
    hw = HardwareSpec()
    keys = (
        [disk.private_seq_key(o) for o in seq_owners]
        + [disk.random_key(o) for o in rand_owners]
        + [disk.shared_scan_key(t) for t in tables]
    )
    rates = disk.allocate(hw, keys)
    n = rates.num_streams
    assert n == len(set(keys))
    if n:
        # Each stream's share of device time sums to exactly 1.
        seq_share = rates.seq_bytes_per_sec / hw.seq_bandwidth
        rand_share = rates.rand_ops_per_sec / hw.random_iops
        assert seq_share == pytest.approx(1.0 / n)
        assert rand_share == pytest.approx(1.0 / n)


# ----------------------------------------------------------------------
# Memory ledger never goes below the minimum grant.


@given(
    pins=st.lists(st.floats(min_value=0, max_value=GB(16)), max_size=5),
    holds=st.lists(st.floats(min_value=0, max_value=GB(16)), max_size=5),
    request=st.floats(min_value=0, max_value=GB(32)),
)
def test_ledger_invariants(pins, holds, request):
    ledger = MemoryLedger(total_bytes=GB(8))
    for i, pin in enumerate(pins):
        ledger.pin(f"pin{i}", pin)
    for i, hold in enumerate(holds):
        ledger.hold(f"q{i}", hold)
    available = ledger.available_for("probe")
    assert available >= ledger.min_grant_bytes
    spill = ledger.spill_bytes("probe", request)
    assert spill >= 0.0
    assert spill <= request
    # Spill plus what fits is exactly the request (when overflowing).
    if spill > 0:
        assert spill == pytest.approx(request - available)


# ----------------------------------------------------------------------
# CQI bounds.

_profile_strategy = st.builds(
    TemplateProfile,
    template_id=st.integers(1, 5),
    isolated_latency=st.floats(min_value=1.0, max_value=1e4),
    io_fraction=st.floats(min_value=0.0, max_value=1.0),
    working_set_bytes=st.just(0.0),
    records_accessed=st.just(0.0),
    plan_steps=st.just(1),
    fact_scans=st.sets(st.sampled_from(["a", "b", "c"])).map(frozenset),
)


@given(
    profiles=st.lists(_profile_strategy, min_size=2, max_size=5),
    scan_a=st.floats(min_value=0.0, max_value=500.0),
    scan_b=st.floats(min_value=0.0, max_value=500.0),
    variant=st.sampled_from(list(CQIVariant)),
)
@settings(suppress_health_check=[HealthCheck.too_slow])
def test_cqi_always_in_unit_interval(profiles, scan_a, scan_b, variant):
    table = {i: p for i, p in enumerate(profiles)}
    table = {
        i: TemplateProfile(
            template_id=i,
            isolated_latency=p.isolated_latency,
            io_fraction=p.io_fraction,
            working_set_bytes=0.0,
            records_accessed=0.0,
            plan_steps=1,
            fact_scans=p.fact_scans,
        )
        for i, p in table.items()
    }
    calc = CQICalculator(
        profiles=table,
        scan_seconds={"a": scan_a, "b": scan_b, "c": 10.0},
    )
    ids = list(table)
    mix = tuple(ids)
    value = calc.intensity(ids[0], mix, variant)
    assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Metric identities.


@given(
    obs=st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=30)
)
def test_mre_zero_iff_exact(obs):
    assert mean_relative_error(obs, obs) == 0.0


@given(
    obs=st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2, max_size=30),
    scale=st.floats(min_value=1.01, max_value=3.0),
)
def test_mre_of_uniform_scaling(obs, scale):
    predicted = [o * scale for o in obs]
    assert mean_relative_error(obs, predicted) == pytest.approx(scale - 1.0)


@given(
    x=st.lists(
        st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=40
    ),
    slope=st.floats(min_value=-10, max_value=10),
    intercept=st.floats(min_value=-10, max_value=10),
)
def test_ols_exact_on_noiseless_lines(x, slope, intercept):
    xs = np.array(x)
    if np.var(xs) < 1e-9:
        return
    ys = slope * xs + intercept
    reg = SimpleLinearRegression().fit(xs, ys)
    assert reg.slope == pytest.approx(slope, abs=1e-6, rel=1e-6)
    preds = reg.predict_many(xs)
    assert r_squared(ys, preds) == pytest.approx(1.0) or np.var(ys) < 1e-12


@given(
    x=st.lists(
        st.floats(min_value=-100, max_value=100), min_size=3, max_size=30
    ),
    sign=st.sampled_from([-1.0, 1.0]),
)
def test_signed_r_squared_sign_tracks_slope(x, sign):
    xs = np.array(x)
    if np.var(xs) < 1e-9:
        return
    ys = sign * 2.0 * xs + 1.0
    value = signed_r_squared(xs, ys)
    assert value == pytest.approx(sign * 1.0, abs=1e-6)


# ----------------------------------------------------------------------
# CQI monotonicity: sharing can only reduce competing I/O.


@given(
    latency=st.floats(min_value=10.0, max_value=1000.0),
    io_fraction=st.floats(min_value=0.0, max_value=1.0),
    scan_time=st.floats(min_value=0.0, max_value=200.0),
)
def test_sharing_a_table_never_increases_r_c(latency, io_fraction, scan_time):
    def profile(tid, scans):
        return TemplateProfile(
            template_id=tid,
            isolated_latency=latency,
            io_fraction=io_fraction,
            working_set_bytes=0.0,
            records_accessed=0.0,
            plan_steps=1,
            fact_scans=frozenset(scans),
        )

    scan_seconds = {"a": scan_time, "b": 30.0}
    # Contender 2 either shares table 'a' with the primary or not.
    sharing = CQICalculator(
        profiles={1: profile(1, {"a"}), 2: profile(2, {"a"})},
        scan_seconds=scan_seconds,
    )
    disjoint = CQICalculator(
        profiles={1: profile(1, {"a"}), 2: profile(2, {"b"})},
        scan_seconds=scan_seconds,
    )
    assert sharing.r_c(2, 1, [2]) <= disjoint.r_c(2, 1, [2]) + 1e-12


@given(
    io_fraction=st.floats(min_value=0.0, max_value=1.0),
    extra=st.floats(min_value=0.0, max_value=500.0),
)
def test_omega_monotone_in_scan_time(io_fraction, extra):
    def calc(scan_a):
        prof = TemplateProfile(
            template_id=1,
            isolated_latency=100.0,
            io_fraction=io_fraction,
            working_set_bytes=0.0,
            records_accessed=0.0,
            plan_steps=1,
            fact_scans=frozenset({"a"}),
        )
        return CQICalculator(
            profiles={1: prof, 2: prof}, scan_seconds={"a": scan_a}
        )

    base = calc(10.0)
    bigger = calc(10.0 + extra)
    assert bigger.omega(2, 1) >= base.omega(2, 1)
    # And a larger omega can only reduce the competing fraction.
    assert bigger.r_c(2, 1, [2]) <= base.r_c(2, 1, [2]) + 1e-12


@given(
    n_contenders=st.integers(min_value=1, max_value=4),
    io_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_intensity_equals_r_c_for_identical_contenders(
    n_contenders, io_fraction
):
    prof = TemplateProfile(
        template_id=0,
        isolated_latency=100.0,
        io_fraction=io_fraction,
        working_set_bytes=0.0,
        records_accessed=0.0,
        plan_steps=1,
        fact_scans=frozenset(),
    )
    profiles = {0: prof}
    for tid in range(1, n_contenders + 1):
        profiles[tid] = TemplateProfile(
            template_id=tid,
            isolated_latency=100.0,
            io_fraction=io_fraction,
            working_set_bytes=0.0,
            records_accessed=0.0,
            plan_steps=1,
            fact_scans=frozenset(),
        )
    calc = CQICalculator(profiles=profiles, scan_seconds={})
    mix = tuple(range(n_contenders + 1))
    # With no shared tables, the mean of identical r_c values is r_c.
    assert calc.intensity(0, mix) == pytest.approx(io_fraction)
