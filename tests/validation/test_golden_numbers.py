"""Golden-value pins for the model pipeline at the committed seed.

Every number here was computed from the deterministic small campaign
(`small_training_data`: templates (22, 26, 32, 62, 65, 71, 82), MPL 2,
one LHS run, three samples per stream, seed from ``DEFAULT_CONFIG``) and
then committed.  The campaign is jobs-independent and the simulator is
pure, so these values are stable run-to-run; the tolerances only absorb
floating-point reassociation across numpy/BLAS builds.

A failure here means prediction *numbers* changed, not just code: either
a genuine regression, or an intentional model change — in which case
recompute the pins and say so in the commit.
"""

from statistics import mean

import numpy as np
import pytest

from repro.core.evaluation import (
    evaluate_known_templates,
    evaluate_new_templates,
    overall_mre,
)
from repro.engine.spoiler import measure_spoiler_latency
from repro.eval.metrics import kendall_tau, pairwise_accuracy, q_error_summary

#: Relative tolerance for exact pins: wide enough for cross-platform
#: float reassociation, narrow enough that any model change trips it.
PIN = 1e-4


# ----------------------------------------------------------------------
# QS fit quality (Sec. 4.2).


def test_qs_slopes_are_pinned(small_contender):
    golden_slopes = {
        22: 0.19596835201621118,
        26: 0.9527312836567314,
        32: 0.6603309519495957,
        62: 1.005268596806298,
        65: 0.384111329194369,
        71: 0.06670251214644651,
        82: 0.22921798873513188,
    }
    for template_id, slope in golden_slopes.items():
        model = small_contender.qs_model(template_id, 2)
        assert model.slope == pytest.approx(slope, rel=PIN)
        assert model.num_samples == 7


def test_qs_fit_residuals_are_pinned_and_tight(small_contender, small_training_data):
    residuals = [
        small_contender.qs_model(t, 2).residual_std
        for t in small_training_data.template_ids
    ]
    assert mean(residuals) == pytest.approx(0.07507433540094974, rel=PIN)
    # Fit-quality floor: continuum points live in [0, 1], so a mean
    # residual spread under 0.15 means the linear QS model genuinely
    # explains the sampled mixes.
    assert mean(residuals) < 0.15
    assert max(residuals) < 0.20


# ----------------------------------------------------------------------
# Prediction error, Fig. 8 style (known and unknown templates).


def test_known_template_error_is_pinned(small_training_data):
    records = evaluate_known_templates(
        small_training_data, (2,), rng=np.random.default_rng(0)
    )
    mre = overall_mre(records)
    assert mre == pytest.approx(0.06444527157387964, rel=PIN)
    # The paper's qualitative claim at MPL 2: known-template predictions
    # land well within 25 % mean relative error.
    assert mre < 0.10


def test_new_template_error_is_pinned(small_training_data):
    mre = overall_mre(evaluate_new_templates(small_training_data, (2,)))
    assert mre == pytest.approx(0.11394066027891213, rel=PIN)
    # Unknown templates are harder than known ones but stay usable.
    assert 0.0 < mre < 0.20


def test_known_beats_unknown(small_training_data):
    known = overall_mre(
        evaluate_known_templates(
            small_training_data, (2,), rng=np.random.default_rng(0)
        )
    )
    unknown = overall_mre(evaluate_new_templates(small_training_data, (2,)))
    assert known < unknown


# ----------------------------------------------------------------------
# Ranking quality of the same predictions (repro.eval metric kernels):
# beyond mean relative error, do the predictors *order* mixes right?


def test_known_template_rank_quality_is_pinned(small_training_data):
    records = evaluate_known_templates(
        small_training_data, (2,), rng=np.random.default_rng(0)
    )
    observed = [r.observed for r in records]
    predicted = [r.predicted for r in records]
    summary = q_error_summary(observed, predicted)
    assert summary["p50"] == pytest.approx(1.0523910760790924, rel=PIN)
    assert summary["p90"] == pytest.approx(1.1317654679068878, rel=PIN)
    assert summary["max"] == pytest.approx(1.4482624586595068, rel=PIN)
    assert kendall_tau(observed, predicted) == pytest.approx(
        0.8622448979591837, rel=PIN
    )
    assert pairwise_accuracy(observed, predicted) == pytest.approx(
        0.9311224489795918, rel=PIN
    )


def test_new_template_rank_quality_is_pinned(small_training_data):
    records = evaluate_new_templates(small_training_data, (2,))
    observed = [r.observed for r in records]
    predicted = [r.predicted for r in records]
    summary = q_error_summary(observed, predicted)
    assert summary["p50"] == pytest.approx(1.1028955858565987, rel=PIN)
    assert summary["p90"] == pytest.approx(1.243943347120182, rel=PIN)
    assert summary["max"] == pytest.approx(1.3864951121124276, rel=PIN)
    assert kendall_tau(observed, predicted) == pytest.approx(
        0.8327526132404182, rel=PIN
    )
    assert pairwise_accuracy(observed, predicted) == pytest.approx(
        0.9163763066202091, rel=PIN
    )
    # Even for never-sampled templates the q-error ceiling stays under
    # 1.4x and the ranking is far from chance — the KNN continuum
    # placement preserves decision-relevant order.
    assert summary["max"] < 1.5
    assert pairwise_accuracy(observed, predicted) > 0.5


# ----------------------------------------------------------------------
# Spoiler curves (Sec. 5): pinned values and monotone growth in MPL.


def test_spoiler_curve_is_pinned_and_monotone(
    small_catalog, small_training_data
):
    golden = {
        26: [154.7803, 304.8084, 455.1622, 605.5161, 755.8699],
        71: [514.7438, 1022.9168, 1531.0937, 2039.2707, 2547.4476],
        82: [548.2931, 877.2665, 1218.0111, 1558.7557, 1899.5003],
    }
    for template_id, expected in golden.items():
        profile = small_catalog.profile(template_id)
        curve = [
            measure_spoiler_latency(
                profile, mpl, small_catalog.config
            ).latency
            for mpl in (1, 2, 3, 4, 5)
        ]
        assert curve == pytest.approx(expected, rel=1e-5)
        # Monotonicity: every added spoiler stream strictly slows the
        # primary, starting from the isolated (MPL 1) latency.
        assert curve[0] == pytest.approx(
            small_training_data.profile(template_id).isolated_latency, rel=PIN
        )
        for lo, hi in zip(curve, curve[1:]):
            assert hi > lo


def test_campaign_spoiler_samples_match_direct_measurement(
    small_catalog, small_training_data
):
    # The campaign's stored spoiler curve and a fresh measurement agree:
    # sampling adds no hidden state.
    curve = small_training_data.spoiler(26)
    fresh = measure_spoiler_latency(
        small_catalog.profile(26), 2, small_catalog.config
    ).latency
    assert curve.latency_at(2) == pytest.approx(fresh, rel=PIN)
