"""Pinned end-to-end scheduling scenarios: FIFO vs prediction-driven.

Each scenario replays a seed-deterministic arrival trace through the
queue simulator at MPL 3 and pins the resulting client-observed latency
percentiles.  The campaign, the traces, and the engine are all
deterministic, so these numbers are stable run-to-run; the tolerance
only absorbs floating-point reassociation across numpy/BLAS builds.

Beyond the exact pins, the contended scenarios assert the paper's
payoff *directionally*: prediction-driven reordering strictly beats
FIFO tail latency.  A failure of the strict inequality means the
predictor stopped adding scheduling value — a modeling regression even
if every unit test passes.
"""

import pytest

from repro.apps.admission import ContenderBackend
from repro.core.contender import Contender
from repro.core.training import collect_training_data
from repro.sampling.steady_state import SteadyStateConfig
from repro.sched import (
    TemplateDistribution,
    bursty_trace,
    compare_policies,
    make_policy,
    poisson_trace,
)
from tests.conftest import SMALL_TEMPLATES

#: Same tolerance discipline as tests/validation/test_golden_numbers.py.
PIN = 1e-4

DIST = TemplateDistribution.uniform(SMALL_TEMPLATES)
MAX_MPL = 3
RATE = 1.0 / 120.0  # one arrival per two minutes: sustained contention


@pytest.fixture(scope="module")
def sched_backend(small_catalog):
    """Campaign covering MPLs 2-3 (the replay admits mixes up to 3)."""
    data = collect_training_data(
        small_catalog,
        mpls=(2, 3),
        lhs_runs_per_mpl=2,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    )
    return ContenderBackend(Contender(data))


def _compare(trace, backend, catalog):
    policies = [
        make_policy("fifo"),
        make_policy("predictive", backend, max_mpl=MAX_MPL),
    ]
    return compare_policies(trace, policies, catalog, max_mpl=MAX_MPL)


def test_poisson_scenario_pinned(sched_backend, small_catalog):
    trace = poisson_trace(DIST, rate=RATE, count=30, seed=7)
    report = _compare(trace, sched_backend, small_catalog)
    fifo = report.result_for("fifo")
    predictive = report.result_for("predictive")

    assert fifo.p50 == pytest.approx(1472.8170503481315, rel=PIN)
    assert fifo.p99 == pytest.approx(3500.2283336660566, rel=PIN)
    assert fifo.makespan == pytest.approx(6972.799424268302, rel=PIN)

    assert predictive.p50 == pytest.approx(1197.4032322246785, rel=PIN)
    assert predictive.p99 == pytest.approx(2992.81308160672, rel=PIN)
    assert predictive.makespan == pytest.approx(6440.840117474883, rel=PIN)

    # The payoff: prediction-driven reordering strictly beats FIFO tail.
    assert predictive.p99 < fifo.p99
    assert predictive.makespan < fifo.makespan


def test_bursty_scenario_pinned(sched_backend, small_catalog):
    trace = bursty_trace(DIST, rate=RATE, count=30, seed=11)
    report = _compare(trace, sched_backend, small_catalog)
    fifo = report.result_for("fifo")
    predictive = report.result_for("predictive")

    assert fifo.p50 == pytest.approx(1416.6550977784277, rel=PIN)
    assert fifo.p99 == pytest.approx(3884.933141307555, rel=PIN)

    assert predictive.p50 == pytest.approx(1252.8314899338193, rel=PIN)
    assert predictive.p99 == pytest.approx(3776.6609143439478, rel=PIN)

    assert predictive.p99 < fifo.p99


def test_scenarios_reproduce_from_seed_alone(sched_backend, small_catalog):
    """The whole scenario — trace plus replay — is a pure function of
    the seed: regenerating everything yields identical outcomes."""
    one = _compare(
        poisson_trace(DIST, rate=RATE, count=30, seed=7),
        sched_backend,
        small_catalog,
    )
    two = _compare(
        poisson_trace(DIST, rate=RATE, count=30, seed=7),
        sched_backend,
        small_catalog,
    )
    for a, b in zip(one.results, two.results):
        assert a.outcomes == b.outcomes
