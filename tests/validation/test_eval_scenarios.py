"""Golden pins and engine/jobs identity for the evaluation harness.

The canonical run: the full default scenario matrix (four families x
MPLs 2-3, window 4, three sets each) over the small template subset,
with both backends trained on an MPL 2-3 campaign, everything derived
from seed 7.  The pinned numbers were computed with the default
``virtual_time`` engine and committed.

Identity guarantees, mirroring the campaign's own:

* ``virtual_time`` and ``batched`` produce **bit-identical** report
  documents (the batched engine replays the same event sequence in
  lockstep);
* any ``--jobs`` value produces bit-identical documents (per-task
  seeding, no shared RNG stream);
* the ``reference`` engine agrees **exactly** on every discrete rank
  quantity — pair counts, pairwise accuracy, winner rate, and
  Kendall tau (a pure function of order statistics) — while continuous
  latency-derived numbers (q-error, MRE, simulated seconds) drift only
  by float reassociation, well inside 1e-9 relative.
"""

import pytest

from repro.config import SimulationConfig, SystemConfig
from repro.core.training import collect_training_data
from repro.eval.backends import named_backends
from repro.eval.harness import run_matrix
from repro.eval.scenarios import default_matrix
from repro.sampling.steady_state import SteadyStateConfig
from repro.workload.catalog import TemplateCatalog
from tests.conftest import SMALL_TEMPLATES

#: Same pin tolerance as test_golden_numbers: absorbs cross-platform
#: float reassociation, trips on any model or harness change.
PIN = 1e-4

SEED = 7
STEADY = SteadyStateConfig(samples_per_stream=3)


def _pipeline(engine):
    """Catalog, campaign, and backends, all under one engine."""
    catalog = TemplateCatalog(
        config=SystemConfig(simulation=SimulationConfig(engine=engine))
    ).subset(SMALL_TEMPLATES)
    data = collect_training_data(
        catalog, mpls=(2, 3), lhs_runs_per_mpl=2, steady_config=STEADY
    )
    return catalog, named_backends(data)


def _evaluate(pipeline, jobs=None):
    catalog, backends = pipeline
    return run_matrix(
        catalog,
        backends,
        matrix=default_matrix(),
        seed=SEED,
        steady=STEADY,
        jobs=jobs,
    )


@pytest.fixture(scope="module")
def vt_pipeline():
    return _pipeline("virtual_time")


@pytest.fixture(scope="module")
def result(vt_pipeline):
    return _evaluate(vt_pipeline)


def test_matrix_shape(result):
    assert result.seed == SEED
    assert result.objective == "makespan"
    assert result.mixes == 65
    assert [r.backend for r in result.reports] == ["qs", "knn"]
    for report in result.reports:
        assert len(report.scenarios) == 8
        assert sum(s.sets for s in report.scenarios) == 24


def test_overall_metrics_are_pinned(result):
    golden = {
        "qs": {
            "pairwise_accuracy": 0.7986111111111112,
            "winner_rate": 0.625,
            "kendall_tau": 0.5972222222222222,
            "q_error": {
                "p50": 1.045443753958915,
                "p90": 1.1790881845301533,
                "max": 2.241364562552514,
            },
            "mre": 0.08643587780535189,
        },
        "knn": {
            "pairwise_accuracy": 0.7222222222222222,
            "winner_rate": 0.5416666666666666,
            "kendall_tau": 0.4444444444444444,
            "q_error": {
                "p50": 1.1710719634271824,
                "p90": 1.4677994267448113,
                "max": 2.0805898959114186,
            },
            "mre": 0.18956076578659264,
        },
    }
    assert result.sim_seconds == pytest.approx(255689.7871020099, rel=PIN)
    for backend, expected in golden.items():
        report = result.report_for(backend)
        assert report.pairwise_accuracy == pytest.approx(
            expected["pairwise_accuracy"], rel=PIN
        )
        assert report.winner_rate == pytest.approx(
            expected["winner_rate"], rel=PIN
        )
        assert report.kendall_tau == pytest.approx(
            expected["kendall_tau"], rel=PIN
        )
        for key, value in expected["q_error"].items():
            assert report.q_error[key] == pytest.approx(value, rel=PIN)
        assert report.mre == pytest.approx(expected["mre"], rel=PIN)


def test_ranking_floor_and_ordering(result):
    # The decision-quality claim behind the bench gate: both predictors
    # carry genuine rank signal (chance is 0.5), and the fitted QS path
    # beats leave-one-out KNN on every headline metric.
    qs = result.report_for("qs")
    knn = result.report_for("knn")
    for report in (qs, knn):
        assert report.pairwise_accuracy > 0.5
        assert report.kendall_tau > 0.0
    assert qs.pairwise_accuracy > knn.pairwise_accuracy
    assert qs.kendall_tau > knn.kendall_tau
    assert qs.mre < knn.mre


def test_batched_engine_is_bit_identical(result):
    batched = _evaluate(_pipeline("batched"))
    assert batched.to_doc() == result.to_doc()


def test_jobs_do_not_change_results(vt_pipeline, result):
    for jobs in (1, 2):
        assert _evaluate(vt_pipeline, jobs=jobs).to_doc() == result.to_doc()


def test_reference_engine_agrees(result):
    reference = _evaluate(_pipeline("reference"))
    assert reference.mixes == result.mixes
    assert reference.sim_seconds == pytest.approx(
        result.sim_seconds, rel=1e-9
    )
    for expected in result.reports:
        report = reference.report_for(expected.backend)
        # Rank statistics are pure functions of orderings and counts:
        # the reference engine reproduces them exactly.
        assert report.pairwise_accuracy == expected.pairwise_accuracy
        assert report.winner_rate == expected.winner_rate
        assert report.kendall_tau == expected.kendall_tau
        for mine, theirs in zip(report.scenarios, expected.scenarios):
            assert mine.pairs == theirs.pairs
            assert mine.predictions == theirs.predictions
            assert mine.pairwise_accuracy == theirs.pairwise_accuracy
            assert mine.winner_rate == theirs.winner_rate
            assert mine.kendall_tau == theirs.kendall_tau
            # Latency-derived numbers reassociate across engines.
            assert mine.mre == pytest.approx(theirs.mre, rel=1e-9)
            for key in ("p50", "p90", "max"):
                assert mine.q_error[key] == pytest.approx(
                    theirs.q_error[key], rel=1e-9
                )
