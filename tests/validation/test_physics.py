"""Deeper physics validation of the substrate, via execution traces.

Unit tests check individual mechanisms; these checks run realistic
workloads and assert conservation laws across the whole simulation:
delivered bandwidth never exceeds capacity, demand is conserved, the
disk stays saturated for I/O-bound mixes, and steady-state execution is
actually stationary.
"""

import numpy as np
import pytest

from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.trace import UtilizationTrace
from repro.sampling.steady_state import SteadyStateConfig, run_steady_state


@pytest.fixture()
def traced_mix_run(small_catalog):
    """A traced concurrent run of three diverse templates."""
    trace = UtilizationTrace()
    executor = ConcurrentExecutor(small_catalog.config, tracer=trace)
    profiles = [small_catalog.profile(t) for t in (26, 65, 82)]
    streams = [
        SingleShotStream(p, name=f"t{p.template_id}") for p in profiles
    ]
    result = executor.run(streams)
    return trace, result, profiles


def test_delivered_seq_bandwidth_never_exceeds_capacity(
    traced_mix_run, small_catalog
):
    trace, _, _ = traced_mix_run
    capacity = small_catalog.config.hardware.seq_bandwidth
    for sample in trace.samples:
        assert sample.seq_bytes_per_sec <= capacity * (1 + 1e-9)


def test_delivered_rand_rate_never_exceeds_capacity(
    traced_mix_run, small_catalog
):
    trace, _, _ = traced_mix_run
    # Random variance can locally exceed the nominal IOPS by the
    # configured spread, never by more.
    hw = small_catalog.config.hardware
    ceiling = hw.random_iops * (1 + hw.random_io_variance) * (1 + 1e-9)
    for sample in trace.samples:
        assert sample.rand_ops_per_sec <= ceiling


def test_total_logical_seq_bytes_match_demand(traced_mix_run):
    trace, result, profiles = traced_mix_run
    demanded = sum(p.total_seq_bytes for p in profiles)
    spilled = sum(c.stats.spill_bytes for c in result.completions)
    cached = sum(c.stats.cache_served_bytes for c in result.completions)
    assert trace.logical_seq_bytes_total() == pytest.approx(
        demanded + spilled - cached, rel=1e-6
    )


def test_physical_never_exceeds_logical(traced_mix_run):
    trace, _, _ = traced_mix_run
    assert trace.seq_bytes_total() <= trace.logical_seq_bytes_total() + 1e-6


def test_cpu_cores_never_exceed_host(traced_mix_run, small_catalog):
    trace, _, _ = traced_mix_run
    cores = small_catalog.config.hardware.cores
    for sample in trace.samples:
        assert sample.cpu_cores_busy <= cores + 1e-9


def test_io_bound_mix_keeps_disk_saturated(small_catalog):
    """Two I/O-bound queries must keep the disk busy nearly always."""
    trace = UtilizationTrace()
    executor = ConcurrentExecutor(small_catalog.config, tracer=trace)
    streams = [
        SingleShotStream(small_catalog.profile(26), name="a"),
        SingleShotStream(small_catalog.profile(71), name="b"),
    ]
    executor.run(streams)
    assert trace.disk_busy_fraction() > 0.95


def test_latency_accounting_matches_wall_clock(traced_mix_run):
    trace, result, _ = traced_mix_run
    last_end = max(c.stats.end_time for c in result.completions)
    assert trace.elapsed == pytest.approx(last_end, rel=1e-9)


def test_steady_state_is_stationary(small_catalog):
    """Trimmed steady-state samples of the same template should have a
    modest coefficient of variation — the mix is held constant."""
    cfg = SteadyStateConfig(samples_per_stream=5)
    result = run_steady_state(small_catalog, (26, 71), config=cfg)
    for slot, template in enumerate(result.mix):
        lats = [s.latency for s in result.samples[slot]]
        cv = float(np.std(lats) / np.mean(lats))
        assert cv < 0.35, f"template {template}: cv={cv:.2f}"


def test_mix_latency_between_isolated_and_spoiler(small_catalog):
    """Observed mix latencies live on the continuum (up to the 5%
    restart artifact the paper documents)."""
    from repro.engine.spoiler import measure_spoiler_latency

    cfg = SteadyStateConfig(samples_per_stream=4)
    result = run_steady_state(small_catalog, (26, 82), config=cfg)
    for template in (26, 82):
        observed = result.mean_latency(template)
        isolated = small_catalog.run_isolated(template).latency
        spoiler = measure_spoiler_latency(
            small_catalog.profile(template), 2, small_catalog.config
        ).latency
        assert observed > 0.95 * isolated
        assert observed < 1.10 * spoiler


def test_spill_only_under_pressure(small_catalog):
    """Memory-bound T22 must not spill alone but must spill when RAM is
    pinned away."""
    from repro.engine.spoiler import measure_spoiler_latency
    from repro.engine.executor import ConcurrentExecutor, SingleShotStream

    alone = ConcurrentExecutor(small_catalog.config).run(
        [SingleShotStream(small_catalog.profile(22), name="q")]
    )
    assert alone.completions[0].stats.spill_bytes == 0

    from repro.engine.spoiler import Spoiler

    spoiler = Spoiler(mpl=5, ram_bytes=small_catalog.config.hardware.ram_bytes)
    pressured = ConcurrentExecutor(small_catalog.config).run(
        [SingleShotStream(small_catalog.profile(22), name="q")],
        background=spoiler.readers(),
        pinned_bytes=spoiler.pinned_bytes,
    )
    assert pressured.completions[0].stats.spill_bytes > 0
