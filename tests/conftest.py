"""Shared fixtures, tier markers, and hypothesis profiles.

The expensive artifacts (catalogs, sampling campaigns) are session-scoped:
collecting the small campaign costs well under a second of wall time and
the full MPL 2-5 campaign a few seconds, paid once per pytest session.

Tests are tiered by directory — ``tests/unit``, ``tests/integration``,
``tests/property``, ``tests/validation`` — and the matching marker is
applied automatically, so ``pytest -m unit`` (or ``make test-fast``)
selects a tier without any per-file decoration.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.contender import Contender
from repro.core.training import TrainingData, collect_training_data
from repro.sampling.steady_state import SteadyStateConfig
from repro.workload.catalog import TemplateCatalog
from repro.workload.schema import build_schema

#: A behaviourally diverse subset used by the fast tests: I/O-bound,
#: CPU-bound, memory-bound, random-I/O, and a shared-fact-table pair.
SMALL_TEMPLATES = (22, 26, 32, 62, 65, 71, 82)

#: Directory name -> marker applied to every test collected beneath it.
_TIER_DIRS = ("unit", "integration", "property", "validation")

# Shared hypothesis profiles.  "ci" (the default) is fully reproducible:
# derandomized, and with deadlines off so a loaded CI box never flakes a
# shrunk example on wall time.  "dev" explores harder; select it with
# HYPOTHESIS_PROFILE=dev.  Per-test @settings(...) still override fields.
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def pytest_collection_modifyitems(config, items):
    # benchmarks/ has its own conftest applying the bench marker.
    for item in items:
        parts = item.path.parts
        for tier in _TIER_DIRS:
            if tier in parts:
                item.add_marker(getattr(pytest.mark, tier))
                break


@pytest.fixture(scope="session")
def config() -> SystemConfig:
    return DEFAULT_CONFIG


@pytest.fixture(scope="session")
def schema():
    return build_schema(100.0)


@pytest.fixture(scope="session")
def catalog() -> TemplateCatalog:
    return TemplateCatalog()


@pytest.fixture(scope="session")
def small_catalog() -> TemplateCatalog:
    return TemplateCatalog().subset(SMALL_TEMPLATES)


@pytest.fixture(scope="session")
def small_training_data(small_catalog) -> TrainingData:
    """MPL-2 campaign over the small template subset."""
    return collect_training_data(
        small_catalog,
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    )


@pytest.fixture(scope="session")
def full_training_data(catalog) -> TrainingData:
    """The paper's full campaign (all 25 templates, MPLs 2-5)."""
    return collect_training_data(catalog, mpls=(2, 3, 4, 5), lhs_runs_per_mpl=4)


@pytest.fixture(scope="session")
def small_contender(small_training_data) -> Contender:
    return Contender(small_training_data)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
