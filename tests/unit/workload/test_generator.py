"""Workload-generator tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.generator import (
    RandomTemplateStream,
    draw_templates,
    session_mixes,
    zipf_weights,
)


def test_draw_templates_from_population(rng):
    out = draw_templates([1, 2, 3], 100, rng)
    assert len(out) == 100
    assert set(out) <= {1, 2, 3}


def test_weights_skew_draws(rng):
    out = draw_templates([1, 2], 4000, rng, weights=[9.0, 1.0])
    share = out.count(1) / len(out)
    assert 0.85 < share < 0.95


def test_weights_validation(rng):
    with pytest.raises(WorkloadError):
        draw_templates([1, 2], 5, rng, weights=[1.0])
    with pytest.raises(WorkloadError):
        draw_templates([1, 2], 5, rng, weights=[0.0, 0.0])
    with pytest.raises(WorkloadError):
        draw_templates([], 5, rng)
    with pytest.raises(WorkloadError):
        draw_templates([1], 0, rng)


def test_zipf_weights_decreasing():
    w = zipf_weights(5, skew=1.0)
    assert w == sorted(w, reverse=True)
    assert w[0] == 1.0


def test_zipf_weights_flat_at_zero_skew():
    assert zipf_weights(4, skew=0.0) == [1.0, 1.0, 1.0, 1.0]
    with pytest.raises(WorkloadError):
        zipf_weights(0)


def test_random_stream_issues_target_queries(small_catalog, rng):
    stream = RandomTemplateStream(
        catalog=small_catalog,
        templates=list(small_catalog.template_ids),
        target=3,
        rng=rng,
    )
    profiles = []
    for completed in range(3):
        profiles.append(stream.next_profile(0.0, completed))
    assert all(p is not None for p in profiles)
    assert stream.next_profile(0.0, 3) is None
    assert len(stream.issued) == 3
    assert set(stream.issued) <= set(small_catalog.template_ids)


def test_random_stream_runs_on_executor(small_catalog, rng):
    from repro.engine.executor import ConcurrentExecutor

    stream = RandomTemplateStream(
        catalog=small_catalog,
        templates=[26, 62],
        target=2,
        rng=rng,
        name="session",
    )
    result = ConcurrentExecutor(small_catalog.config).run([stream])
    assert len(result.completions) == 2


def test_session_mixes_shape(rng):
    mixes = session_mixes([1, 2, 3], mpl=3, num_mixes=7, rng=rng)
    assert len(mixes) == 7
    assert all(len(m) == 3 for m in mixes)


def test_session_mixes_validation(rng):
    with pytest.raises(WorkloadError):
        session_mixes([1], 0, 5, rng)
    with pytest.raises(WorkloadError):
        session_mixes([1], 2, 0, rng)
