"""TemplateCatalog tests — the paper's workload invariants."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.catalog import TemplateCatalog


def test_default_catalog_has_all_templates(catalog):
    assert len(catalog.template_ids) == 25


def test_subset_restricts(small_catalog):
    assert 26 in small_catalog.template_ids
    with pytest.raises(WorkloadError):
        small_catalog.spec(15)


def test_subset_rejects_unknown_ids(catalog):
    with pytest.raises(WorkloadError):
        catalog.subset([26, 999])


def test_isolated_latencies_in_paper_band(catalog):
    """Sec. 2: 'moderate running time with a latency range of 130-1000 s'."""
    for tid in catalog.template_ids:
        latency = catalog.run_isolated(tid).latency
        assert 130 <= latency <= 1100, f"template {tid}: {latency:.0f}s"


def test_io_bound_templates_spend_97_percent_on_io(catalog):
    """Sec. 6.2: templates 26, 33, 61, 71 spend >= 97 % of time on I/O."""
    for tid in (26, 33, 61, 71):
        fraction = catalog.run_isolated(tid).io_fraction
        assert fraction >= 0.96, f"template {tid}: {fraction:.2%}"


def test_cpu_templates_are_not_io_bound(catalog):
    for tid in (65, 90):
        assert catalog.run_isolated(tid).io_fraction < 0.6, f"template {tid}"


def test_isolated_latency_jitter_is_about_six_percent(catalog):
    """Sec. 4: ~6 % standard deviation in isolated latency."""
    rng = np.random.default_rng(0)
    lats = [catalog.run_isolated(62, rng=rng).latency for _ in range(12)]
    cv = float(np.std(lats) / np.mean(lats))
    assert 0.005 < cv < 0.15


def test_scan_seconds_memoized(catalog):
    first = catalog.scan_seconds("store_sales")
    second = catalog.scan_seconds("store_sales")
    assert first == second
    expected = (
        catalog.schema["store_sales"].size_bytes
        / catalog.config.hardware.seq_bandwidth
    )
    assert first == pytest.approx(expected, rel=1e-6)


def test_fact_scan_seconds_covers_all_facts(catalog):
    table = catalog.fact_scan_seconds()
    assert set(table) == {r.name for r in catalog.schema.fact_tables()}
    assert all(v > 0 for v in table.values())


def test_profile_has_positive_demand(catalog):
    profile = catalog.profile(26)
    assert profile.total_seq_bytes > 0
    assert profile.template_id == 26


def test_canonical_plan_is_deterministic(catalog):
    a = catalog.canonical_plan(26)
    b = catalog.canonical_plan(26)
    assert [n for n, _ in a.step_cardinalities()] == [
        n for n, _ in b.step_cardinalities()
    ]


def test_describe_lists_templates(catalog):
    text = catalog.describe()
    assert "io" in text and "memory" in text
    assert str(71) in text
