"""SQL rendering tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.sql import render_sql, sql_skeleton, sql_template_ids
from repro.workload.templates import TEMPLATE_IDS


def test_sql_covers_every_workload_template():
    assert sql_template_ids() == TEMPLATE_IDS


def test_rendering_expands_all_placeholders():
    for tid in sql_template_ids():
        text = render_sql(tid)
        assert "${" not in text, f"template {tid} left a placeholder"
        assert "SELECT" in text.upper()


def test_rendering_is_deterministic_without_rng():
    assert render_sql(26) == render_sql(26)


def test_instances_differ_only_in_predicates():
    rng = np.random.default_rng(1)
    a = render_sql(26, rng)
    b = render_sql(26, rng)
    # Same statement shape (identical token structure modulo constants).
    assert len(a.splitlines()) == len(b.splitlines())
    assert a.split("WHERE")[0] == b.split("WHERE")[0]


def test_templates_mention_their_fact_tables(catalog):
    for tid in sql_template_ids():
        plan = catalog.canonical_plan(tid)
        text = render_sql(tid).lower()
        for table in plan.fact_tables_scanned():
            assert table in text, f"template {tid} SQL misses {table}"


def test_skeleton_keeps_placeholders():
    assert "${year}" in sql_skeleton(26)


def test_unknown_template_rejected():
    with pytest.raises(WorkloadError):
        render_sql(999)
    with pytest.raises(WorkloadError):
        sql_skeleton(999)


def test_twins_56_60_share_statement_shape():
    a = sql_skeleton(56)
    b = sql_skeleton(60)
    assert a.count("UNION ALL") == b.count("UNION ALL")
    assert a.count("WITH") == b.count("WITH")
