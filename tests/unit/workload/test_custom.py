"""Custom-template registration tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.custom import (
    catalog_with_templates,
    template_from_plan_text,
)
from repro.workload.templates import InstanceParams

PLAN = """\
HashAggregate (groups=5000)
  HashJoin (sel=0.8 width=48)
    SeqScan web_sales (sel=0.1 cpu=0.5 width=48)
    SeqScan item
"""


@pytest.fixture()
def spec():
    return template_from_plan_text(500, "custom report", PLAN)


def test_spec_builds_plans(spec, catalog):
    plan = spec.plan(catalog.schema)
    assert plan.template_id == 500
    assert plan.fact_tables_scanned() == {"web_sales"}


def test_jitter_scales_predicates(spec, catalog):
    base = spec.plan(catalog.schema, InstanceParams(jitter=1.0))
    scaled = spec.plan(catalog.schema, InstanceParams(jitter=1.2))
    base_scan = next(
        n for n in base.nodes() if n.feature_name() == "SeqScan:web_sales"
    )
    scaled_scan = next(
        n for n in scaled.nodes() if n.feature_name() == "SeqScan:web_sales"
    )
    assert scaled_scan.selectivity == pytest.approx(1.2 * base_scan.selectivity)
    assert scaled_scan.cpu_factor == pytest.approx(1.2 * base_scan.cpu_factor)


def test_id_collision_with_builtin_rejected():
    with pytest.raises(WorkloadError):
        template_from_plan_text(26, "collides", PLAN)


def test_catalog_combines_builtin_and_custom(spec, catalog):
    combined = catalog_with_templates(catalog, [spec], include_builtin=[26, 65])
    assert combined.template_ids == [26, 65, 500]
    assert combined.spec(500).description == "custom report"
    assert combined.spec(26).category == "io"


def test_custom_template_runs_isolated(spec, catalog):
    combined = catalog_with_templates(catalog, [spec], include_builtin=[26])
    stats = combined.run_isolated(500)
    assert stats.latency > 0
    assert stats.template_id == 500


def test_custom_instances_jitter(spec, catalog):
    combined = catalog_with_templates(catalog, [spec], include_builtin=[])
    rng = np.random.default_rng(3)
    lats = [combined.run_isolated(500, rng=rng).latency for _ in range(6)]
    assert len(set(round(l, 3) for l in lats)) > 1


def test_subset_keeps_custom_specs(spec, catalog):
    combined = catalog_with_templates(catalog, [spec], include_builtin=[26, 65])
    narrowed = combined.subset([500, 26])
    assert narrowed.spec(500).template_id == 500


def test_duplicate_custom_ids_rejected(spec, catalog):
    with pytest.raises(WorkloadError):
        catalog_with_templates(catalog, [spec, spec])


def test_extra_specs_colliding_with_builtin_rejected(catalog):
    from repro.workload.catalog import TemplateCatalog
    from repro.workload.templates import get_spec

    with pytest.raises(WorkloadError):
        TemplateCatalog(extra_specs={26: get_spec(26)})


def test_custom_template_in_steady_state_mix(spec, catalog):
    from repro.sampling import SteadyStateConfig, run_steady_state

    combined = catalog_with_templates(catalog, [spec], include_builtin=[26])
    cfg = SteadyStateConfig(samples_per_stream=2)
    result = run_steady_state(combined, (500, 26), config=cfg)
    assert result.mean_latency(500) > 0
