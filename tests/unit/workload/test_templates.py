"""Template-definition tests: the paper's behavioural notes must hold."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.templates import (
    InstanceParams,
    JITTER_SIGMA,
    TEMPLATE_IDS,
    draw_params,
    get_spec,
    template_specs,
)


def test_twenty_five_templates():
    assert len(TEMPLATE_IDS) == 25


def test_paper_template_ids_present():
    for tid in (2, 17, 22, 26, 33, 56, 60, 61, 62, 65, 71, 82):
        assert tid in TEMPLATE_IDS


def test_unknown_template_rejected():
    with pytest.raises(WorkloadError):
        get_spec(999)


def test_template_specs_returns_fresh_dict():
    specs = template_specs()
    specs.clear()
    assert template_specs()  # unaffected


def test_categories_match_paper(schema):
    for tid in (26, 33, 61, 71):
        assert get_spec(tid).category == "io"
    for tid in (17, 25, 32):
        assert get_spec(tid).category == "random"
    for tid in (2, 22):
        assert get_spec(tid).category == "memory"
    for tid in (62, 65):
        assert get_spec(tid).category == "cpu"


def test_inventory_scanned_only_by_22_and_82(schema):
    scanners = [
        tid
        for tid in TEMPLATE_IDS
        if "inventory" in get_spec(tid).plan(schema).fact_tables_scanned()
    ]
    assert scanners == [22, 82]


def test_io_templates_scan_at_least_one_fact_table(schema):
    for tid in TEMPLATE_IDS:
        plan = get_spec(tid).plan(schema)
        assert plan.relations_accessed(), f"template {tid} touches no table"


def test_random_templates_issue_random_io(schema, config):
    from repro.engine.profile import compile_plan

    for tid in (17, 25, 32):
        profile = compile_plan(get_spec(tid).plan(schema), config)
        assert profile.total_rand_ops > 0, f"template {tid}"


def test_memory_templates_have_multi_gb_working_sets(schema):
    from repro.units import GB

    for tid in (2, 22):
        plan = get_spec(tid).plan(schema)
        assert plan.working_set_bytes() > GB(2), f"template {tid}"


def test_templates_56_and_60_share_structure(schema):
    steps56 = [n for n, _ in get_spec(56).plan(schema).step_cardinalities()]
    steps60 = [n for n, _ in get_spec(60).plan(schema).step_cardinalities()]
    assert steps56 == steps60


def test_jitter_scales_selectivity():
    params = InstanceParams(jitter=1.5)
    assert params.sel(0.4) == pytest.approx(0.6)
    assert params.sel(0.9) == 1.0  # clamped


def test_jitter_rows_floor():
    assert InstanceParams(jitter=0.0001).rows(100) >= 1.0


def test_draw_params_spread(rng):
    draws = [draw_params(rng).jitter for _ in range(4000)]
    assert np.mean(draws) == pytest.approx(1.0, abs=0.02)
    assert np.std(np.log(draws)) == pytest.approx(JITTER_SIGMA, abs=0.01)


def test_plans_are_rebuilt_each_call(schema):
    spec = get_spec(26)
    assert spec.plan(schema).root is not spec.plan(schema).root
