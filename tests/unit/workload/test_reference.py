"""Workload reference-doc generator tests."""

from repro.workload.reference import generate_reference, template_section


def test_section_contains_all_parts(catalog):
    section = template_section(catalog, 26)
    assert "Template 26" in section
    assert "isolated latency" in section
    assert "```sql" in section
    assert "SeqScan:catalog_sales" in section
    assert "`io`" in section


def test_reference_covers_every_template(catalog):
    text = generate_reference(catalog)
    for template_id in catalog.template_ids:
        assert f"## Template {template_id} " in text


def test_reference_is_valid_markdown_structure(catalog):
    text = generate_reference(catalog.subset([26, 62]))
    # fenced blocks balance
    assert text.count("```") % 2 == 0
    assert text.startswith("# The evaluation workload")
