"""Schema construction tests."""

import pytest

from repro.errors import WorkloadError
from repro.workload.schema import Schema, build_schema


def test_default_schema_is_sf100(schema):
    assert schema.scale_factor == 100.0


def test_expected_tables_present(schema):
    for name in ("store_sales", "catalog_sales", "inventory", "item", "date_dim"):
        assert name in schema


def test_store_sales_is_largest_fact(schema):
    facts = schema.fact_tables()
    assert facts[0].name == "store_sales"
    assert all(f.is_fact for f in facts)


def test_dimensions_are_small_relative_to_facts(schema):
    largest_dim = schema.dimension_tables()[0]
    smallest_fact = schema.fact_tables()[-1]
    assert largest_dim.size_bytes < smallest_fact.size_bytes


def test_unknown_relation_raises(schema):
    with pytest.raises(WorkloadError):
        schema["nonexistent"]


def test_fact_tables_scale_linearly():
    small = build_schema(10.0)
    big = build_schema(100.0)
    assert big["store_sales"].size_bytes == pytest.approx(
        10 * small["store_sales"].size_bytes
    )


def test_dimensions_scale_sublinearly():
    small = build_schema(25.0)
    big = build_schema(100.0)
    ratio = big["customer"].size_bytes / small["customer"].size_bytes
    assert ratio == pytest.approx(2.0)  # sqrt(4)


def test_total_bytes_near_scale_factor(schema):
    # The fact tables alone account for ~78 GB of the nominal 100 GB.
    from repro.units import GB

    assert GB(60) < schema.total_bytes < GB(110)


def test_invalid_scale_factor():
    with pytest.raises(WorkloadError):
        build_schema(0)


def test_iteration_yields_all_tables(schema):
    assert len(list(schema)) == len(schema.tables)
