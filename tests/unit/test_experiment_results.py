"""Unit tests for experiment result dataclasses (no simulation needed)."""

import pytest

from repro.core.cqi import CQIVariant
from repro.experiments.fig1_lhs import Fig1Result
from repro.experiments.fig4_coefficients import Fig4Result
from repro.experiments.fig6_spoiler_growth import Fig6Result
from repro.experiments.fig7_cqi_mpl4 import Fig7Result
from repro.experiments.fig8_known_unknown import Fig8Result
from repro.experiments.fig9_spoiler_prediction import Fig9Result
from repro.experiments.sec54_sampling_cost import SamplingCostResult
from repro.experiments.table2_cqi import PAPER_MRE, Table2Result
from repro.experiments.table3_features import PAPER_ROWS, Table3Result


def test_fig1_grid_marks_design():
    result = Fig1Result(templates=(1, 2, 3), design=((1, 2), (2, 3), (3, 1)))
    grid = result.grid()
    assert grid[0][1] and grid[1][2] and grid[2][0]
    assert sum(sum(row) for row in grid) == 3


def test_table2_paper_constants_match_paper():
    assert PAPER_MRE[CQIVariant.BASELINE_IO] == pytest.approx(0.254)
    assert PAPER_MRE[CQIVariant.POSITIVE_IO] == pytest.approx(0.204)
    assert PAPER_MRE[CQIVariant.FULL] == pytest.approx(0.202)


def test_table2_format_mentions_paper_numbers():
    result = Table2Result(
        mre={v: 0.1 for v in CQIVariant}, mpls=(2, 3)
    )
    table = result.format_table()
    assert "25.4%" in table and "CQI" in table


def test_table3_paper_rows_cover_all_features():
    assert "Isolated latency" in PAPER_ROWS
    assert len(PAPER_ROWS) == 7
    # The paper's strongest slope feature is isolated latency.
    assert PAPER_ROWS["Isolated latency"][1] == pytest.approx(-0.51)


def test_table3_best_slope_feature():
    rows = (
        ("Isolated latency", 0.3, -0.7),
        ("Max working set", -0.1, 0.1),
    )
    result = Table3Result(rows=rows, mpl=2)
    assert result.best_slope_feature() == "Isolated latency"


def test_fig4_format_includes_trend():
    result = Fig4Result(
        points=((1, 0.1, 0.9), (2, 0.2, 0.5)),
        trend_slope=-4.0,
        trend_intercept=1.3,
        correlation=-0.9,
        mpl=2,
    )
    table = result.format_table()
    assert "trend" in table and "pearson" in table
    chart = result.format_chart()
    grid_rows = [line for line in chart.splitlines() if line.startswith("|")]
    assert sum(row.count("o") for row in grid_rows) == 2


def test_fig6_category_ordering_helpers():
    curves = {
        62: {1: 100.0, 5: 400.0},
        71: {1: 100.0, 5: 500.0},
        22: {1: 100.0, 5: 700.0},
    }
    result = Fig6Result(curves=curves, extrapolation_mre=0.05)
    table = result.format_table()
    assert "heavy" in table and "light" in table
    chart = result.format_chart()
    assert "T22" in chart


def test_fig7_category_mean():
    result = Fig7Result(
        per_template={26: 0.1, 33: 0.2, 17: 0.4}, average=0.23, mpl=4
    )
    assert result.category_mean((26, 33)) == pytest.approx(0.15)
    assert result.category_mean((999,)) != result.category_mean((26,))


def test_fig8_average_and_chart():
    mre = {
        "Known-Templates": {2: 0.1, 3: 0.2},
        "Unknown-Y": {2: 0.15, 3: 0.25},
        "Unknown-QS": {2: 0.2, 3: 0.3},
    }
    result = Fig8Result(mre=mre, mpls=(2, 3))
    assert result.average("Known-Templates") == pytest.approx(0.15)
    assert "MPL 2" in result.format_chart()


def test_fig9_average():
    result = Fig9Result(
        mre={"KNN": {2: 0.1, 3: 0.2}, "I/O Time": {2: 0.2, 3: 0.3}},
        mpls=(2, 3),
    )
    assert result.average("KNN") == pytest.approx(0.15)
    assert "paper" in result.format_table()


def test_sampling_cost_format():
    result = SamplingCostResult(
        per_approach={"prior": (3600.0, 10), "ours": (36.0, 1)},
        spoiler_vs_mix_ratio=0.01,
    )
    table = result.format_table()
    assert "1.0 h" in table
    assert "1.00%" in table
