"""Unit-helper tests."""

import pytest

from repro import units


def test_byte_multiples():
    assert units.KB(1) == 1024
    assert units.MB(1) == 1024**2
    assert units.GB(1) == 1024**3


def test_gb_scales_linearly():
    assert units.GB(2.5) == 2.5 * units.GB(1)


def test_bytes_to_pages_rounds_up():
    assert units.bytes_to_pages(1) == 1
    assert units.bytes_to_pages(units.PAGE_SIZE) == 1
    assert units.bytes_to_pages(units.PAGE_SIZE + 1) == 2


def test_bytes_to_pages_of_nonpositive_is_zero():
    assert units.bytes_to_pages(0) == 0
    assert units.bytes_to_pages(-5) == 0


def test_pages_to_bytes_round_trip():
    assert units.pages_to_bytes(units.bytes_to_pages(units.PAGE_SIZE * 7)) == (
        units.PAGE_SIZE * 7
    )


def test_fmt_bytes_picks_unit():
    assert units.fmt_bytes(512) == "512.0 B"
    assert units.fmt_bytes(units.MB(3)) == "3.0 MiB"
    assert units.fmt_bytes(units.GB(38)) == "38.0 GiB"


def test_fmt_duration_seconds_and_minutes():
    assert units.fmt_duration(12.34) == "12.3s"
    assert units.fmt_duration(125) == "2m05.0s"
    assert units.fmt_duration(3725) == "1h02m05.0s"


def test_seconds_from_milliseconds():
    assert units.seconds(1500) == pytest.approx(1.5)
