"""Deterministic tracing: stable IDs, nesting, the null recorder."""

from repro.obs.tracing import (
    NULL_TRACE,
    NullTraceRecorder,
    TraceRecorder,
    span_id,
)


def test_span_id_is_deterministic_and_key_sensitive():
    a = span_id(42, "campaign.collect", ("mix", (26, 65)))
    b = span_id(42, "campaign.collect", ("mix", (26, 65)))
    c = span_id(42, "campaign.collect", ("mix", (26, 71)))
    d = span_id(43, "campaign.collect", ("mix", (26, 65)))
    assert a == b
    assert len(a) == 16
    assert a != c
    assert a != d


def test_serial_spans_get_deterministic_ordinal_ids():
    def record():
        rec = TraceRecorder(seed=7, clock=lambda: 0.0)
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        return [s.span_id for s in rec.spans]

    assert record() == record()


def test_spans_nest_through_the_stack():
    rec = TraceRecorder(seed=0, clock=lambda: 0.0)
    with rec.span("root") as root:
        with rec.span("child") as child:
            with rec.span("grandchild") as grandchild:
                pass
        with rec.span("sibling") as sibling:
            pass
    assert root.parent_id is None
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id
    assert sibling.parent_id == root.span_id


def test_span_duration_and_attributes():
    ticks = iter([1.0, 3.5])
    rec = TraceRecorder(seed=0, clock=lambda: next(ticks))
    span = rec.start_span("work", key="k", tasks=9)
    assert span.duration == 0.0  # still open
    span.set_attribute("extra", True)
    rec.end_span(span)
    assert span.duration == 2.5
    doc = span.to_doc()
    assert doc["attributes"] == {"tasks": 9, "extra": True}
    assert doc["duration"] == 2.5


def test_find_and_to_docs():
    rec = TraceRecorder(seed=0, clock=lambda: 0.0)
    with rec.span("a"):
        pass
    with rec.span("b"):
        pass
    with rec.span("a"):
        pass
    assert [s.name for s in rec.find("a")] == ["a", "a"]
    docs = rec.to_docs()
    assert [d["name"] for d in docs] == ["a", "b", "a"]
    assert all(d["end"] is not None for d in docs)


def test_end_span_unwinds_abandoned_children():
    rec = TraceRecorder(seed=0, clock=lambda: 0.0)
    outer = rec.start_span("outer")
    rec.start_span("leaked")  # never explicitly ended
    rec.end_span(outer)
    with rec.span("next") as nxt:
        pass
    assert nxt.parent_id is None  # the stack fully unwound


def test_explicit_keys_make_ids_order_independent():
    rec1 = TraceRecorder(seed=5, clock=lambda: 0.0)
    rec2 = TraceRecorder(seed=5, clock=lambda: 0.0)
    for key in ("x", "y"):
        rec1.end_span(rec1.start_span("task", key=key, parent=None))
    for key in ("y", "x"):
        rec2.end_span(rec2.start_span("task", key=key, parent=None))
    ids1 = {s.span_id for s in rec1.spans}
    ids2 = {s.span_id for s in rec2.spans}
    assert ids1 == ids2


def test_null_recorder_drops_everything():
    assert isinstance(NULL_TRACE, NullTraceRecorder)
    with NULL_TRACE.span("anything", key=1, attr=2) as span:
        span.set_attribute("ignored", True)
    assert NULL_TRACE.spans == []
    assert NULL_TRACE.find("anything") == []
    assert NULL_TRACE.to_docs() == []
