"""Exporter formats: Prometheus text exposition 0.0.4 and JSON mirror."""

import json
import math

from repro.obs.export import CONTENT_TYPE_LATEST, render_json, render_prometheus
from repro.obs.metrics import NULL_REGISTRY, Registry


def _sample_registry() -> Registry:
    reg = Registry()
    reg.counter("events_total", "Events seen.").inc(3)
    reg.gauge("queue_depth", "Live depth.", labels=("resource",)).labels(
        "seq"
    ).set(2)
    h = reg.histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


def test_prometheus_text_structure():
    text = render_prometheus(_sample_registry())
    lines = text.splitlines()
    assert "# HELP events_total Events seen." in lines
    assert "# TYPE events_total counter" in lines
    assert "events_total 3" in lines
    assert 'queue_depth{resource="seq"} 2' in lines
    assert 'latency_seconds_bucket{le="0.1"} 1' in lines
    assert 'latency_seconds_bucket{le="1"} 2' in lines
    assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
    assert "latency_seconds_sum 5.55" in lines
    assert "latency_seconds_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_families_render_in_name_order():
    text = render_prometheus(_sample_registry())
    order = [
        line.split()[2]
        for line in text.splitlines()
        if line.startswith("# TYPE")
    ]
    assert order == sorted(order)


def test_label_values_are_escaped():
    reg = Registry()
    reg.counter("c_total", labels=("path",)).labels('a"b\\c\nd').inc()
    text = render_prometheus(reg)
    assert 'path="a\\"b\\\\c\\nd"' in text


def test_float_formatting_round_trips():
    reg = Registry()
    reg.gauge("g").set(0.1 + 0.2)  # not exactly 0.3
    text = render_prometheus(reg)
    value = [l for l in text.splitlines() if l.startswith("g ")][0].split()[1]
    assert float(value) == 0.1 + 0.2


def test_empty_registry_renders_empty_and_null_registry_too():
    assert render_prometheus(Registry()) == ""
    assert render_prometheus(NULL_REGISTRY) == ""
    assert render_json(NULL_REGISTRY) == {}


def test_json_mirror_is_serializable_and_structured():
    doc = render_json(_sample_registry())
    # Standard JSON: histogram +Inf must not appear as a bare float.
    text = json.dumps(doc)
    parsed = json.loads(text)
    hist = parsed["latency_seconds"]["samples"][0]
    assert hist["count"] == 3
    assert hist["sum"] == 5.55
    assert hist["buckets"][-1]["le"] == "+Inf"
    assert all(
        isinstance(b["le"], (int, float)) or b["le"] == "+Inf"
        for b in hist["buckets"]
    )
    assert parsed["events_total"]["type"] == "counter"
    assert parsed["queue_depth"]["samples"][0]["labels"] == {"resource": "seq"}


def test_content_type_advertises_text_format_004():
    assert "version=0.0.4" in CONTENT_TYPE_LATEST
    assert CONTENT_TYPE_LATEST.startswith("text/plain")


def test_nan_and_infinities_format():
    reg = Registry()
    reg.gauge("weird").set(math.inf)
    text = render_prometheus(reg)
    assert "weird +Inf" in text
    reg2 = Registry()
    reg2.gauge("weird").set(-math.inf)
    assert "weird -Inf" in render_prometheus(reg2)
    reg3 = Registry()
    reg3.gauge("weird").set(math.nan)
    assert "weird NaN" in render_prometheus(reg3)
