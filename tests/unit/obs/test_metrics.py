"""Metrics-core behaviour: instruments, families, registry, null path."""

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    NullRegistry,
    Registry,
)


# ----------------------------------------------------------------------
# Counters and gauges.


def test_counter_accumulates_and_rejects_negative():
    reg = Registry()
    c = reg.counter("widgets_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ObservabilityError):
        c.inc(-1)


def test_gauge_moves_both_ways_and_tracks_peak():
    reg = Registry()
    g = reg.gauge("depth")
    g.set(4)
    g.dec()
    g.inc(0.5)
    assert g.value == 3.5
    g.set_max(10)
    g.set_max(2)  # below the peak: no effect
    assert g.value == 10.0


def test_gauge_function_reads_at_collection_time():
    reg = Registry()
    box = {"v": 1.0}
    g = reg.gauge_function("live", "pull-style", lambda: box["v"])
    assert g.value == 1.0
    box["v"] = 7.0
    assert g.value == 7.0


# ----------------------------------------------------------------------
# Histograms.


def test_histogram_buckets_are_cumulative_with_inf_tail():
    reg = Registry()
    h = reg.histogram("lat", buckets=(1.0, 2.0, 5.0))
    for v in (0.5, 1.5, 1.5, 10.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap.count == 4
    assert snap.sum == pytest.approx(13.5)
    assert snap.buckets == [(1.0, 1), (2.0, 3), (5.0, 3), (float("inf"), 4)]


def test_histogram_boundary_value_lands_in_its_bucket():
    # Prometheus buckets are upper-inclusive: observe(le) counts in le.
    reg = Registry()
    h = reg.histogram("edge", buckets=(1.0, 2.0))
    h.observe(1.0)
    assert h.snapshot().buckets[0] == (1.0, 1)


def test_histogram_default_buckets_and_invalid_bounds():
    reg = Registry()
    h = reg.histogram("default_bounds")
    h.observe(0.0001)
    assert h.snapshot().buckets[0] == (DEFAULT_BUCKETS[0], 1)
    with pytest.raises(ObservabilityError):
        reg.histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(ObservabilityError):
        reg.histogram("empty", buckets=())


# ----------------------------------------------------------------------
# Labels and families.


def test_labelled_family_mints_one_child_per_combination():
    reg = Registry()
    fam = reg.counter("req_total", labels=("op",))
    fam.labels("get").inc()
    fam.labels("get").inc()
    fam.labels("put").inc()
    assert fam.labels("get").value == 2
    assert fam.labels("put").value == 1
    assert fam.total() == 3
    assert [values for values, _ in fam.children()] == [("get",), ("put",)]


def test_labelled_family_rejects_unlabelled_use_and_wrong_arity():
    reg = Registry()
    fam = reg.counter("req_total", labels=("op",))
    with pytest.raises(ObservabilityError):
        fam.inc()
    with pytest.raises(ObservabilityError):
        fam.labels("a", "b")


def test_label_values_are_stringified():
    reg = Registry()
    fam = reg.gauge("by_pid", labels=("pid",))
    fam.labels(1234).set(1)
    assert fam.labels("1234").value == 1


# ----------------------------------------------------------------------
# Registry semantics.


def test_registration_is_get_or_create():
    reg = Registry()
    a = reg.counter("x_total", "help")
    b = reg.counter("x_total", "different help ignored")
    assert a is b


def test_conflicting_reregistration_raises():
    reg = Registry()
    reg.counter("x_total")
    with pytest.raises(ObservabilityError):
        reg.gauge("x_total")
    reg.histogram("h", buckets=(1.0,))
    with pytest.raises(ObservabilityError):
        reg.histogram("h", buckets=(1.0, 2.0))


def test_invalid_names_are_rejected():
    reg = Registry()
    with pytest.raises(ObservabilityError):
        reg.counter("bad-name")
    with pytest.raises(ObservabilityError):
        reg.counter("ok_total", labels=("bad-label",))


def test_collect_is_sorted_and_contains_lookup_works():
    reg = Registry()
    reg.counter("zz_total")
    reg.gauge("aa")
    assert [f.name for f in reg.collect()] == ["aa", "zz_total"]
    assert "aa" in reg
    assert "nope" not in reg
    assert reg.get("zz_total").type == "counter"
    assert reg.get("nope") is None


def test_thread_safety_under_concurrent_increments():
    reg = Registry()
    c = reg.counter("hits_total", labels=("op",))
    h = reg.histogram("obs", buckets=(0.5,))

    def hammer():
        for _ in range(1000):
            c.labels("x").inc()
            h.observe(0.1)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.labels("x").value == 4000
    assert h.snapshot().count == 4000


# ----------------------------------------------------------------------
# Null registry.


def test_null_registry_absorbs_everything():
    null = NullRegistry()
    null.counter("a").labels("x").inc()
    null.gauge("b").set(3)
    null.histogram("c").observe(1.0)
    null.gauge_function("d", "h", lambda: 1.0)
    assert null.collect() == []
    assert null.get("a") is None
    assert "a" not in null
    assert null.counter("a").value == 0.0
    assert NULL_REGISTRY.counter("x").total() == 0.0
