"""Arrival-trace generator tests: determinism, rates, and marginals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.traces import (
    TRACE_KINDS,
    ArrivalTrace,
    TemplateDistribution,
    TraceConfig,
    bursty_trace,
    diurnal_trace,
    generate_trace,
    poisson_trace,
)
from repro.errors import ReproError

TEMPLATES = (22, 26, 32, 62, 65, 71, 82)
DIST = TemplateDistribution.uniform(TEMPLATES)

_GENERATORS = {
    "poisson": poisson_trace,
    "bursty": bursty_trace,
    "diurnal": diurnal_trace,
}


# ----------------------------------------------------------------------
# Seed determinism.


@pytest.mark.parametrize("kind", TRACE_KINDS)
def test_same_seed_reproduces_bitwise(kind):
    one = _GENERATORS[kind](DIST, rate=0.01, count=50, seed=123)
    two = _GENERATORS[kind](DIST, rate=0.01, count=50, seed=123)
    assert one == two  # frozen dataclasses: full structural equality


@pytest.mark.parametrize("kind", TRACE_KINDS)
def test_different_seed_differs(kind):
    one = _GENERATORS[kind](DIST, rate=0.01, count=50, seed=1)
    two = _GENERATORS[kind](DIST, rate=0.01, count=50, seed=2)
    assert one.arrivals != two.arrivals


@pytest.mark.parametrize("kind", TRACE_KINDS)
def test_times_positive_and_nondecreasing(kind):
    trace = _GENERATORS[kind](DIST, rate=0.05, count=200, seed=9)
    times = [a.time for a in trace.arrivals]
    assert len(times) == 200
    assert times[0] > 0
    assert all(b >= a for a, b in zip(times, times[1:]))


# ----------------------------------------------------------------------
# Mean inter-arrival rate (law of large numbers, tolerance-checked).


@settings(max_examples=25)
@given(
    rate=st.floats(min_value=1e-3, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_poisson_mean_rate_within_tolerance(rate, seed):
    trace = poisson_trace(DIST, rate=rate, count=1500, seed=seed)
    # Std of the mean of n exponential gaps is (1/rate)/sqrt(n) ≈ 2.6 %
    # here; 15 % is a > 5-sigma bound.
    assert trace.mean_interarrival == pytest.approx(1.0 / rate, rel=0.15)


@settings(max_examples=10)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_bursty_preserves_long_run_mean_rate(seed):
    rate = 0.5
    trace = bursty_trace(DIST, rate=rate, count=4000, seed=seed)
    # MMPP gaps are correlated within a dwell, so the estimator is
    # noisier than i.i.d. exponentials; 25 % still separates rate from
    # rate*burst_factor (5x) and from the off-state rate (~0.3x).
    assert trace.mean_interarrival == pytest.approx(1.0 / rate, rel=0.25)


@settings(max_examples=10)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_diurnal_preserves_long_run_mean_rate(seed):
    rate = 0.5
    trace = diurnal_trace(DIST, rate=rate, count=3000, seed=seed, period=500.0)
    assert trace.mean_interarrival == pytest.approx(1.0 / rate, rel=0.25)


# ----------------------------------------------------------------------
# Template-distribution marginals.


def test_uniform_template_marginals():
    trace = poisson_trace(DIST, rate=1.0, count=7000, seed=5)
    counts = trace.template_counts()
    assert set(counts) == set(TEMPLATES)
    for template in TEMPLATES:
        assert counts[template] == pytest.approx(1000, rel=0.15)


def test_weighted_template_marginals():
    dist = TemplateDistribution((26, 65, 71), (0.7, 0.2, 0.1))
    trace = poisson_trace(dist, rate=1.0, count=5000, seed=5)
    counts = trace.template_counts()
    assert counts[26] == pytest.approx(3500, rel=0.10)
    assert counts[65] == pytest.approx(1000, rel=0.20)
    assert counts[71] == pytest.approx(500, rel=0.25)


def test_weights_normalized_on_construction():
    dist = TemplateDistribution((1, 2), (3.0, 1.0))
    assert dist.weights == (0.75, 0.25)


# ----------------------------------------------------------------------
# Validation.


def test_invalid_distribution_rejected():
    with pytest.raises(ReproError):
        TemplateDistribution((), ())
    with pytest.raises(ReproError):
        TemplateDistribution((1, 2), (1.0,))
    with pytest.raises(ReproError):
        TemplateDistribution((1,), (-1.0,))
    with pytest.raises(ReproError):
        TemplateDistribution((1, 2), (0.0, 0.0))


def test_invalid_rate_and_count_rejected():
    with pytest.raises(ReproError):
        poisson_trace(DIST, rate=0.0, count=10)
    with pytest.raises(ReproError):
        poisson_trace(DIST, rate=1.0, count=0)


def test_bursty_knobs_validated():
    with pytest.raises(ReproError):
        bursty_trace(DIST, rate=1.0, count=10, burst_factor=1.0)
    with pytest.raises(ReproError):
        bursty_trace(DIST, rate=1.0, count=10, on_fraction=0.0)
    # on_fraction * burst_factor >= 1 makes the off rate negative.
    with pytest.raises(ReproError):
        bursty_trace(DIST, rate=1.0, count=10, burst_factor=5.0, on_fraction=0.25)


def test_diurnal_knobs_validated():
    with pytest.raises(ReproError):
        diurnal_trace(DIST, rate=1.0, count=10, amplitude=1.0)
    with pytest.raises(ReproError):
        diurnal_trace(DIST, rate=1.0, count=10, period=0.0)


# ----------------------------------------------------------------------
# Declarative config dispatch.


@pytest.mark.parametrize("kind", TRACE_KINDS)
def test_generate_trace_matches_direct_call(kind):
    config = TraceConfig(kind=kind, templates=DIST, rate=0.02, count=40, seed=3)
    assert generate_trace(config) == _GENERATORS[kind](
        DIST, rate=0.02, count=40, seed=3
    )


def test_unknown_kind_rejected():
    with pytest.raises(ReproError):
        TraceConfig(kind="weibull", templates=DIST, rate=1.0, count=10)


def test_trace_summary_properties():
    trace = poisson_trace(DIST, rate=0.1, count=25, seed=0)
    assert len(trace) == 25
    assert trace.duration == trace.arrivals[-1].time
    assert sum(trace.template_counts().values()) == 25
    empty = ArrivalTrace(kind="poisson", seed=0, rate=1.0, arrivals=())
    assert empty.duration == 0.0
    assert empty.mean_interarrival == 0.0
