"""Scheduling-policy unit tests over the small fitted predictor."""

import pytest

from repro.apps.admission import (
    AdmissionController,
    ContenderBackend,
    predicted_mix_latencies,
)
from repro.errors import ModelError
from repro.sched.policies import (
    POLICY_NAMES,
    FifoPolicy,
    GatedFifoPolicy,
    PredictivePolicy,
    SchedulerPolicy,
    make_policy,
)


@pytest.fixture(scope="module")
def backend(small_contender):
    return ContenderBackend(small_contender)


def test_fifo_always_picks_head():
    policy = FifoPolicy()
    assert policy.pick(0.0, (), (26, 65, 71)) == 0
    assert policy.pick(10.0, (26,), (65,)) == 0
    assert policy.pick(0.0, (), ()) is None


def test_gated_admits_into_idle_system(backend):
    policy = GatedFifoPolicy(
        AdmissionController(backend, sla_factor=1.0, max_mpl=2)
    )
    # Even the strictest SLA admits a solo query.
    assert policy.pick(0.0, (), (26,)) == 0


def test_gated_mirrors_controller_decision(backend):
    controller = AdmissionController(backend, sla_factor=1.5, max_mpl=2)
    policy = GatedFifoPolicy(controller)
    for running in ((26,), (65,), (82,)):
        for head in (22, 32, 62):
            expected = 0 if controller.check(running, head).admitted else None
            assert policy.pick(0.0, running, (head, 71)) == expected


def test_gated_head_of_line_blocking(backend):
    # Even if a later candidate would pass, only the head is considered.
    controller = AdmissionController(backend, sla_factor=1.0, max_mpl=2)
    policy = GatedFifoPolicy(controller)
    head = 82
    if controller.check((26,), head).admitted:
        pytest.skip("fixture SLA admits the head; scenario not reachable")
    assert policy.pick(0.0, (26,), (head, 26)) is None


def test_predictive_empty_mix_is_shortest_job_first(backend, small_contender):
    policy = PredictivePolicy(backend)
    queue = (26, 65, 71, 82)
    choice = policy.pick(0.0, (), queue)
    isolated = [
        small_contender.data.profile(t).isolated_latency for t in queue
    ]
    assert choice == isolated.index(min(isolated))


def test_predictive_picks_minimal_predicted_makespan(backend):
    policy = PredictivePolicy(backend)
    running = (26,)
    queue = (65, 82, 22)
    choice = policy.pick(0.0, running, queue)
    scores = [policy.score(running, candidate) for candidate in queue]
    assert choice == scores.index(min(scores))


def test_predictive_window_bounds_search(backend):
    policy = PredictivePolicy(backend, window=1)
    # Only the head is scored, so the head is picked regardless of rank.
    assert policy.pick(0.0, (26,), (82, 65)) == 0


def test_predictive_sum_objective(backend):
    by_max = PredictivePolicy(backend, objective="makespan")
    by_sum = PredictivePolicy(backend, objective="sum")
    running = (26,)
    for candidate in (65, 82):
        lat = predicted_mix_latencies(backend, (*running, candidate))
        assert by_max.score(running, candidate) == pytest.approx(max(lat))
        assert by_sum.score(running, candidate) == pytest.approx(sum(lat))


def test_predictive_validates_knobs(backend):
    with pytest.raises(ModelError):
        PredictivePolicy(backend, window=0)
    with pytest.raises(ModelError):
        PredictivePolicy(backend, objective="median")


def test_make_policy_factory(backend):
    for name in POLICY_NAMES:
        policy = make_policy(name, backend, max_mpl=2)
        assert isinstance(policy, SchedulerPolicy)
        assert policy.name == name
    assert isinstance(make_policy("fifo"), FifoPolicy)
    with pytest.raises(ModelError):
        make_policy("gated")  # needs a backend
    with pytest.raises(ModelError):
        make_policy("predictive")
    with pytest.raises(ModelError):
        make_policy("lifo", backend)


def test_make_policy_forwards_admission_knobs(backend):
    policy = make_policy("gated", backend, sla_factor=2.0, max_mpl=4)
    assert policy.controller.sla_factor == 2.0
    assert not policy.controller.check((1, 2, 3, 4), 5).admitted


@pytest.mark.parametrize("objective", ["makespan", "sum"])
def test_predictive_vectorized_pick_matches_scalar_argmin(backend, objective):
    """The one-array-call window scoring must reproduce the scalar
    strict-< argmin over score() exactly — duplicates included."""
    states = [
        ((), (26, 65, 71, 82, 26, 65)),
        ((26,), (65, 82, 22, 65, 82, 26)),
        ((71,), (26, 26, 26)),
        ((82,), (22,)),
    ]
    for window in (1, 3, 8):
        policy = PredictivePolicy(backend, window=window, objective=objective)
        for running, queue in states:
            best_index, best_score = 0, float("inf")
            for index, candidate in enumerate(queue[:window]):
                score = policy.score(running, candidate)
                if score < best_score:
                    best_score, best_index = score, index
            assert policy.pick(0.0, running, queue) == best_index
