"""Queue-replay unit tests: completeness, accounting, and determinism."""

import pytest

from repro.apps.admission import ContenderBackend
from repro.errors import ModelError
from repro.obs.metrics import Registry
from repro.sched.policies import make_policy
from repro.sched.replay import compare_policies, replay_trace
from repro.sched.traces import TemplateDistribution, poisson_trace
from tests.conftest import SMALL_TEMPLATES

DIST = TemplateDistribution.uniform(SMALL_TEMPLATES)


@pytest.fixture(scope="module")
def backend(small_contender):
    return ContenderBackend(small_contender)


@pytest.fixture(scope="module")
def trace():
    # ~8-minute mean gap over templates whose isolated latencies run
    # 154-923 s: contended enough to queue, small enough to stay fast.
    return poisson_trace(DIST, rate=1.0 / 240.0, count=12, seed=42)


def test_fifo_replay_completes_every_arrival(trace, small_catalog):
    result = replay_trace(trace, make_policy("fifo"), small_catalog, max_mpl=2)
    assert len(result.outcomes) == len(trace)
    assert result.policy == "fifo"
    assert result.trace_kind == "poisson"
    assert result.max_mpl == 2


def test_outcome_accounting_is_consistent(trace, small_catalog):
    result = replay_trace(trace, make_policy("fifo"), small_catalog, max_mpl=2)
    for outcome in result.outcomes:
        assert outcome.start_time >= outcome.arrival_time
        assert outcome.end_time > outcome.start_time
        assert outcome.queue_seconds == pytest.approx(
            outcome.start_time - outcome.arrival_time
        )
        assert outcome.total_seconds == pytest.approx(
            outcome.queue_seconds + outcome.exec_seconds
        )
    assert result.makespan == max(o.end_time for o in result.outcomes)
    # Every template the trace injected came back out.
    replayed = sorted(o.template for o in result.outcomes)
    assert replayed == sorted(a.template for a in trace.arrivals)


def test_fifo_preserves_arrival_order(trace, small_catalog):
    result = replay_trace(trace, make_policy("fifo"), small_catalog, max_mpl=2)
    starts_by_arrival = [
        o.start_time for o in sorted(result.outcomes, key=lambda o: o.arrival_time)
    ]
    assert starts_by_arrival == sorted(starts_by_arrival)


def test_replay_is_deterministic(trace, small_catalog, backend):
    for name in ("fifo", "predictive"):
        one = replay_trace(
            trace,
            make_policy(name, backend, max_mpl=2),
            small_catalog,
            max_mpl=2,
        )
        two = replay_trace(
            trace,
            make_policy(name, backend, max_mpl=2),
            small_catalog,
            max_mpl=2,
        )
        assert one.outcomes == two.outcomes
        assert one.makespan == two.makespan


def test_mpl_cap_never_exceeded(trace, small_catalog):
    max_mpl = 2
    result = replay_trace(
        trace, make_policy("fifo"), small_catalog, max_mpl=max_mpl
    )
    events = sorted(
        [(o.start_time, 1) for o in result.outcomes]
        + [(o.end_time, -1) for o in result.outcomes]
    )
    depth = peak = 0
    for _, delta in events:
        depth += delta
        peak = max(peak, depth)
    assert peak <= max_mpl


def test_percentiles_ordered(trace, small_catalog):
    result = replay_trace(trace, make_policy("fifo"), small_catalog, max_mpl=2)
    assert 0 < result.p50 <= result.p95 <= result.p99
    assert result.percentile(1.0) == max(o.total_seconds for o in result.outcomes)


def test_gated_replay_defers_but_completes(trace, small_catalog, backend):
    policy = make_policy("gated", backend, sla_factor=1.2, max_mpl=2)
    result = replay_trace(trace, policy, small_catalog, max_mpl=2)
    assert len(result.outcomes) == len(trace)
    assert result.decisions >= len(trace)
    assert result.deferrals >= 0


def test_registry_instrumentation(trace, small_catalog):
    registry = Registry()
    replay_trace(
        trace, make_policy("fifo"), small_catalog, max_mpl=2, registry=registry
    )
    assert "sched_queue_depth" in registry
    assert "sched_admissions_total" in registry
    assert "sched_queue_wait_seconds" in registry
    assert "sched_latency_seconds" in registry
    admitted = registry.get("sched_admissions_total").labels("fifo", "admitted")
    assert admitted.value == len(trace)


def test_compare_policies_covers_all(trace, small_catalog, backend):
    policies = [
        make_policy("fifo"),
        make_policy("gated", backend, sla_factor=1.5, max_mpl=2),
        make_policy("predictive", backend, max_mpl=2),
    ]
    report = compare_policies(trace, policies, small_catalog, max_mpl=2)
    assert [r.policy for r in report.results] == ["fifo", "gated", "predictive"]
    assert report.count == len(trace)
    for result in report.results:
        assert len(result.outcomes) == len(trace)
    table = report.format_table()
    assert "predictive" in table and "makespan" in table
    doc = report.to_doc()
    assert len(doc["results"]) == 3
    assert report.result_for("fifo").policy == "fifo"
    with pytest.raises(ModelError):
        report.result_for("lifo")


def test_replay_validates_inputs(trace, small_catalog):
    with pytest.raises(ModelError):
        replay_trace(trace, make_policy("fifo"), small_catalog, max_mpl=0)
    with pytest.raises(ModelError):
        compare_policies(trace, [], small_catalog)


def test_replay_records_predictions_with_backend(trace, small_catalog, backend):
    result = replay_trace(
        trace,
        make_policy("fifo"),
        small_catalog,
        max_mpl=2,
        backend=backend,
    )
    for outcome in result.outcomes:
        assert outcome.predicted_exec_seconds is not None
        assert outcome.predicted_exec_seconds > 0
    accuracy = result.pairwise_accuracy
    assert accuracy is not None
    assert 0.0 <= accuracy <= 1.0
    from repro.eval.metrics import pairwise_counts

    correct, comparable = pairwise_counts(
        [o.exec_seconds for o in result.outcomes],
        [o.predicted_exec_seconds for o in result.outcomes],
    )
    assert accuracy == correct / comparable
    assert result.to_doc()["pairwise_accuracy"] == accuracy


def test_replay_accuracy_none_without_backend(trace, small_catalog):
    result = replay_trace(trace, make_policy("fifo"), small_catalog, max_mpl=2)
    assert all(o.predicted_exec_seconds is None for o in result.outcomes)
    assert result.pairwise_accuracy is None
    assert result.to_doc()["pairwise_accuracy"] is None


def test_compare_policies_reports_rank_quality(trace, small_catalog, backend):
    policies = [make_policy("fifo"), make_policy("predictive", backend, max_mpl=2)]
    report = compare_policies(
        trace, policies, small_catalog, max_mpl=2, backend=backend
    )
    for result in report.results:
        assert result.pairwise_accuracy is not None
        assert 0.0 <= result.pairwise_accuracy <= 1.0
    assert "pair-acc" in report.format_table()
    doc = report.to_doc()
    for result_doc in doc["results"]:
        assert "pairwise_accuracy" in result_doc
