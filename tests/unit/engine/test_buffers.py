"""Buffer-cache tests."""

import pytest

from repro.engine.buffers import BufferCache
from repro.errors import SimulationError
from repro.units import MB


@pytest.fixture()
def cache():
    return BufferCache(capacity_bytes=MB(100))


def test_starts_cold(cache):
    assert not cache.is_resident("item")
    assert cache.used_bytes == 0


def test_admit_makes_resident(cache):
    assert cache.admit("item", MB(50))
    assert cache.is_resident("item")
    assert cache.used_bytes == MB(50)


def test_admit_respects_capacity(cache):
    assert cache.admit("a", MB(80))
    assert not cache.admit("b", MB(30))
    assert not cache.is_resident("b")


def test_admit_is_idempotent(cache):
    cache.admit("item", MB(50))
    assert cache.admit("item", MB(50))
    assert cache.used_bytes == MB(50)


def test_exact_fit_admitted(cache):
    assert cache.admit("a", MB(100))


def test_clear_flushes(cache):
    cache.admit("item", MB(50))
    cache.clear()
    assert not cache.is_resident("item")
    assert cache.used_bytes == 0


def test_resident_relations(cache):
    cache.admit("a", MB(10))
    cache.admit("b", MB(10))
    assert cache.resident_relations() == {"a", "b"}


def test_negative_size_rejected(cache):
    with pytest.raises(SimulationError):
        cache.admit("x", -1)


def test_negative_capacity_rejected():
    with pytest.raises(SimulationError):
        BufferCache(capacity_bytes=-1)


def test_lru_evicts_oldest_to_make_room():
    cache = BufferCache(capacity_bytes=MB(100), eviction="lru")
    cache.admit("a", MB(60))
    cache.admit("b", MB(30))
    assert cache.admit("c", MB(50))  # evicts 'a'
    assert not cache.is_resident("a")
    assert cache.is_resident("b") and cache.is_resident("c")


def test_lru_touch_refreshes_recency():
    cache = BufferCache(capacity_bytes=MB(100), eviction="lru")
    cache.admit("a", MB(40))
    cache.admit("b", MB(30))
    assert cache.is_resident("a")  # touch 'a' -> 'b' becomes the oldest
    cache.admit("c", MB(50))
    assert cache.is_resident("a")
    assert not cache.is_resident("b")


def test_lru_never_admits_oversized_relation():
    cache = BufferCache(capacity_bytes=MB(100), eviction="lru")
    cache.admit("a", MB(60))
    assert not cache.admit("huge", MB(200))
    assert cache.is_resident("a")


def test_unknown_eviction_policy_rejected():
    with pytest.raises(SimulationError):
        BufferCache(capacity_bytes=MB(10), eviction="clock")
