"""Plan-operator costing tests."""

import math

import pytest

from repro.engine.operators import (
    Aggregate,
    BitmapHeapScan,
    CTEScan,
    HashJoin,
    IndexScan,
    Materialize,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    Sort,
    WindowAgg,
    BITMAP_FETCH_PER_ROW,
    CPU_SORT_ROW_LOG,
)
from repro.engine.relation import Relation, RelationKind
from repro.errors import WorkloadError
from repro.units import GB, MB


@pytest.fixture()
def fact():
    return Relation("fact", GB(10), 100_000_000, RelationKind.FACT)


@pytest.fixture()
def dim():
    return Relation("dim", MB(50), 200_000, RelationKind.DIMENSION)


def test_seqscan_reads_whole_table_regardless_of_selectivity(fact):
    narrow = SeqScan(relation=fact, selectivity=0.01)
    wide = SeqScan(relation=fact, selectivity=1.0)
    assert narrow.cost().seq_bytes == wide.cost().seq_bytes == fact.size_bytes


def test_seqscan_output_rows_scale_with_selectivity(fact):
    scan = SeqScan(relation=fact, selectivity=0.25)
    assert scan.output_rows == pytest.approx(0.25 * fact.row_count)


def test_seqscan_feature_name_is_table_specific(fact, dim):
    assert SeqScan(relation=fact).feature_name() == "SeqScan:fact"
    assert SeqScan(relation=dim).feature_name() == "SeqScan:dim"


def test_seqscan_rejects_bad_selectivity(fact):
    with pytest.raises(WorkloadError):
        SeqScan(relation=fact, selectivity=0.0)
    with pytest.raises(WorkloadError):
        SeqScan(relation=fact, selectivity=1.5)


def test_seqscan_requires_relation():
    with pytest.raises(WorkloadError):
        SeqScan()


def test_index_scan_random_ops_per_row(fact):
    scan = IndexScan(relation=fact, matching_rows=5000)
    assert scan.cost().rand_ops == pytest.approx(5000)
    assert scan.cost().seq_bytes == 0


def test_bitmap_scan_cheaper_than_index_scan(fact):
    index = IndexScan(relation=fact, matching_rows=10_000)
    bitmap = BitmapHeapScan(relation=fact, matching_rows=10_000)
    assert bitmap.cost().rand_ops == pytest.approx(
        10_000 * BITMAP_FETCH_PER_ROW
    )
    assert bitmap.cost().rand_ops < index.cost().rand_ops


def test_hash_join_memory_is_build_side(fact, dim):
    outer = SeqScan(relation=fact, selectivity=0.1)
    inner = SeqScan(relation=dim)
    join = HashJoin(children=(outer, inner))
    assert join.cost().mem_bytes == pytest.approx(
        dim.row_count * dim.row_width
    )
    assert join.cost().spillable


def test_hash_join_blocking_and_arity(fact, dim):
    join = HashJoin(
        children=(SeqScan(relation=fact), SeqScan(relation=dim))
    )
    assert join.is_blocking
    with pytest.raises(WorkloadError):
        HashJoin(children=(SeqScan(relation=fact),))


def test_join_selectivity_scales_output(fact, dim):
    join = HashJoin(
        children=(SeqScan(relation=fact), SeqScan(relation=dim)),
        join_selectivity=0.5,
    )
    assert join.output_rows == pytest.approx(0.5 * fact.row_count)


def test_sort_cost_is_n_log_n(fact):
    scan = SeqScan(relation=fact, selectivity=1.0)
    sort = Sort(children=(scan,))
    rows = fact.row_count
    expected = rows * CPU_SORT_ROW_LOG * math.log2(rows)
    assert sort.cost().cpu_seconds == pytest.approx(expected)
    assert sort.is_blocking
    assert sort.cost().spillable


def test_hash_aggregate_memory_scales_with_groups(fact):
    scan = SeqScan(relation=fact)
    small = Aggregate(children=(scan,), groups=10, strategy="hash")
    large = Aggregate(children=(scan,), groups=1_000_000, strategy="hash")
    assert large.cost().mem_bytes > small.cost().mem_bytes
    assert small.step == "HashAggregate"


def test_group_aggregate_streams(fact):
    agg = Aggregate(children=(SeqScan(relation=fact),), groups=10, strategy="group")
    assert not agg.is_blocking
    assert agg.cost().mem_bytes == 0
    assert agg.step == "GroupAggregate"


def test_aggregate_rejects_unknown_strategy(fact):
    with pytest.raises(WorkloadError):
        Aggregate(children=(SeqScan(relation=fact),), groups=10, strategy="fancy")


def test_nested_loop_lookup_ops(fact, dim):
    outer = IndexScan(relation=dim, matching_rows=100)
    inner = IndexScan(relation=fact, matching_rows=100)
    join = NestedLoopJoin(children=(outer, inner), inner_lookup_ops=2.0)
    assert join.cost().rand_ops == pytest.approx(200)


def test_merge_join_cpu_sums_inputs(fact, dim):
    join = MergeJoin(
        children=(SeqScan(relation=fact), SeqScan(relation=dim))
    )
    assert join.cost().cpu_seconds > 0
    assert join.cost().seq_bytes == 0


def test_materialize_holds_memory(fact):
    mat = Materialize(children=(SeqScan(relation=fact, selectivity=0.1),))
    assert mat.cost().mem_bytes > 0
    assert mat.is_blocking


def test_window_agg_cpu_only(fact):
    win = WindowAgg(children=(SeqScan(relation=fact),))
    cost = win.cost()
    assert cost.cpu_seconds > 0
    assert cost.seq_bytes == 0 and cost.rand_ops == 0


def test_cte_scan_rows(fact):
    cte = CTEScan(rows=1234, width=32)
    assert cte.output_rows == 1234
    assert cte.output_width == 32


def test_project_width_overrides_computed(fact, dim):
    join = HashJoin(
        children=(SeqScan(relation=fact), SeqScan(relation=dim)),
        project_width=48,
    )
    assert join.output_width == 48


def test_project_width_must_be_positive(fact):
    with pytest.raises(WorkloadError):
        SeqScan(relation=fact, project_width=0)


def test_cpu_factor_scales_cost(fact):
    cheap = SeqScan(relation=fact, cpu_factor=0.5)
    pricey = SeqScan(relation=fact, cpu_factor=2.0)
    assert pricey.cost().cpu_seconds == pytest.approx(
        4 * cheap.cost().cpu_seconds
    )


def test_walk_is_post_order(fact, dim):
    scan_a = SeqScan(relation=fact)
    scan_b = SeqScan(relation=dim)
    join = HashJoin(children=(scan_a, scan_b))
    top = Sort(children=(join,))
    assert list(top.walk()) == [scan_a, scan_b, join, top]
