"""QueryPlan metadata tests."""

import pytest

from repro.engine.operators import Aggregate, HashJoin, IndexScan, SeqScan, Sort
from repro.engine.plans import QueryPlan
from repro.engine.relation import Relation, RelationKind
from repro.errors import WorkloadError
from repro.units import GB, MB


@pytest.fixture()
def relations():
    return {
        "sales": Relation("sales", GB(10), 100_000_000, RelationKind.FACT),
        "returns": Relation("returns", GB(1), 10_000_000, RelationKind.FACT),
        "item": Relation("item", MB(50), 200_000, RelationKind.DIMENSION),
    }


@pytest.fixture()
def plan(relations):
    sales = SeqScan(relation=relations["sales"], selectivity=0.1)
    item = SeqScan(relation=relations["item"])
    returns = IndexScan(relation=relations["returns"], matching_rows=5000)
    join1 = HashJoin(children=(sales, item))
    join2 = HashJoin(children=(join1, returns))
    root = Aggregate(children=(Sort(children=(join2,)),), groups=100)
    return QueryPlan(template_id=7, root=root)


def test_num_steps_counts_all_operators(plan):
    assert plan.num_steps == 7


def test_fact_tables_scanned_only_counts_sequential_fact_scans(plan):
    # `returns` is accessed by an index scan, `item` is a dimension:
    # neither belongs in the shared-scan set.
    assert plan.fact_tables_scanned() == {"sales"}


def test_relations_accessed_includes_all_scan_types(plan):
    assert plan.relations_accessed() == {"sales", "returns", "item"}


def test_records_accessed_counts_full_seq_scans(plan, relations):
    expected = (
        relations["sales"].row_count + relations["item"].row_count + 5000
    )
    assert plan.records_accessed() == pytest.approx(expected)


def test_working_set_is_max_blocking_memory(plan):
    costs = [node.cost().mem_bytes for node in plan.nodes()]
    assert plan.working_set_bytes() == max(costs)


def test_step_cardinalities_in_post_order(plan):
    names = [name for name, _ in plan.step_cardinalities()]
    assert names[0] == "SeqScan:sales"
    assert names[-1] == "HashAggregate"


def test_seq_scan_bytes_per_relation(plan, relations):
    table = plan.seq_scan_bytes()
    assert table["sales"] == relations["sales"].size_bytes
    assert "returns" not in table  # index scan, not sequential


def test_describe_renders_tree(plan):
    text = plan.describe()
    assert "SeqScan:sales" in text
    assert text.splitlines()[0].startswith("HashAggregate")


def test_plan_requires_root():
    with pytest.raises(WorkloadError):
        QueryPlan(template_id=1, root=None)
