"""Timed-arrival stream extension: both engines, all three wake modes.

The stream protocol's ``next_arrival`` hook lets a stream stay open
while momentarily idle: a finite wake time re-polls it at that simulated
time (an arrival that has not happened yet), ``inf`` re-polls it after
the next foreground completion (a deferred admission), and ``None``
closes it (the historical meaning of an exhausted stream).  These tests
drive each mode directly, on the virtual-time engine and the reference
loop.
"""

import math

import numpy as np
import pytest

from repro.config import HardwareSpec, SimulationConfig, SystemConfig
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile
from repro.units import GB, MB

ENGINES = ("reference", "virtual_time")


def _config(engine):
    return SystemConfig(
        hardware=HardwareSpec(
            cores=4,
            ram_bytes=GB(1),
            seq_bandwidth=MB(100),
            random_iops=100.0,
            random_io_variance=0.0,
        ),
        simulation=SimulationConfig(engine=engine, restart_cost=0.0),
    )


def _cpu_profile(seconds=1.0):
    return ResourceProfile(
        template_id=-1, phases=(Phase(label="cpu", cpu_seconds=seconds),)
    )


def _run(engine, streams):
    executor = ConcurrentExecutor(
        _config(engine), rng=np.random.default_rng(0)
    )
    return executor.run(streams)


class TimedStream:
    """Emits one fixed profile per scheduled arrival time."""

    def __init__(self, arrival_times, seconds=1.0, name="timed"):
        self.name = name
        self._times = sorted(arrival_times)
        self._seconds = seconds
        self._emitted = 0

    def next_profile(self, now, completed):
        if self._emitted < len(self._times) and self._times[self._emitted] <= now:
            self._emitted += 1
            return _cpu_profile(self._seconds)
        return None

    def next_arrival(self, now):
        if self._emitted < len(self._times):
            return self._times[self._emitted]
        return None


class DeferUntilCompletionStream:
    """Defers its only query (wake ``inf``) until another query finishes."""

    def __init__(self, name="deferred"):
        self.name = name
        self.polls_while_deferred = 0
        self._released = False
        self._emitted = False

    def next_profile(self, now, completed):
        if self._emitted:
            return None
        if self._released:
            self._emitted = True
            return _cpu_profile(0.5)
        self.polls_while_deferred += 1
        if self.polls_while_deferred >= 2:
            # First poll defers; the completion-triggered re-poll admits.
            self._released = True
            self._emitted = True
            return _cpu_profile(0.5)
        return None

    def next_arrival(self, now):
        return None if self._emitted else math.inf


@pytest.mark.parametrize("engine", ENGINES)
def test_future_arrival_starts_exactly_on_time(engine):
    stream = TimedStream([5.0], seconds=1.0)
    result = _run(engine, [stream])
    assert len(result.completions) == 1
    stats = result.completions[0].stats
    assert stats.start_time == pytest.approx(5.0, abs=1e-6)
    assert stats.end_time == pytest.approx(6.0, rel=1e-6)


@pytest.mark.parametrize("engine", ENGINES)
def test_idle_gap_between_arrivals_is_idled_through(engine):
    # Second arrival lands long after the first query finished: the
    # stream must stay open across the idle gap, not close on the None.
    stream = TimedStream([1.0, 10.0], seconds=1.0)
    result = _run(engine, [stream])
    assert len(result.completions) == 2
    first, second = (c.stats for c in result.completions)
    assert first.end_time == pytest.approx(2.0, rel=1e-6)
    assert second.start_time == pytest.approx(10.0, abs=1e-6)


@pytest.mark.parametrize("engine", ENGINES)
def test_back_to_back_arrivals_overlap(engine):
    # Both arrivals are due before the first completes; they contend.
    stream_a = TimedStream([1.0], seconds=4.0, name="a")
    stream_b = TimedStream([2.0], seconds=4.0, name="b")
    result = _run(engine, [stream_a, stream_b])
    by_name = {c.stream_name: c.stats for c in result.completions}
    assert by_name["a"].start_time == pytest.approx(1.0, abs=1e-6)
    assert by_name["b"].start_time == pytest.approx(2.0, abs=1e-6)
    # Overlap: b starts before a ends.
    assert by_name["b"].start_time < by_name["a"].end_time


@pytest.mark.parametrize("engine", ENGINES)
def test_inf_wake_repolls_after_completion(engine):
    runner = SingleShotStream(_cpu_profile(2.0), name="runner")
    deferred = DeferUntilCompletionStream()
    result = _run(engine, [runner, deferred])
    by_name = {c.stream_name: c.stats for c in result.completions}
    assert set(by_name) == {"runner", "deferred"}
    # The deferred query was admitted at (not before) the completion.
    assert by_name["deferred"].start_time == pytest.approx(
        by_name["runner"].end_time, rel=1e-6
    )
    assert deferred.polls_while_deferred == 2


@pytest.mark.parametrize("engine", ENGINES)
def test_streams_without_extension_close_on_none(engine):
    # The historical protocol: SingleShotStream has no next_arrival, so
    # its first None closes it and the run ends.
    result = _run(engine, [SingleShotStream(_cpu_profile(1.0), name="solo")])
    assert len(result.completions) == 1
    assert result.elapsed == pytest.approx(1.0, rel=1e-6)


@pytest.mark.parametrize("engine", ENGINES)
def test_engines_agree_on_timed_workload(engine):
    # Cross-check: identical timed workload on both engines (the
    # differential property suite does this for the base protocol).
    def build():
        return [
            TimedStream([0.5, 3.0, 3.2], seconds=2.0, name="t0"),
            TimedStream([1.0], seconds=5.0, name="t1"),
        ]

    reference = _run("reference", build())
    virtual = _run("virtual_time", build())
    assert len(reference.completions) == len(virtual.completions) == 4
    for ref, virt in zip(reference.completions, virtual.completions):
        assert ref.stream_name == virt.stream_name
        assert ref.stats.start_time == pytest.approx(
            virt.stats.start_time, rel=1e-6, abs=1e-6
        )
        assert ref.stats.end_time == pytest.approx(
            virt.stats.end_time, rel=1e-6, abs=1e-6
        )
