"""Concurrent-executor behaviour tests.

These check the physics of the substrate: fair sharing, shared-scan
coalescing, cache warm-up, memory-pressure spill, CPU non-contention,
and background (spoiler) work.
"""

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    HardwareSpec,
    SimulationConfig,
    SystemConfig,
)
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile, reader_profile
from repro.errors import SimulationError
from repro.units import GB, MB


def _config(**sim_kwargs):
    defaults = dict(restart_cost=0.0)
    defaults.update(sim_kwargs)
    return SystemConfig(
        hardware=HardwareSpec(seq_bandwidth=MB(100), random_iops=100.0),
        simulation=SimulationConfig(**defaults),
    )


def _seq_profile(nbytes, relation=None, template_id=1):
    phase = Phase(label="scan", relation=relation, seq_bytes=nbytes)
    return ResourceProfile(template_id=template_id, phases=(phase,))


def _cpu_profile(seconds, template_id=1):
    phase = Phase(label="cpu", cpu_seconds=seconds)
    return ResourceProfile(template_id=template_id, phases=(phase,))


def _run(config, profiles, **kwargs):
    streams = [
        SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)
    ]
    return ConcurrentExecutor(config).run(streams, **kwargs)


def test_single_seq_query_latency_is_bytes_over_bandwidth():
    config = _config()
    result = _run(config, [_seq_profile(MB(100))])
    assert result.latencies()[0] == pytest.approx(1.0, rel=1e-6)


def test_two_private_streams_halve_bandwidth():
    config = _config()
    result = _run(config, [_seq_profile(MB(100)), _seq_profile(MB(100))])
    for latency in result.latencies():
        assert latency == pytest.approx(2.0, rel=1e-6)


def test_shared_scans_coalesce_into_one_stream():
    config = _config()
    result = _run(
        config,
        [
            _seq_profile(MB(100), relation="sales"),
            _seq_profile(MB(100), relation="sales", template_id=2),
        ],
    )
    # Both ride one stream at full bandwidth: no slowdown at all.
    for latency in result.latencies():
        assert latency == pytest.approx(1.0, rel=1e-6)


def test_shared_scans_disabled_by_config():
    config = _config(shared_scans=False)
    result = _run(
        config,
        [
            _seq_profile(MB(100), relation="sales"),
            _seq_profile(MB(100), relation="sales", template_id=2),
        ],
    )
    for latency in result.latencies():
        assert latency == pytest.approx(2.0, rel=1e-6)


def test_cpu_work_does_not_contend_below_core_count():
    config = _config()
    result = _run(config, [_cpu_profile(3.0), _cpu_profile(3.0)])
    for latency in result.latencies():
        assert latency == pytest.approx(3.0, rel=1e-6)


def test_cpu_work_contends_past_core_count():
    config = SystemConfig(
        hardware=HardwareSpec(cores=1, seq_bandwidth=MB(100), random_iops=100),
        simulation=SimulationConfig(restart_cost=0.0),
    )
    result = _run(config, [_cpu_profile(2.0), _cpu_profile(2.0)])
    for latency in result.latencies():
        assert latency == pytest.approx(4.0, rel=1e-6)


def test_io_and_cpu_components_overlap_within_phase():
    phase = Phase(label="mixed", seq_bytes=MB(100), cpu_seconds=0.5)
    profile = ResourceProfile(template_id=1, phases=(phase,))
    result = _run(_config(), [profile])
    # max(1.0s of I/O, 0.5s CPU) = 1.0s.
    assert result.latencies()[0] == pytest.approx(1.0, rel=1e-6)


def test_phases_execute_serially():
    phases = (
        Phase(label="a", seq_bytes=MB(100)),
        Phase(label="b", cpu_seconds=0.5),
    )
    profile = ResourceProfile(template_id=1, phases=phases)
    result = _run(_config(), [profile])
    assert result.latencies()[0] == pytest.approx(1.5, rel=1e-6)


def test_io_seconds_counts_io_blocked_time_only():
    phases = (
        Phase(label="a", seq_bytes=MB(100)),
        Phase(label="b", cpu_seconds=1.0),
    )
    profile = ResourceProfile(template_id=1, phases=phases)
    result = _run(_config(), [profile])
    stats = result.completions[0].stats
    assert stats.io_seconds == pytest.approx(1.0, rel=1e-6)
    assert stats.io_fraction == pytest.approx(0.5, rel=1e-6)


def test_dimension_scans_cached_after_first_touch():
    dim_phase = Phase(
        label="dim",
        relation="item",
        seq_bytes=MB(50),
        dimension_scan=True,
    )
    first = ResourceProfile(template_id=1, phases=(dim_phase,))
    second = ResourceProfile(template_id=1, phases=(dim_phase,))

    class TwoShot:
        name = "dims"

        def next_profile(self, now, completed):
            return [first, second, None][completed]

    config = _config()
    result = ConcurrentExecutor(config).run([TwoShot()])
    lats = result.latencies()
    assert lats[0] == pytest.approx(0.5, rel=1e-6)  # cold: 50 MB / 100 MB/s
    assert lats[1] < 0.01  # warm: served from cache


def test_spill_adds_io_under_memory_pressure():
    config = _config()
    mem_phase = Phase(
        label="sort", mem_bytes=GB(6), spillable=True, cpu_seconds=0.1
    )
    profile = ResourceProfile(template_id=1, phases=(mem_phase,))
    # Alone on an 8 GB machine: fits, no spill.
    no_pressure = _run(config, [profile])
    assert no_pressure.completions[0].stats.spill_bytes == 0
    # With 6 GB pinned: massive deficit, spill I/O appears.
    fresh = ResourceProfile(template_id=1, phases=(mem_phase,))
    pressured = _run(config, [fresh], pinned_bytes=GB(6))
    stats = pressured.completions[0].stats
    assert stats.spill_bytes > 0
    assert stats.latency > no_pressure.latencies()[0]


def test_background_readers_slow_foreground():
    config = _config()
    alone = _run(config, [_seq_profile(MB(100))])
    contended = _run(
        config, [_seq_profile(MB(100))], background=[reader_profile(GB(1))]
    )
    assert contended.latencies()[0] == pytest.approx(
        2 * alone.latencies()[0], rel=1e-3
    )


def test_background_never_completes():
    config = _config()
    result = _run(
        config, [_seq_profile(MB(10))], background=[reader_profile(MB(1))]
    )
    # Only the foreground query is reported, and the run terminates even
    # though the circular reader never finishes.
    assert len(result.completions) == 1


def test_shared_scan_credit_recorded():
    config = _config()
    result = _run(
        config,
        [
            _seq_profile(MB(100), relation="sales"),
            _seq_profile(MB(100), relation="sales", template_id=2),
        ],
    )
    for item in result.completions:
        assert item.stats.shared_seq_bytes == pytest.approx(MB(100), rel=1e-6)


def test_nothing_to_run_is_an_error():
    with pytest.raises(SimulationError):
        ConcurrentExecutor(_config()).run([])


def test_event_budget_guard():
    config = SystemConfig(
        hardware=HardwareSpec(seq_bandwidth=MB(100), random_iops=100),
        simulation=SimulationConfig(max_events=3, restart_cost=0.0),
    )
    phases = tuple(
        Phase(label=f"p{i}", cpu_seconds=0.1) for i in range(10)
    )
    profile = ResourceProfile(template_id=1, phases=phases)
    with pytest.raises(SimulationError):
        _run(config, [profile])


def test_completion_order_is_chronological():
    config = _config()
    result = _run(config, [_seq_profile(MB(50)), _seq_profile(MB(200))])
    ends = [c.stats.end_time for c in result.completions]
    assert ends == sorted(ends)


def test_random_io_rate():
    config = _config()
    phase = Phase(label="idx", rand_ops=50)
    profile = ResourceProfile(template_id=1, phases=(phase,))
    result = _run(config, [profile])
    # 50 ops at 100 IOPS, alone (no variance in isolation).
    assert result.latencies()[0] == pytest.approx(0.5, rel=1e-6)


def test_scan_share_window_rejects_late_joiners():
    """A scan arriving after the group passed the window runs privately."""
    config = _config(scan_share_window=0.3)
    first = _seq_profile(MB(100), relation="sales")
    late = ResourceProfile(
        template_id=2,
        phases=(
            Phase(label="delay", cpu_seconds=0.5),  # group at 50% when we join
            Phase(label="scan", relation="sales", seq_bytes=MB(100)),
        ),
    )
    result = _run(config, [first, late])
    by_template = {
        c.stats.template_id: c.stats.latency for c in result.completions
    }
    # Both pay for contention instead of riding one stream.
    assert by_template[1] > 1.2
    assert by_template[2] > 1.7


def test_scan_share_window_accepts_early_joiners():
    config = _config(scan_share_window=0.3)
    first = _seq_profile(MB(100), relation="sales")
    early = ResourceProfile(
        template_id=2,
        phases=(
            Phase(label="delay", cpu_seconds=0.1),  # group at 10%
            Phase(label="scan", relation="sales", seq_bytes=MB(100)),
        ),
    )
    result = _run(config, [first, early])
    by_template = {
        c.stats.template_id: c.stats.latency for c in result.completions
    }
    assert by_template[1] == pytest.approx(1.0, rel=1e-6)
    assert by_template[2] == pytest.approx(1.1, rel=1e-6)


def test_sequential_runs_share_no_state():
    """Regression: run() once leaked its active set as `_active_view`
    instance state; a second run (or a concurrent one) could observe a
    stale view.  The active set is now run-local."""
    config = _config(scan_share_window=0.3)
    executor = ConcurrentExecutor(config)
    profiles = [
        _seq_profile(MB(100), relation="sales", template_id=1),
        _seq_profile(MB(100), relation="sales", template_id=2),
    ]
    first = executor.run(
        [SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)]
    )
    second = executor.run(
        [SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)]
    )
    assert first.latencies() == second.latencies()
    assert first.events == second.events
    assert not hasattr(executor, "_active_view")


def test_run_matches_fresh_executor_after_prior_run():
    """A reused executor behaves exactly like a fresh one (modulo RNG,
    which these profiles never touch)."""
    config = _config()
    reused = ConcurrentExecutor(config)
    reused.run([SingleShotStream(_seq_profile(MB(50)), name="warm")])
    again = reused.run([SingleShotStream(_seq_profile(MB(100)), name="q")])
    fresh = ConcurrentExecutor(config).run(
        [SingleShotStream(_seq_profile(MB(100)), name="q")]
    )
    assert again.latencies() == fresh.latencies()
