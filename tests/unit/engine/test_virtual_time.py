"""Unit tests for the virtual-time engine's deadline machinery.

The differential suite (tests/property/test_engine_differential.py)
holds the engine to the reference loop on randomized workloads; these
tests pin down the deadline-structure behaviours individually: spill and
privacy flips at phase entry, background-profile phase cycling,
``time_epsilon`` clamping, simultaneous drains, and the engine knob.
"""

import numpy as np
import pytest

from repro.config import HardwareSpec, SimulationConfig, SystemConfig
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile, reader_profile
from repro.errors import ConfigurationError
from repro.units import GB, MB


def _config(engine="virtual_time", **sim_kwargs):
    sim_kwargs.setdefault("restart_cost", 0.0)
    return SystemConfig(
        hardware=HardwareSpec(
            cores=4,
            ram_bytes=GB(1),
            seq_bandwidth=MB(100),
            random_iops=100.0,
            random_io_variance=0.0,
        ),
        simulation=SimulationConfig(engine=engine, **sim_kwargs),
    )


def _run(config, profiles, background=(), pinned=0.0, seed=0):
    streams = [
        SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)
    ]
    executor = ConcurrentExecutor(config, rng=np.random.default_rng(seed))
    return executor.run(streams, background=background, pinned_bytes=pinned)


def _both(profiles, background=(), pinned=0.0, seed=0, **sim_kwargs):
    return tuple(
        _run(
            _config(engine, **sim_kwargs),
            profiles,
            background=background,
            pinned=pinned,
            seed=seed,
        )
        for engine in ("reference", "virtual_time")
    )


class TestEngineKnob:
    def test_default_engine_is_virtual_time(self):
        assert SimulationConfig().engine == "virtual_time"

    def test_reference_engine_selectable(self):
        assert SimulationConfig(engine="reference").engine == "reference"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            SimulationConfig(engine="warp-speed")


class TestDeadlineThresholds:
    def test_spill_inflates_deadline_and_flips_privacy(self):
        """A spilling phase gets extra *private* sequential work, so its
        deadline must be computed from the inflated demand and its
        stream must not coalesce with same-table scans."""
        spiller = ResourceProfile(
            template_id=1,
            phases=(
                Phase(
                    label="sort",
                    relation="facts",
                    seq_bytes=MB(50),
                    mem_bytes=GB(2),  # exceeds RAM: must spill
                    spillable=True,
                ),
            ),
        )
        scanner = ResourceProfile(
            template_id=2,
            phases=(Phase(label="scan", relation="facts", seq_bytes=MB(50)),),
        )
        ref, vt = _both([spiller, scanner])
        spill_stats = vt.by_stream()["s0"][0]
        assert spill_stats.spill_bytes > 0
        # Private spill stream: no shared-scan credit despite the shared
        # relation being scanned concurrently.
        assert spill_stats.shared_seq_bytes == 0.0
        assert vt.latencies() == pytest.approx(ref.latencies(), rel=1e-9)

    def test_late_joiner_outside_window_runs_privately(self):
        """Privacy decided at phase entry must hold for the whole phase:
        the late scan keeps its own stream (no shared credit)."""
        early = ResourceProfile(
            template_id=1,
            phases=(Phase(label="scan", relation="facts", seq_bytes=MB(100)),),
        )
        late = ResourceProfile(
            template_id=2,
            phases=(
                Phase(label="warm", cpu_seconds=0.9),  # join at ~90% progress
                Phase(label="scan", relation="facts", seq_bytes=MB(100)),
            ),
        )
        ref, vt = _both([early, late], scan_share_window=0.3)
        late_stats = vt.by_stream()["s1"][0]
        assert late_stats.shared_seq_bytes == 0.0
        assert vt.latencies() == pytest.approx(ref.latencies(), rel=1e-9)

    def test_shared_scan_group_credits_members(self):
        profiles = [
            ResourceProfile(
                template_id=i,
                phases=(
                    Phase(label="scan", relation="facts", seq_bytes=MB(80)),
                ),
            )
            for i in (1, 2)
        ]
        ref, vt = _both(profiles)
        for stream in ("s0", "s1"):
            stats = vt.by_stream()[stream][0]
            assert stats.shared_seq_bytes > 0
            assert stats.shared_seq_bytes == pytest.approx(
                ref.by_stream()[stream][0].shared_seq_bytes, rel=1e-9
            )

    def test_cache_served_phase_enters_with_zero_deadline(self):
        """A cache-served dimension scan compiles to zero remaining work:
        the phase must complete without registering a disk stream."""
        dim = Phase(
            label="dim",
            relation="dim_date",
            seq_bytes=MB(30),
            dimension_scan=True,
        )
        first = ResourceProfile(template_id=1, phases=(dim,))
        second = ResourceProfile(
            template_id=2,
            phases=(Phase(label="warm", cpu_seconds=1.0), dim),
        )
        ref, vt = _both([first, second])
        warm_stats = vt.by_stream()["s1"][0]
        assert warm_stats.cache_served_bytes == pytest.approx(MB(30))
        assert warm_stats.seq_bytes_read == 0.0
        assert vt.latencies() == pytest.approx(ref.latencies(), rel=1e-9)


class TestBackgroundCycling:
    def test_background_reader_cycles_until_foreground_finishes(self):
        """The spoiler reader's single phase re-enters the deadline heaps
        every cycle; the run must end exactly when the foreground ends."""
        fg = ResourceProfile(
            template_id=1,
            phases=(Phase(label="scan", relation="facts", seq_bytes=MB(150)),),
        )
        reader = reader_profile(MB(10))  # many short cycles
        ref, vt = _both([fg], background=[reader])
        assert len(vt.completions) == 1  # background never completes
        assert vt.elapsed == pytest.approx(ref.elapsed, rel=1e-9)
        # Two streams share the disk the whole time: 2x the isolated time.
        isolated = MB(150) / MB(100)
        assert vt.latencies()[0] == pytest.approx(2 * isolated, rel=1e-6)

    def test_background_cycle_count_does_not_change_physics(self):
        fg = ResourceProfile(
            template_id=1,
            phases=(Phase(label="scan", relation="facts", seq_bytes=MB(90)),),
        )
        coarse = _run(_config(), [fg], background=[reader_profile(MB(500))])
        fine = _run(_config(), [fg], background=[reader_profile(MB(5))])
        assert coarse.latencies()[0] == pytest.approx(
            fine.latencies()[0], rel=1e-9
        )
        assert fine.events > coarse.events  # cycling costs events, not time


class TestTimeEpsilonAndTies:
    def test_simultaneous_drains_settle_in_one_event(self):
        """Equal-work components hit identical deadlines; the tolerance
        pop must drain them together instead of stalling on epsilon
        steps."""
        profiles = [
            ResourceProfile(
                template_id=i,
                phases=(
                    Phase(label="scan", relation=None, seq_bytes=MB(60)),
                ),
            )
            for i in (1, 2, 3)
        ]
        ref, vt = _both(profiles)
        assert vt.latencies() == pytest.approx(ref.latencies(), rel=1e-9)
        # 3 private streams at fair share: each takes 3x isolated time.
        assert vt.latencies()[0] == pytest.approx(
            3 * MB(60) / MB(100), rel=1e-6
        )

    def test_tiny_demands_clamped_to_time_epsilon(self):
        """Demands far below the drain tolerance cannot produce negative
        or zero time steps."""
        profile = ResourceProfile(
            template_id=1,
            phases=(
                Phase(label="tiny", seq_bytes=1e-6, cpu_seconds=1e-12),
                Phase(label="real", cpu_seconds=0.5),
            ),
        )
        result = _run(_config(time_epsilon=1e-9), [profile])
        assert result.elapsed >= 0.5
        assert result.latencies()[0] == pytest.approx(0.5, rel=1e-3)

    def test_zero_work_phase_cascade_completes(self):
        """Consecutive cache-served phases finish without time passing;
        the finished buffer must drain them in bounded events."""
        dim = Phase(
            label="dim",
            relation="dim_date",
            seq_bytes=MB(10),
            dimension_scan=True,
        )
        warm = ResourceProfile(template_id=1, phases=(dim,))
        cascade = ResourceProfile(
            template_id=2,
            phases=(
                Phase(label="warm", cpu_seconds=0.2),
                dim,
                dim,
                dim,
                Phase(label="tail", cpu_seconds=0.1),
            ),
        )
        ref, vt = _both([warm, cascade])
        vt_stats = vt.by_stream()["s1"][0]
        assert vt_stats.cache_served_bytes == pytest.approx(3 * MB(10))
        assert vt.latencies() == pytest.approx(ref.latencies(), rel=1e-9)


class TestIoSecondsAccounting:
    def test_io_seconds_covers_io_phase_span(self):
        """io_seconds is closed out when a phase's last I/O component
        drains, not per event — the totals must still match wall time
        spent with I/O in flight."""
        profile = ResourceProfile(
            template_id=1,
            phases=(
                Phase(label="io", relation="facts", seq_bytes=MB(100)),
                Phase(label="cpu", cpu_seconds=2.0),
            ),
        )
        result = _run(_config(), [profile])
        stats = result.by_stream()["s0"][0]
        assert stats.io_seconds == pytest.approx(MB(100) / MB(100), rel=1e-6)
        assert stats.latency == pytest.approx(1.0 + 2.0, rel=1e-6)

    def test_overlapping_io_and_cpu_components(self):
        """CPU draining before the phase's I/O must not close the
        io_seconds window early."""
        profile = ResourceProfile(
            template_id=1,
            phases=(
                Phase(
                    label="mixed",
                    relation="facts",
                    seq_bytes=MB(100),
                    rand_ops=10.0,
                    cpu_seconds=0.1,
                ),
            ),
        )
        ref, vt = _both([profile])
        vt_stats = vt.by_stream()["s0"][0]
        ref_stats = ref.by_stream()["s0"][0]
        assert vt_stats.io_seconds == pytest.approx(
            ref_stats.io_seconds, rel=1e-9
        )
        # Phase ends when the slowest component (the two I/O streams
        # share the disk) drains; I/O is in flight the whole time.
        assert vt_stats.io_seconds == pytest.approx(vt_stats.latency, rel=1e-6)
