"""Plan-to-profile compilation tests."""

import pytest

from repro.config import DEFAULT_CONFIG, SimulationConfig, SystemConfig
from repro.engine.operators import Aggregate, HashJoin, SeqScan, Sort
from repro.engine.plans import QueryPlan
from repro.engine.profile import (
    Phase,
    ResourceProfile,
    compile_plan,
    reader_profile,
    scan_profile,
)
from repro.engine.relation import Relation, RelationKind
from repro.errors import WorkloadError
from repro.units import GB, MB


@pytest.fixture()
def fact():
    return Relation("sales", GB(4), 40_000_000, RelationKind.FACT)


@pytest.fixture()
def dim():
    return Relation("item", MB(50), 200_000, RelationKind.DIMENSION)


def _plan(fact, dim):
    scan = SeqScan(relation=fact, selectivity=0.2)
    join = HashJoin(children=(scan, SeqScan(relation=dim)))
    return QueryPlan(template_id=1, root=Sort(children=(join,)))


def test_compile_preserves_total_io(fact, dim):
    profile = compile_plan(_plan(fact, dim), DEFAULT_CONFIG)
    assert profile.total_seq_bytes == pytest.approx(
        fact.size_bytes + dim.size_bytes
    )


def test_compile_preserves_total_cpu(fact, dim):
    plan = _plan(fact, dim)
    profile = compile_plan(plan, DEFAULT_CONFIG)
    total_plan_cpu = sum(node.cost().cpu_seconds for node in plan.nodes())
    assert profile.total_cpu_seconds == pytest.approx(total_plan_cpu)


def test_scan_phase_marks_relation_for_sharing(fact, dim):
    profile = compile_plan(_plan(fact, dim), DEFAULT_CONFIG)
    fact_phases = [p for p in profile.phases if p.relation == "sales"]
    assert len(fact_phases) == 1
    assert not fact_phases[0].dimension_scan


def test_dimension_scan_flagged(fact, dim):
    profile = compile_plan(_plan(fact, dim), DEFAULT_CONFIG)
    dim_phases = [p for p in profile.phases if p.relation == "item"]
    assert len(dim_phases) == 1
    assert dim_phases[0].dimension_scan


def test_blocking_operators_produce_spillable_phases(fact, dim):
    profile = compile_plan(_plan(fact, dim), DEFAULT_CONFIG)
    spillable = [p for p in profile.phases if p.spillable]
    # Hash join build + sort.
    assert len(spillable) == 2
    assert all(p.mem_bytes > 0 for p in spillable)
    assert all(p.relation is None for p in spillable)


def test_zero_overlap_splits_all_cpu_serially(fact, dim):
    config = SystemConfig(
        simulation=SimulationConfig(cpu_io_overlap=0.0)
    )
    profile = compile_plan(_plan(fact, dim), config)
    io_phases = [p for p in profile.phases if p.seq_bytes > 0]
    assert all(p.cpu_seconds == 0 for p in io_phases)


def test_full_overlap_attaches_all_streaming_cpu(fact, dim):
    config = SystemConfig(simulation=SimulationConfig(cpu_io_overlap=1.0))
    plan = QueryPlan(template_id=1, root=SeqScan(relation=fact))
    profile = compile_plan(plan, config)
    assert len(profile.phases) == 1
    assert profile.phases[0].cpu_seconds > 0


def test_working_set_is_peak_phase_memory(fact, dim):
    profile = compile_plan(_plan(fact, dim), DEFAULT_CONFIG)
    assert profile.working_set_bytes == max(p.mem_bytes for p in profile.phases)


def test_with_startup_prepends_cpu_phase(fact, dim):
    profile = compile_plan(_plan(fact, dim), DEFAULT_CONFIG)
    with_cost = profile.with_startup(2.5)
    assert with_cost.phases[0].label == "Startup"
    assert with_cost.phases[0].cpu_seconds == 2.5
    assert len(with_cost.phases) == len(profile.phases) + 1
    assert with_cost.instance_id != profile.instance_id


def test_with_startup_zero_is_identity(fact, dim):
    profile = compile_plan(_plan(fact, dim), DEFAULT_CONFIG)
    assert profile.with_startup(0.0) is profile


def test_scan_profile_reads_exactly_the_table(fact):
    profile = scan_profile(fact)
    assert profile.total_seq_bytes == fact.size_bytes
    assert profile.total_cpu_seconds == 0


def test_reader_profile_is_background():
    profile = reader_profile(GB(4))
    assert profile.background
    assert profile.total_seq_bytes == GB(4)


def test_reader_profile_rejects_nonpositive():
    with pytest.raises(WorkloadError):
        reader_profile(0)


def test_phase_rejects_negative_demand():
    with pytest.raises(WorkloadError):
        Phase(label="bad", seq_bytes=-1)


def test_profile_instance_ids_are_unique(fact):
    a = scan_profile(fact)
    b = scan_profile(fact)
    assert a.instance_id != b.instance_id


def test_foreground_profile_requires_phases():
    with pytest.raises(WorkloadError):
        ResourceProfile(template_id=1, phases=())
