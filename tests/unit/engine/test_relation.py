"""Relation model tests."""

import pytest

from repro.engine.relation import Relation, RelationKind
from repro.errors import WorkloadError
from repro.units import GB, MB


def _fact(size=GB(10), rows=1_000_000):
    return Relation("f", size, rows, RelationKind.FACT)


def test_is_fact_flag():
    assert _fact().is_fact
    dim = Relation("d", MB(10), 1000, RelationKind.DIMENSION)
    assert not dim.is_fact


def test_row_width():
    rel = _fact(size=1000.0, rows=10)
    assert rel.row_width == 100.0


def test_scan_seconds():
    rel = _fact(size=GB(1))
    assert rel.scan_seconds(GB(1)) == pytest.approx(1.0)
    assert rel.scan_seconds(MB(512)) == pytest.approx(2.0)


def test_scan_seconds_rejects_bad_bandwidth():
    with pytest.raises(WorkloadError):
        _fact().scan_seconds(0)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(name="", size_bytes=1.0, row_count=1, kind=RelationKind.FACT),
        dict(name="x", size_bytes=0.0, row_count=1, kind=RelationKind.FACT),
        dict(name="x", size_bytes=1.0, row_count=0, kind=RelationKind.FACT),
    ],
)
def test_invalid_relations_rejected(kwargs):
    with pytest.raises(WorkloadError):
        Relation(**kwargs)
