"""Memory ledger tests."""

import pytest

from repro.engine.memory import MemoryLedger
from repro.errors import SimulationError
from repro.units import GB, MB


@pytest.fixture()
def ledger():
    return MemoryLedger(total_bytes=GB(8), os_reserve_bytes=MB(512))


def test_available_excludes_reserve(ledger):
    assert ledger.available_for("q") == GB(8) - MB(512)


def test_pin_reduces_availability(ledger):
    ledger.pin("spoiler", GB(6))
    assert ledger.available_for("q") == GB(8) - MB(512) - GB(6)


def test_pin_replaces_prior_pin(ledger):
    ledger.pin("spoiler", GB(2))
    ledger.pin("spoiler", GB(4))
    assert ledger.pinned_bytes == GB(4)


def test_unpin_restores(ledger):
    ledger.pin("spoiler", GB(4))
    ledger.unpin("spoiler")
    assert ledger.available_for("q") == GB(8) - MB(512)


def test_own_hold_does_not_reduce_own_availability(ledger):
    ledger.hold("q", GB(2))
    assert ledger.available_for("q") == GB(8) - MB(512)


def test_other_holds_reduce_availability(ledger):
    ledger.hold("other", GB(3))
    assert ledger.available_for("q") == GB(8) - MB(512) - GB(3)


def test_availability_floored_at_min_grant(ledger):
    ledger.pin("spoiler", GB(16))
    assert ledger.available_for("q") == ledger.min_grant_bytes


def test_spill_bytes_zero_when_fits(ledger):
    assert ledger.spill_bytes("q", GB(1)) == 0.0


def test_spill_bytes_is_overflow(ledger):
    ledger.pin("spoiler", GB(6))
    available = ledger.available_for("q")
    assert ledger.spill_bytes("q", available + MB(100)) == pytest.approx(
        MB(100)
    )


def test_hold_zero_releases(ledger):
    ledger.hold("q", GB(1))
    ledger.hold("q", 0)
    assert ledger.held_bytes == 0


def test_release_is_idempotent(ledger):
    ledger.release("never-held")
    ledger.hold("q", GB(1))
    ledger.release("q")
    ledger.release("q")
    assert ledger.held_bytes == 0


def test_negative_amounts_rejected(ledger):
    with pytest.raises(SimulationError):
        ledger.pin("x", -1)
    with pytest.raises(SimulationError):
        ledger.hold("x", -1)


def test_snapshot_reports_state(ledger):
    ledger.pin("spoiler", GB(2))
    ledger.hold("q", GB(1))
    snap = ledger.snapshot()
    assert snap["pinned"] == GB(2)
    assert snap["held"] == GB(1)


def test_invalid_construction():
    with pytest.raises(SimulationError):
        MemoryLedger(total_bytes=0)
