"""Executor observability: metric correctness and the off-by-default path."""

import pytest

from repro.config import (
    HardwareSpec,
    ObservabilityConfig,
    SimulationConfig,
    SystemConfig,
)
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile
from repro.obs.metrics import Registry
from repro.units import MB


def _config(phase_timings=False, **sim_kwargs):
    defaults = dict(restart_cost=0.0)
    defaults.update(sim_kwargs)
    return SystemConfig(
        hardware=HardwareSpec(seq_bandwidth=MB(100), random_iops=100.0),
        simulation=SimulationConfig(**defaults),
        observability=ObservabilityConfig(engine_phase_timings=phase_timings),
    )


def _seq_profile(nbytes, template_id=1, label="scan"):
    return ResourceProfile(
        template_id=template_id,
        phases=(Phase(label=label, seq_bytes=nbytes),),
    )


def _run(executor, profiles):
    streams = [
        SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)
    ]
    return executor.run(streams)


def test_metrics_default_off():
    ex = ConcurrentExecutor(_config())
    _run(ex, [_seq_profile(MB(10))])
    assert ex.metrics is None


def test_config_flag_creates_a_private_registry():
    config = SystemConfig(
        hardware=HardwareSpec(seq_bandwidth=MB(100), random_iops=100.0),
        simulation=SimulationConfig(restart_cost=0.0),
        observability=ObservabilityConfig(engine_metrics=True),
    )
    ex = ConcurrentExecutor(config)
    assert isinstance(ex.metrics, Registry)


def test_run_totals_match_run_result():
    reg = Registry()
    ex = ConcurrentExecutor(_config(), metrics=reg)
    result = _run(ex, [_seq_profile(MB(100)), _seq_profile(MB(50))])

    assert reg.get("engine_runs_total").value == 1
    assert reg.get("engine_events_total").value == result.events
    assert reg.get("engine_completions_total").value == 2
    assert reg.get("engine_simulated_seconds_total").value == pytest.approx(
        result.elapsed
    )
    seq_read = sum(c.stats.seq_bytes_read for c in result.completions)
    assert reg.get("engine_service_total").labels("seq").value == pytest.approx(
        seq_read
    )


def test_totals_accumulate_across_runs():
    reg = Registry()
    ex = ConcurrentExecutor(_config(), metrics=reg)
    _run(ex, [_seq_profile(MB(10))])
    _run(ex, [_seq_profile(MB(10))])
    assert reg.get("engine_runs_total").value == 2
    assert reg.get("engine_completions_total").value == 2


def test_virtual_time_reports_integral_and_heap_peaks():
    reg = Registry()
    ex = ConcurrentExecutor(_config(engine="virtual_time"), metrics=reg)
    _run(ex, [_seq_profile(MB(100)), _seq_profile(MB(100))])

    # Two concurrent scans: the seq heap held both at once.
    assert reg.get("engine_vt_heap_peak_entries").labels("seq").value == 2
    # The cumulative-service integral is bytes of sequential service
    # delivered per contender; both scans finish, so it ends at the
    # per-stream total.
    assert reg.get("engine_vt_service_integral").labels(
        "seq"
    ).value == pytest.approx(MB(100))

    # Per-phase drain timings are the debug tier, not the default one.
    assert reg.get("engine_phase_drain_seconds").children() == []


def test_phase_timings_tier_records_drain_histogram():
    reg = Registry()
    ex = ConcurrentExecutor(
        _config(engine="virtual_time", phase_timings=True), metrics=reg
    )
    _run(ex, [_seq_profile(MB(100)), _seq_profile(MB(100))])

    drains = dict(reg.get("engine_phase_drain_seconds").children())
    snap = drains[("scan",)].snapshot()
    assert snap.count == 2
    # Fair sharing: each 100 MB scan drains in 2 s at 100 MB/s shared.
    assert snap.sum == pytest.approx(4.0, rel=1e-6)
    # The cheap tier is unaffected by the opt-in.
    assert reg.get("engine_vt_heap_peak_entries").labels("seq").value == 2


def test_reference_engine_records_run_totals_only():
    reg = Registry()
    ex = ConcurrentExecutor(_config(engine="reference"), metrics=reg)
    _run(ex, [_seq_profile(MB(100))])
    assert reg.get("engine_runs_total").value == 1
    assert reg.get("engine_completions_total").value == 1
    # The reference loop does not populate virtual-time internals.
    assert reg.get("engine_phase_drain_seconds").children() == []


def test_shared_registry_across_executors_merges():
    reg = Registry()
    for _ in range(3):
        ex = ConcurrentExecutor(_config(), metrics=reg)
        _run(ex, [_seq_profile(MB(10))])
    assert reg.get("engine_runs_total").value == 3
