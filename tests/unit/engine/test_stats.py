"""QueryStats tests."""

import pytest

from repro.engine.stats import QueryStats
from repro.errors import SimulationError


def _stats(**kwargs):
    base = dict(template_id=1, instance_id=7, start_time=10.0)
    base.update(kwargs)
    return QueryStats(**base)


def test_latency_requires_completion():
    stats = _stats()
    assert not stats.finished
    with pytest.raises(SimulationError):
        _ = stats.latency


def test_latency_is_elapsed():
    stats = _stats(end_time=25.0)
    assert stats.finished
    assert stats.latency == pytest.approx(15.0)


def test_io_fraction():
    stats = _stats(end_time=20.0, io_seconds=5.0)
    assert stats.io_fraction == pytest.approx(0.5)


def test_io_fraction_clamped_to_one():
    stats = _stats(end_time=11.0, io_seconds=5.0)
    assert stats.io_fraction == 1.0


def test_io_fraction_zero_latency():
    stats = _stats(end_time=10.0, io_seconds=0.0)
    assert stats.io_fraction == 0.0
