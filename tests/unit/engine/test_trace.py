"""Execution-trace telemetry tests."""

import pytest

from repro.config import HardwareSpec, SimulationConfig, SystemConfig
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile
from repro.engine.trace import IntervalSample, UtilizationTrace
from repro.units import MB


def _config():
    return SystemConfig(
        hardware=HardwareSpec(seq_bandwidth=MB(100), random_iops=100.0),
        simulation=SimulationConfig(restart_cost=0.0),
    )


def _traced_run(profiles):
    trace = UtilizationTrace()
    executor = ConcurrentExecutor(_config(), tracer=trace)
    streams = [SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)]
    result = executor.run(streams)
    return trace, result


def _seq(mb, relation=None, tid=1):
    phase = Phase(label="scan", relation=relation, seq_bytes=MB(mb))
    return ResourceProfile(template_id=tid, phases=(phase,))


def test_trace_covers_whole_run():
    trace, result = _traced_run([_seq(100)])
    assert trace.elapsed == pytest.approx(result.elapsed, rel=1e-9)


def test_intervals_are_contiguous():
    trace, _ = _traced_run([_seq(100), _seq(50, tid=2)])
    for a, b in zip(trace.samples, trace.samples[1:]):
        assert a.end == pytest.approx(b.start)


def test_seq_bytes_total_conserved():
    trace, _ = _traced_run([_seq(100), _seq(70, tid=2)])
    assert trace.seq_bytes_total() == pytest.approx(MB(170), rel=1e-6)


def test_mean_concurrency_between_one_and_n():
    trace, _ = _traced_run([_seq(100), _seq(50, tid=2)])
    assert 1.0 <= trace.mean_concurrency() <= 2.0


def test_disk_busy_for_pure_io_run():
    trace, _ = _traced_run([_seq(100)])
    assert trace.disk_busy_fraction() == pytest.approx(1.0)


def test_cpu_only_run_has_no_streams():
    phase = Phase(label="think", cpu_seconds=1.0)
    profile = ResourceProfile(template_id=1, phases=(phase,))
    trace, _ = _traced_run([profile])
    assert trace.disk_busy_fraction() == 0.0
    assert trace.mean_streams() == 0.0


def test_phase_occupancy_accounts_time():
    trace, result = _traced_run([_seq(100)])
    occupancy = trace.phase_occupancy()
    assert occupancy["scan"] == pytest.approx(result.elapsed, rel=1e-9)


def test_shared_scans_counted_as_one_stream():
    trace, _ = _traced_run(
        [_seq(100, relation="sales"), _seq(100, relation="sales", tid=2)]
    )
    assert trace.mean_streams() == pytest.approx(1.0)


def test_timeline_resamples():
    trace, _ = _traced_run([_seq(100), _seq(50, tid=2)])
    points = trace.timeline(resolution=0.1)
    assert points
    assert all(count >= 1 for _, count in points)
    with pytest.raises(ValueError):
        trace.timeline(0)


def test_empty_trace_is_safe():
    trace = UtilizationTrace()
    assert trace.elapsed == 0.0
    assert trace.mean_concurrency() == 0.0
    assert trace.disk_busy_fraction() == 0.0
    assert trace.timeline(1.0) == []
