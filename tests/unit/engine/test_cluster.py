"""Cluster substrate tests."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.engine.cluster import (
    ClusterSpec,
    assembly_seconds,
    host_catalog,
    partition_schema,
    run_distributed_steady_state,
)
from repro.errors import ConfigurationError, WorkloadError
from repro.sampling.steady_state import SteadyStateConfig
from repro.units import MB


@pytest.fixture()
def spec():
    return ClusterSpec(num_hosts=4, host_config=DEFAULT_CONFIG)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        ClusterSpec(num_hosts=0, host_config=DEFAULT_CONFIG)
    with pytest.raises(ConfigurationError):
        ClusterSpec(
            num_hosts=2, host_config=DEFAULT_CONFIG, network_bandwidth=0
        )


def test_partition_divides_facts_replicates_dims(schema):
    part = partition_schema(schema, 4)
    assert part["store_sales"].size_bytes == pytest.approx(
        schema["store_sales"].size_bytes / 4
    )
    assert part["item"].size_bytes == schema["item"].size_bytes
    assert part["item"].row_count == schema["item"].row_count


def test_partition_of_one_host_is_identity(schema):
    part = partition_schema(schema, 1)
    assert part["store_sales"].size_bytes == schema["store_sales"].size_bytes


def test_partition_validation(schema):
    with pytest.raises(WorkloadError):
        partition_schema(schema, 0)


def test_host_catalog_keeps_templates(catalog, spec):
    host = host_catalog(catalog, spec)
    assert host.template_ids == catalog.template_ids
    # A host's isolated run is much faster than the global one.
    assert host.run_isolated(26).latency < 0.5 * catalog.run_isolated(26).latency


def test_assembly_includes_transfer_and_coordination(catalog, spec):
    host = host_catalog(catalog, spec)
    secs = assembly_seconds(host, 26, spec)
    assert secs >= spec.coordination_overhead
    single = ClusterSpec(num_hosts=1, host_config=DEFAULT_CONFIG)
    assert assembly_seconds(host, 26, single) == pytest.approx(
        single.coordination_overhead
    )


def test_assembly_grows_with_result_size(catalog, spec):
    host = host_catalog(catalog, spec)
    # T46 returns ~1.5M rows, T61 a single row.
    assert assembly_seconds(host, 46, spec) > assembly_seconds(host, 61, spec)


def test_distributed_run_latency_is_straggler_plus_assembly(catalog):
    spec = ClusterSpec(num_hosts=2, host_config=DEFAULT_CONFIG)
    cfg = SteadyStateConfig(samples_per_stream=2)
    run = run_distributed_steady_state(
        catalog, (26, 62), spec, steady_config=cfg
    )
    for template in (26, 62):
        hosts = run.per_host_latency[template]
        assert len(hosts) == 2
        assert run.latency(template) == pytest.approx(
            max(hosts) + run.assembly[template]
        )


def test_distributed_run_unknown_template(catalog):
    spec = ClusterSpec(num_hosts=2, host_config=DEFAULT_CONFIG)
    cfg = SteadyStateConfig(samples_per_stream=1, warmup=0, cooldown=0)
    run = run_distributed_steady_state(
        catalog, (26, 62), spec, steady_config=cfg
    )
    with pytest.raises(WorkloadError):
        run.latency(99)


def test_distributed_run_requires_mix(catalog):
    spec = ClusterSpec(num_hosts=2, host_config=DEFAULT_CONFIG)
    with pytest.raises(WorkloadError):
        run_distributed_steady_state(catalog, (), spec)
