"""Batched lockstep engine unit tests.

The batched engine's contract is stronger than the differential
tolerance: a batch of one must be *bitwise* identical to the scalar
virtual-time engine, and results must be independent of batch
composition.  These tests pin that contract on the edge cases the
lockstep mask must survive — mixed spill/privacy columns, whole batches
finishing on the same event, and the empty-run guard.

Profiles are shared between the batched and scalar runs (instance ids
are globally unique, so rebuilding one would already break equality);
only the RNG is re-seeded per run.
"""

import numpy as np
import pytest

from repro.config import HardwareSpec, SimulationConfig, SystemConfig
from repro.engine.batched import RunSpec, batched_campaign_ok, run_batch
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile, reader_profile
from repro.errors import SimulationError
from repro.units import GB, MB


def _config(engine: str, ram_gb: float = 0.5) -> SystemConfig:
    return SystemConfig(
        hardware=HardwareSpec(
            cores=4,
            ram_bytes=GB(ram_gb),
            seq_bandwidth=MB(100),
            random_iops=120.0,
            random_io_variance=0.35,
        ),
        simulation=SimulationConfig(engine=engine, restart_cost=0.0),
    )


def _rich_profile(template_id: int, mem_mb: float = 0.0) -> ResourceProfile:
    """Exercises shared scans, random I/O, CPU, and (optionally) a
    spillable working set in one profile."""
    return ResourceProfile(
        template_id=template_id,
        phases=(
            Phase(
                label="dim",
                relation="dim_date",
                seq_bytes=MB(20),
                dimension_scan=True,
            ),
            Phase(
                label="join",
                relation="facts",
                seq_bytes=MB(80),
                rand_ops=12.0,
                cpu_seconds=0.4,
                mem_bytes=MB(mem_mb),
                spillable=mem_mb > 0,
            ),
        ),
    )


def _spec(profile, seed: int, background=(), pinned: float = 0.0) -> RunSpec:
    return RunSpec(
        streams=[SingleShotStream(profile, name="primary")],
        background=background,
        pinned_bytes=pinned,
        rng=np.random.default_rng(seed),
    )


def _scalar_run(profile, seed: int, background=(), pinned: float = 0.0):
    executor = ConcurrentExecutor(
        _config("virtual_time"), rng=np.random.default_rng(seed)
    )
    return executor.run(
        [SingleShotStream(profile, name="primary")],
        background=background,
        pinned_bytes=pinned,
    )


def _assert_bitwise(a, b):
    assert a.elapsed == b.elapsed
    assert len(a.completions) == len(b.completions)
    for x, y in zip(a.completions, b.completions):
        assert x.stream_name == y.stream_name
        assert x.stats == y.stats


def test_batch_of_one_equals_scalar_exactly():
    profile = _rich_profile(1, mem_mb=300)
    reader = reader_profile(MB(150))
    [batched] = run_batch(
        _config("batched"),
        [_spec(profile, seed=7, background=[reader], pinned=MB(200))],
    )
    scalar = _scalar_run(
        profile, seed=7, background=[reader], pinned=MB(200)
    )
    _assert_bitwise(batched, scalar)


def test_all_runs_finish_on_the_same_event():
    # Identical columns drain in lockstep and leave the active mask on
    # the same iteration; every result must still be the scalar one.
    profile = _rich_profile(2)
    results = run_batch(
        _config("batched"), [_spec(profile, seed=3) for _ in range(8)]
    )
    scalar = _scalar_run(profile, seed=3)
    assert len(results) == 8
    for result in results:
        _assert_bitwise(result, scalar)


def test_mid_batch_spill_and_privacy_flips():
    # Columns diverge mid-batch: one spills, one stays in memory, one
    # scans shared fact tables while another runs private-only phases.
    cases = [
        (_rich_profile(3, mem_mb=900), 11),  # spills
        (_rich_profile(4, mem_mb=40), 12),  # fits in memory
        (_rich_profile(5), 13),  # shared scans, no working set
        (
            ResourceProfile(
                template_id=6,
                phases=(
                    Phase(label="p", seq_bytes=MB(60), cpu_seconds=0.2),
                ),
            ),
            14,
        ),  # private only
    ]
    results = run_batch(
        _config("batched"),
        [_spec(profile, seed) for profile, seed in cases],
    )
    for result, (profile, seed) in zip(results, cases):
        _assert_bitwise(result, _scalar_run(profile, seed))


def test_results_independent_of_batch_composition():
    cases = [
        (_rich_profile(10 + j, mem_mb=100.0 * j), 100 + j) for j in range(5)
    ]
    together = run_batch(
        _config("batched"), [_spec(p, s) for p, s in cases]
    )
    alone = [
        run_batch(_config("batched"), [_spec(p, s)])[0] for p, s in cases
    ]
    for a, b in zip(together, alone):
        _assert_bitwise(a, b)


def test_empty_run_is_rejected():
    with pytest.raises(SimulationError):
        run_batch(_config("batched"), [RunSpec(streams=[])])


def test_empty_batch_returns_no_results():
    assert run_batch(_config("batched"), []) == []


def test_batched_campaign_ok_conditions():
    assert batched_campaign_ok(_config("batched"))
    assert not batched_campaign_ok(_config("virtual_time"))
    lru = SystemConfig(
        simulation=SimulationConfig(engine="batched", cache_eviction="lru")
    )
    assert not batched_campaign_ok(lru)
