"""EXPLAIN-style plan-parser tests."""

import pytest

from repro.engine.operators import (
    Aggregate,
    HashJoin,
    IndexScan,
    NestedLoopJoin,
    SeqScan,
    Sort,
)
from repro.engine.plan_parser import parse_plan
from repro.errors import WorkloadError

SIMPLE = """\
HashAggregate (groups=2000)
  HashJoin (sel=0.9)
    SeqScan catalog_sales (sel=0.02 cpu=0.3 width=32)
    SeqScan customer_demographics
"""


def test_parses_tree_shape(schema):
    plan = parse_plan(SIMPLE, schema, template_id=500)
    assert plan.template_id == 500
    assert isinstance(plan.root, Aggregate)
    join = plan.root.children[0]
    assert isinstance(join, HashJoin)
    assert all(isinstance(c, SeqScan) for c in join.children)


def test_parameters_applied(schema):
    plan = parse_plan(SIMPLE, schema)
    scan = plan.root.children[0].children[0]
    assert scan.selectivity == pytest.approx(0.02)
    assert scan.cpu_factor == pytest.approx(0.3)
    assert scan.project_width == pytest.approx(32)
    assert plan.root.groups == 2000


def test_defaults_when_params_absent(schema):
    plan = parse_plan("SeqScan item\n", schema)
    assert plan.root.selectivity == 1.0
    assert plan.root.cpu_factor == 1.0


def test_index_scan_needs_rows(schema):
    plan = parse_plan("IndexScan store_returns (rows=5000)\n", schema)
    assert isinstance(plan.root, IndexScan)
    assert plan.root.matching_rows == 5000
    with pytest.raises(WorkloadError):
        parse_plan("IndexScan store_returns\n", schema)


def test_nested_loop_lookup_ops(schema):
    text = """\
NestedLoopJoin (lookup_ops=2)
  IndexScan store_returns (rows=100)
  IndexScan store_sales (rows=100)
"""
    plan = parse_plan(text, schema)
    assert isinstance(plan.root, NestedLoopJoin)
    assert plan.root.inner_lookup_ops == 2.0


def test_sort_and_group_aggregate(schema):
    text = """\
GroupAggregate (groups=10)
  Sort (cpu=0.5)
    SeqScan web_sales (sel=0.1)
"""
    plan = parse_plan(text, schema)
    assert plan.root.strategy == "group"
    assert isinstance(plan.root.children[0], Sort)


def test_fact_scan_set_extracted(schema):
    plan = parse_plan(SIMPLE, schema)
    assert plan.fact_tables_scanned() == {"catalog_sales"}


def test_unknown_relation_rejected(schema):
    with pytest.raises(WorkloadError):
        parse_plan("SeqScan nonexistent\n", schema)


def test_unknown_operator_rejected(schema):
    with pytest.raises(WorkloadError):
        parse_plan("QuantumScan item\n", schema)


def test_bad_arity_rejected(schema):
    with pytest.raises(WorkloadError):
        parse_plan("HashJoin\n  SeqScan item\n", schema)
    with pytest.raises(WorkloadError):
        parse_plan("Sort\n", schema)


def test_scan_with_children_rejected(schema):
    with pytest.raises(WorkloadError):
        parse_plan("SeqScan item\n  SeqScan store\n", schema)


def test_odd_indentation_rejected(schema):
    with pytest.raises(WorkloadError):
        parse_plan("Sort\n SeqScan item\n", schema)


def test_skipped_level_rejected(schema):
    with pytest.raises(WorkloadError):
        parse_plan("Sort\n    SeqScan item\n", schema)


def test_multiple_roots_rejected(schema):
    with pytest.raises(WorkloadError):
        parse_plan("SeqScan item\nSeqScan store\n", schema)


def test_empty_text_rejected(schema):
    with pytest.raises(WorkloadError):
        parse_plan("\n\n", schema)


def test_malformed_params_rejected(schema):
    with pytest.raises(WorkloadError):
        parse_plan("SeqScan item (sel)\n", schema)
    with pytest.raises(WorkloadError):
        parse_plan("SeqScan item (sel=abc)\n", schema)


def test_round_trip_with_describe(schema):
    plan = parse_plan(SIMPLE, schema)
    rendered = plan.describe()
    assert "SeqScan:catalog_sales" in rendered
    assert rendered.splitlines()[0].startswith("HashAggregate")
