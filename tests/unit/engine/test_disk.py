"""Fair-share disk model tests."""

import pytest

from repro.config import HardwareSpec
from repro.engine import disk
from repro.units import MB


@pytest.fixture()
def hw():
    return HardwareSpec(seq_bandwidth=MB(100), random_iops=100.0)


def test_single_stream_gets_full_bandwidth(hw):
    rates = disk.allocate(hw, [disk.private_seq_key(1)])
    assert rates.seq_bytes_per_sec == hw.seq_bandwidth
    assert rates.num_streams == 1


def test_two_streams_split_evenly(hw):
    rates = disk.allocate(
        hw, [disk.private_seq_key(1), disk.private_seq_key(2)]
    )
    assert rates.seq_bytes_per_sec == pytest.approx(hw.seq_bandwidth / 2)


def test_shared_scan_keys_collapse(hw):
    keys = [disk.shared_scan_key("sales"), disk.shared_scan_key("sales")]
    rates = disk.allocate(hw, keys)
    assert rates.num_streams == 1
    assert rates.seq_bytes_per_sec == hw.seq_bandwidth


def test_different_tables_do_not_collapse(hw):
    keys = [disk.shared_scan_key("sales"), disk.shared_scan_key("returns")]
    assert disk.allocate(hw, keys).num_streams == 2


def test_random_and_seq_share_device_time(hw):
    keys = [disk.private_seq_key(1), disk.random_key(2)]
    rates = disk.allocate(hw, keys)
    assert rates.seq_bytes_per_sec == pytest.approx(hw.seq_bandwidth / 2)
    assert rates.rand_ops_per_sec == pytest.approx(hw.random_iops / 2)


def test_no_streams_is_harmless(hw):
    rates = disk.allocate(hw, [])
    assert rates.num_streams == 0
    assert rates.seq_bytes_per_sec == hw.seq_bandwidth


def test_private_keys_distinct_per_owner():
    assert disk.private_seq_key(1) != disk.private_seq_key(2)
    assert disk.random_key("a") != disk.random_key("b")


def test_shared_key_differs_from_private():
    assert disk.shared_scan_key("sales") != disk.private_seq_key("sales")
