"""Spoiler tests."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.engine.spoiler import Spoiler, measure_spoiler_latency
from repro.errors import ConfigurationError
from repro.units import GB


def test_pin_fraction_matches_paper_formula():
    spoiler = Spoiler(mpl=4, ram_bytes=GB(8))
    assert spoiler.pinned_bytes == pytest.approx(0.75 * GB(8))


def test_mpl1_pins_nothing_and_runs_no_readers():
    spoiler = Spoiler(mpl=1, ram_bytes=GB(8))
    assert spoiler.pinned_bytes == 0.0
    assert spoiler.num_readers == 0
    assert spoiler.readers() == []


def test_reader_count_is_mpl_minus_one():
    spoiler = Spoiler(mpl=5, ram_bytes=GB(8))
    assert spoiler.num_readers == 4
    readers = spoiler.readers()
    assert len(readers) == 4
    assert all(r.background for r in readers)


def test_invalid_mpl_rejected():
    with pytest.raises(ConfigurationError):
        Spoiler(mpl=0, ram_bytes=GB(8))


def test_spoiler_latency_increases_with_mpl(catalog):
    profile_at = lambda: catalog.profile(26)
    lats = [
        measure_spoiler_latency(profile_at(), mpl, catalog.config).latency
        for mpl in (1, 2, 3)
    ]
    assert lats[0] < lats[1] < lats[2]


def test_spoiler_at_mpl1_equals_isolated(catalog):
    isolated = catalog.run_isolated(71).latency
    spoiled = measure_spoiler_latency(
        catalog.profile(71), 1, catalog.config
    ).latency
    assert spoiled == pytest.approx(isolated, rel=1e-6)
