"""Harness tests: ground truth, scoring, reports, and instruments."""

import pytest

from repro.errors import ModelError
from repro.eval.backends import named_backends
from repro.eval.harness import (
    GroundTruth,
    ground_truth_latencies,
    run_matrix,
)
from repro.eval.scenarios import ScenarioSpec
from repro.obs.metrics import Registry
from repro.sampling.steady_state import SteadyStateConfig

STEADY = SteadyStateConfig(samples_per_stream=3)

MATRIX = [
    ScenarioSpec(name="uniform-a", family="uniform", mpl=2, window=3, sets=2),
    ScenarioSpec(name="skewed-a", family="skewed", mpl=2, window=3, sets=2),
]


@pytest.fixture(scope="module")
def backends(small_training_data):
    return named_backends(small_training_data)


@pytest.fixture(scope="module")
def registry():
    return Registry()


@pytest.fixture(scope="module")
def result(small_catalog, backends, registry):
    return run_matrix(
        small_catalog,
        backends,
        matrix=MATRIX,
        seed=7,
        steady=STEADY,
        registry=registry,
    )


def test_ground_truth_covers_members(small_catalog):
    mixes = [(26, 62), (26, 71)]
    truth = ground_truth_latencies(small_catalog, mixes, seed=7, steady=STEADY)
    assert set(truth.latencies) == set(mixes)
    for mix in mixes:
        for template in mix:
            assert truth.member_latency(mix, template) > 0
    assert truth.sim_seconds > 0
    with pytest.raises(ModelError):
        truth.member_latency((26, 62), 99)


def test_ground_truth_dedupes_and_validates(small_catalog):
    truth = ground_truth_latencies(
        small_catalog, [(62, 26), (26, 62), (26, 62)], seed=7, steady=STEADY
    )
    assert set(truth.latencies) == {(26, 62), (62, 26)}
    with pytest.raises(ModelError):
        ground_truth_latencies(small_catalog, [], seed=7)
    with pytest.raises(ModelError):
        ground_truth_latencies(small_catalog, [(26,)], seed=7)


def test_cost_objectives():
    truth = GroundTruth(
        latencies={(1, 2): {1: 10.0, 2: 30.0}}, sim_seconds=0.0
    )
    assert truth.cost((1, 2), "makespan") == 30.0
    assert truth.cost((1, 2), "sum") == 40.0


def test_reports_cover_backends_and_scenarios(result, backends):
    assert result.seed == 7
    assert result.objective == "makespan"
    assert result.mixes > 0
    assert result.sim_seconds > 0
    assert [r.backend for r in result.reports] == list(backends)
    for report in result.reports:
        assert [s.name for s in report.scenarios] == [
            spec.name for spec in MATRIX
        ]
        assert report.scenario("uniform-a").family == "uniform"
        with pytest.raises(ModelError):
            report.scenario("missing")
    assert result.report_for("qs").backend == "qs"
    with pytest.raises(ModelError):
        result.report_for("gbm")


def test_metric_ranges(result):
    for report in result.reports:
        for scope in (report, *report.scenarios):
            assert 0.0 <= scope.pairwise_accuracy <= 1.0
            assert 0.0 <= scope.winner_rate <= 1.0
            assert -1.0 <= scope.kendall_tau <= 1.0
            assert 1.0 <= scope.q_error["p50"] <= scope.q_error["max"]
            assert scope.q_error["p90"] <= scope.q_error["max"]
            assert scope.mre >= 0.0


def test_overall_pools_raw_counts(result):
    # The overall accuracy is pooled over pairs, so it must sit inside
    # the per-scenario range (it is a weighted mean of them).
    for report in result.reports:
        accs = [s.pairwise_accuracy for s in report.scenarios]
        assert min(accs) <= report.pairwise_accuracy <= max(accs)
        assert sum(s.sets for s in report.scenarios) == sum(
            spec.sets for spec in MATRIX
        )


def test_run_is_deterministic(small_catalog, backends, result):
    again = run_matrix(
        small_catalog, backends, matrix=MATRIX, seed=7, steady=STEADY
    )
    assert again.to_doc() == result.to_doc()


def test_doc_and_table_shapes(result):
    doc = result.to_doc()
    assert doc["ground_truth"]["mixes"] == result.mixes
    assert [r["backend"] for r in doc["reports"]] == ["qs", "knn"]
    for report_doc in doc["reports"]:
        assert {"pairwise_accuracy", "winner_rate", "kendall_tau"} <= set(
            report_doc
        )
        assert len(report_doc["scenarios"]) == len(MATRIX)
    table = result.report_for("qs").format_table()
    assert "uniform-a" in table and "overall" in table and "pair-acc" in table


def test_registry_instruments(result, registry):
    for name in (
        "eval_scenarios_total",
        "eval_candidate_sets_total",
        "eval_ground_truth_runs_total",
        "eval_ground_truth_sim_seconds",
        "eval_pairwise_accuracy",
        "eval_kendall_tau",
        "eval_q_error_p90",
        "eval_mre",
    ):
        assert name in registry
    scenarios = registry.get("eval_scenarios_total")
    assert scenarios.labels("qs").value == len(MATRIX)
    sets = registry.get("eval_candidate_sets_total")
    assert sets.labels("qs").value == sum(spec.sets for spec in MATRIX)
    assert (
        registry.get("eval_ground_truth_runs_total").value == result.mixes
    )
    assert registry.get("eval_ground_truth_sim_seconds").value == (
        result.sim_seconds
    )
    overall = registry.get("eval_pairwise_accuracy").labels("qs", "_overall")
    assert overall.value == result.report_for("qs").pairwise_accuracy
    per_scenario = registry.get("eval_mre").labels("knn", "skewed-a")
    assert per_scenario.value == (
        result.report_for("knn").scenario("skewed-a").mre
    )


def test_run_matrix_validates_inputs(small_catalog, backends):
    with pytest.raises(ModelError):
        run_matrix(small_catalog, {}, matrix=MATRIX)
    with pytest.raises(ModelError):
        run_matrix(small_catalog, backends, matrix=MATRIX, objective="p99")
    with pytest.raises(ModelError):
        run_matrix(small_catalog, backends, matrix=[])
    with pytest.raises(ModelError):
        run_matrix(small_catalog, backends, matrix=[MATRIX[0], MATRIX[0]])
