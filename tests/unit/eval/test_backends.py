"""Backend tests: qs passthrough and leave-one-out knn semantics."""

import pytest

from repro.core.contender import SpoilerMode
from repro.errors import ModelError
from repro.eval.backends import (
    BACKEND_NAMES,
    KnnNewTemplateBackend,
    named_backends,
)

MIX = (26, 62)


def test_named_backends_default_order(small_training_data):
    backends = named_backends(small_training_data)
    assert tuple(backends) == BACKEND_NAMES


def test_named_backends_rejects_unknown_and_duplicates(small_training_data):
    with pytest.raises(ModelError):
        named_backends(small_training_data, ["qs", "gbm"])
    with pytest.raises(ModelError):
        named_backends(small_training_data, ["qs", "qs"])


def test_qs_backend_matches_contender(small_training_data, small_contender):
    backend = named_backends(small_training_data, ["qs"])["qs"]
    assert backend.predict_known(26, MIX) == small_contender.predict_known(
        26, MIX
    )
    assert backend.isolated_latency(26) == small_training_data.profile(
        26
    ).isolated_latency


def test_knn_backend_is_leave_one_out(small_training_data, small_contender):
    backend = KnnNewTemplateBackend(small_training_data)
    predicted = backend.predict_known(26, MIX)
    # Same number the evaluation protocol produces by hand: a Contender
    # fitted without template 26, predicting it as a new template.
    rest = [t for t in small_training_data.template_ids if t != 26]
    from repro.core.contender import Contender

    reference = Contender(small_training_data.restricted_to(rest)).predict_new(
        small_training_data.profile(26), MIX, spoiler_mode=SpoilerMode.KNN
    )
    assert predicted == reference
    assert predicted > 0
    # The scrubbed model should not coincide with the fitted one.
    assert predicted != small_contender.predict_known(26, MIX)


def test_knn_isolated_mix_uses_profile(small_training_data):
    backend = KnnNewTemplateBackend(small_training_data)
    assert backend.predict_known(26, (26,)) == small_training_data.profile(
        26
    ).isolated_latency
    assert backend.isolated_latency(26) == small_training_data.profile(
        26
    ).isolated_latency


def test_knn_caches_restricted_contenders(small_training_data):
    backend = KnnNewTemplateBackend(small_training_data)
    assert backend._contender_for(26) is backend._contender_for(26)
    assert backend.data is small_training_data


def test_knn_needs_two_templates(small_training_data):
    lone = small_training_data.restricted_to([26])
    with pytest.raises(ModelError):
        KnnNewTemplateBackend(lone)
