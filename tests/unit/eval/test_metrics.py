"""Property and edge-case tests for the ranking-metric kernels.

The load-bearing properties:

* ``kendall_tau`` agrees with a brute-force O(n^2) tau-b on arbitrary
  tied inputs — Knight's algorithm is an optimization, not a different
  statistic;
* q-errors are >= 1 and symmetric under swapping observed/predicted;
* pairwise counts are invariant under any joint permutation of the
  candidates and award exactly half credit for prediction ties.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.eval.metrics import (
    kendall_tau,
    pairwise_accuracy,
    pairwise_counts,
    q_error_summary,
    q_errors,
)

# Small-integer values produce plenty of ties — the regime where tau-b
# and the pairwise tie credit actually differ from the naive formulas.
_TIED_VALUES = st.integers(min_value=0, max_value=5).map(float)
_POSITIVE = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def paired_vectors(draw, values=_TIED_VALUES, min_size=2, max_size=12):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    xs = draw(st.lists(values, min_size=n, max_size=n))
    ys = draw(st.lists(values, min_size=n, max_size=n))
    return xs, ys


def _brute_tau_b(x, y):
    """Tau-b straight from the definition, one pair at a time."""
    n = len(x)
    concordant = discordant = xtie = ytie = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = np.sign(x[i] - x[j])
            dy = np.sign(y[i] - y[j])
            if dx == 0:
                xtie += 1
            if dy == 0:
                ytie += 1
            if dx * dy > 0:
                concordant += 1
            elif dx * dy < 0:
                discordant += 1
    total = n * (n - 1) // 2
    denominator = np.sqrt(float(total - xtie) * float(total - ytie))
    if denominator == 0.0:
        return 0.0
    return (concordant - discordant) / denominator


# ----------------------------------------------------------------------
# Kendall tau-b.


@given(paired_vectors())
def test_tau_matches_brute_force(pair):
    xs, ys = pair
    assert kendall_tau(xs, ys) == pytest.approx(
        _brute_tau_b(xs, ys), rel=1e-12, abs=1e-12
    )


@given(paired_vectors(values=_POSITIVE))
def test_tau_matches_brute_force_without_ties(pair):
    xs, ys = pair
    assert kendall_tau(xs, ys) == pytest.approx(
        _brute_tau_b(xs, ys), rel=1e-12, abs=1e-12
    )


@given(paired_vectors())
def test_tau_is_symmetric_and_bounded(pair):
    xs, ys = pair
    tau = kendall_tau(xs, ys)
    assert -1.0 <= tau <= 1.0 + 1e-12
    assert kendall_tau(ys, xs) == pytest.approx(tau, abs=1e-12)


@given(st.lists(_POSITIVE, min_size=2, max_size=12, unique=True))
def test_tau_perfect_on_identical_rankings(xs):
    assert kendall_tau(xs, xs) == pytest.approx(1.0)
    assert kendall_tau(xs, [-v for v in xs]) == pytest.approx(-1.0)


def test_tau_zero_when_one_side_constant():
    assert kendall_tau([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0
    assert kendall_tau([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]) == 0.0


def test_tau_validates_inputs():
    with pytest.raises(ModelError):
        kendall_tau([1.0], [2.0])  # minimum two samples
    with pytest.raises(ModelError):
        kendall_tau([1.0, 2.0], [1.0, 2.0, 3.0])
    with pytest.raises(ModelError):
        kendall_tau([1.0, np.nan], [1.0, 2.0])


# ----------------------------------------------------------------------
# q-error.


@given(paired_vectors(values=_POSITIVE, min_size=1))
def test_q_errors_at_least_one_and_swap_symmetric(pair):
    obs, pred = pair
    q = q_errors(obs, pred)
    assert np.all(q >= 1.0)
    np.testing.assert_array_equal(q, q_errors(pred, obs))


@given(st.lists(_POSITIVE, min_size=1, max_size=12))
def test_q_error_exact_on_perfect_prediction(values):
    q = q_errors(values, values)
    np.testing.assert_array_equal(q, np.ones(len(values)))


def test_q_error_summary_orders_percentiles():
    obs = [100.0, 200.0, 300.0, 400.0]
    pred = [110.0, 150.0, 300.0, 800.0]
    summary = q_error_summary(obs, pred)
    assert set(summary) == {"p50", "p90", "max"}
    assert 1.0 <= summary["p50"] <= summary["p90"] <= summary["max"]
    assert summary["max"] == pytest.approx(2.0)


def test_q_error_rejects_non_positive():
    with pytest.raises(ModelError):
        q_errors([0.0, 1.0], [1.0, 1.0])
    with pytest.raises(ModelError):
        q_errors([1.0, 1.0], [-2.0, 1.0])
    with pytest.raises(ModelError):
        q_errors([], [])


# ----------------------------------------------------------------------
# Pairwise winner prediction.


@given(paired_vectors(), st.randoms(use_true_random=False))
def test_pairwise_counts_permutation_invariant(pair, random):
    xs, ys = pair
    order = list(range(len(xs)))
    random.shuffle(order)
    baseline = pairwise_counts(xs, ys)
    shuffled = pairwise_counts(
        [xs[i] for i in order], [ys[i] for i in order]
    )
    assert shuffled == baseline


@given(paired_vectors())
def test_pairwise_counts_bounds(pair):
    xs, ys = pair
    correct, comparable = pairwise_counts(xs, ys)
    n = len(xs)
    assert 0 <= comparable <= n * (n - 1) // 2
    assert 0.0 <= correct <= comparable


def test_pairwise_accuracy_perfect_and_inverted():
    truth = [10.0, 20.0, 30.0]
    assert pairwise_accuracy(truth, [1.0, 2.0, 3.0]) == 1.0
    assert pairwise_accuracy(truth, [3.0, 2.0, 1.0]) == 0.0


def test_pairwise_tie_scores_half():
    # All predictions tied: every comparable pair is a coin flip.
    assert pairwise_accuracy([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]) == 0.5


def test_pairwise_skips_true_ties():
    # Only the (1.0, 2.0) true pairs are comparable; both ordered right.
    correct, comparable = pairwise_counts([1.0, 1.0, 2.0], [3.0, 4.0, 9.0])
    assert comparable == 2
    assert correct == 2.0


def test_pairwise_accuracy_undefined_without_comparable_pairs():
    with pytest.raises(ModelError):
        pairwise_accuracy([4.0, 4.0, 4.0], [1.0, 2.0, 3.0])
