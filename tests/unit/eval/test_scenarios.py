"""Scenario-matrix tests: determinism, prefix stability, family shapes."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.eval.scenarios import (
    FAMILIES,
    ScenarioSpec,
    _family_weights,
    default_matrix,
    generate_candidate_sets,
)

IDS = (22, 26, 32, 62, 65, 71, 82)


def _spec(**overrides):
    base = dict(name="t", family="uniform", mpl=2, window=3, sets=4)
    base.update(overrides)
    return ScenarioSpec(**base)


def test_generation_is_deterministic():
    for family in FAMILIES:
        spec = _spec(name=f"{family}-x", family=family)
        one = generate_candidate_sets(spec, IDS, seed=7)
        two = generate_candidate_sets(spec, IDS, seed=7)
        assert one == two


def test_different_seeds_differ():
    spec = _spec()
    assert generate_candidate_sets(spec, IDS, seed=7) != generate_candidate_sets(
        spec, IDS, seed=8
    )


def test_prefix_stable_as_sets_grow():
    # Growing the matrix must not reshuffle existing sets: set i is
    # keyed on (name, i), independent of how many sets follow.
    small = generate_candidate_sets(_spec(sets=2), IDS, seed=7)
    large = generate_candidate_sets(_spec(sets=5), IDS, seed=7)
    assert large[:2] == small


def test_generation_order_independent_of_input_order():
    spec = _spec()
    shuffled = (71, 22, 82, 26, 65, 32, 62)
    assert generate_candidate_sets(spec, IDS, seed=7) == generate_candidate_sets(
        spec, shuffled, seed=7
    )


def test_candidate_set_structure():
    for family in FAMILIES:
        spec = _spec(name=f"{family}-s", family=family, mpl=3, window=4)
        for index, cs in enumerate(generate_candidate_sets(spec, IDS, seed=7)):
            assert cs.scenario == spec.name
            assert cs.index == index
            assert len(cs.running) == spec.mpl - 1
            assert len(cs.candidates) == spec.window
            assert len(set(cs.candidates)) == spec.window
            assert set(cs.running) | set(cs.candidates) <= set(IDS)
            mixes = cs.mixes()
            assert len(mixes) == spec.window
            for mix, candidate in zip(mixes, cs.candidates):
                assert mix == (*cs.running, candidate)
                assert len(mix) == spec.mpl


def test_uniform_weights_equal():
    rng = np.random.default_rng(0)
    weights = _family_weights(_spec(), len(IDS), rng)
    np.testing.assert_allclose(weights, np.full(len(IDS), 1.0 / len(IDS)))


def test_skewed_weights_decrease():
    rng = np.random.default_rng(0)
    weights = _family_weights(_spec(family="skewed", skew=1.5), len(IDS), rng)
    assert np.all(np.diff(weights) < 0)
    assert weights.sum() == pytest.approx(1.0)


def test_multitenant_weights_partition():
    rng = np.random.default_rng(0)
    spec = _spec(family="multitenant", tenants=3)
    weights = _family_weights(spec, len(IDS), rng)
    assert weights.sum() == pytest.approx(1.0)
    # Tenant blocks are contiguous with uniform weight inside each, so
    # there are at most `tenants` distinct weight values.
    assert len(np.unique(np.round(weights, 12))) <= spec.tenants


def test_wmp_weights_fresh_per_set():
    # Each candidate set draws its own Dirichlet family; two sets of the
    # same scenario must not share weights.
    sets = generate_candidate_sets(
        _spec(family="wmp", sets=2, window=7), IDS, seed=7
    )
    assert sets[0].candidates != sets[1].candidates


def test_default_matrix_covers_families_by_mpl():
    matrix = default_matrix(mpls=(2, 3))
    assert len(matrix) == len(FAMILIES) * 2
    names = [spec.name for spec in matrix]
    assert len(set(names)) == len(names)
    for family in FAMILIES:
        for mpl in (2, 3):
            spec = next(s for s in matrix if s.name == f"{family}-mpl{mpl}")
            assert spec.family == family
            assert spec.mpl == mpl
    with pytest.raises(ModelError):
        default_matrix(mpls=())


def test_spec_validation():
    with pytest.raises(ModelError):
        _spec(name="")
    with pytest.raises(ModelError):
        _spec(family="bursty")
    with pytest.raises(ModelError):
        _spec(mpl=1)
    with pytest.raises(ModelError):
        _spec(window=1)
    with pytest.raises(ModelError):
        _spec(sets=0)
    with pytest.raises(ModelError):
        _spec(skew=-0.1)
    with pytest.raises(ModelError):
        _spec(tenants=0)


def test_generation_validates_templates():
    with pytest.raises(ModelError):
        generate_candidate_sets(_spec(window=8), IDS, seed=7)  # window > ids
    with pytest.raises(ModelError):
        generate_candidate_sets(_spec(), (22, 22, 26), seed=7)
