"""Steady-state execution tests."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.steady_state import (
    SteadyStateConfig,
    TemplateStream,
    run_steady_state,
)


def test_config_total_per_stream():
    cfg = SteadyStateConfig(samples_per_stream=5, warmup=1, cooldown=2)
    assert cfg.total_per_stream == 8


def test_config_validation():
    with pytest.raises(SamplingError):
        SteadyStateConfig(samples_per_stream=0)
    with pytest.raises(SamplingError):
        SteadyStateConfig(warmup=-1)


def test_stream_stops_at_target(small_catalog, rng):
    stream = TemplateStream(
        catalog=small_catalog, template_id=26, target=3, rng=rng
    )
    assert stream.next_profile(0.0, 0) is not None
    assert stream.next_profile(0.0, 2) is not None
    assert stream.next_profile(0.0, 3) is None


def test_stream_charges_restart_cost_after_first(small_catalog, rng):
    stream = TemplateStream(
        catalog=small_catalog, template_id=26, target=3, rng=rng,
        restart_cost=2.5,
    )
    first = stream.next_profile(0.0, 0)
    later = stream.next_profile(100.0, 1)
    assert first.phases[0].label != "Startup"
    assert later.phases[0].label == "Startup"
    assert later.phases[0].cpu_seconds == 2.5


def test_run_collects_trimmed_samples(small_catalog):
    cfg = SteadyStateConfig(samples_per_stream=3, warmup=1, cooldown=1)
    result = run_steady_state(small_catalog, (26, 71), config=cfg)
    assert result.mix == (26, 71)
    assert [len(s) for s in result.samples] == [3, 3]


def test_samples_for_collects_across_slots(small_catalog):
    cfg = SteadyStateConfig(samples_per_stream=2, warmup=0, cooldown=0)
    result = run_steady_state(small_catalog, (26, 26), config=cfg)
    assert len(result.samples_for(26)) == 4


def test_samples_for_unknown_template_raises(small_catalog):
    cfg = SteadyStateConfig(samples_per_stream=2, warmup=0, cooldown=0)
    result = run_steady_state(small_catalog, (26, 71), config=cfg)
    with pytest.raises(SamplingError):
        result.samples_for(65)


def test_mean_latency_positive_and_above_isolated(small_catalog):
    iso = small_catalog.run_isolated(26).latency
    result = run_steady_state(small_catalog, (26, 65))
    assert result.mean_latency(26) > 0.95 * iso


def test_concurrency_slows_disjoint_io(small_catalog):
    """Two I/O-bound queries on different tables slow each other down."""
    iso = small_catalog.run_isolated(26).latency
    result = run_steady_state(small_catalog, (26, 82))
    assert result.mean_latency(26) > 1.2 * iso


def test_shared_scans_barely_slow_same_template(small_catalog):
    """Same template twice: synchronized scans nearly eliminate slowdown."""
    iso = small_catalog.run_isolated(26).latency
    result = run_steady_state(small_catalog, (26, 26))
    assert result.mean_latency(26) < 1.15 * iso


def test_empty_mix_rejected(small_catalog):
    with pytest.raises(SamplingError):
        run_steady_state(small_catalog, ())


def test_deterministic_given_rng(small_catalog):
    cfg = SteadyStateConfig(samples_per_stream=2)
    a = run_steady_state(
        small_catalog, (26, 62), config=cfg, rng=np.random.default_rng(3)
    )
    b = run_steady_state(
        small_catalog, (26, 62), config=cfg, rng=np.random.default_rng(3)
    )
    assert a.mean_latency(26) == b.mean_latency(26)


def test_raw_run_keeps_untrimmed_samples(small_catalog):
    cfg = SteadyStateConfig(samples_per_stream=2, warmup=1, cooldown=1)
    result = run_steady_state(small_catalog, (26, 62), config=cfg)
    by_stream = result.run.by_stream()
    assert all(len(v) == cfg.total_per_stream for v in by_stream.values())
