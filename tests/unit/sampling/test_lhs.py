"""Latin Hypercube Sampling tests."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.lhs import latin_hypercube, lhs_runs


@pytest.fixture()
def templates():
    return [2, 15, 26, 62, 71]


def test_one_mix_per_template(templates, rng):
    design = latin_hypercube(templates, mpl=2, rng=rng)
    assert len(design) == len(templates)


def test_each_dimension_is_a_permutation(templates, rng):
    for mpl in (2, 3, 5):
        design = latin_hypercube(templates, mpl=mpl, rng=rng)
        for dim in range(mpl):
            column = [mix[dim] for mix in design]
            assert sorted(column) == sorted(templates), f"dimension {dim}"


def test_mixes_have_mpl_size(templates, rng):
    design = latin_hypercube(templates, mpl=4, rng=rng)
    assert all(len(mix) == 4 for mix in design)


def test_mpl_one_is_just_the_templates(templates, rng):
    design = latin_hypercube(templates, mpl=1, rng=rng)
    assert sorted(m[0] for m in design) == sorted(templates)


def test_runs_concatenate(templates, rng):
    mixes = lhs_runs(templates, mpl=3, runs=4, rng=rng)
    assert len(mixes) == 4 * len(templates)


def test_runs_differ(templates):
    rng = np.random.default_rng(1)
    first = latin_hypercube(templates, mpl=3, rng=rng)
    second = latin_hypercube(templates, mpl=3, rng=rng)
    assert first != second


def test_deterministic_given_seed(templates):
    a = latin_hypercube(templates, 3, np.random.default_rng(5))
    b = latin_hypercube(templates, 3, np.random.default_rng(5))
    assert a == b


def test_empty_templates_rejected(rng):
    with pytest.raises(SamplingError):
        latin_hypercube([], 2, rng)


def test_duplicate_templates_rejected(rng):
    with pytest.raises(SamplingError):
        latin_hypercube([1, 1, 2], 2, rng)


def test_bad_mpl_rejected(templates, rng):
    with pytest.raises(SamplingError):
        latin_hypercube(templates, 0, rng)
    with pytest.raises(SamplingError):
        lhs_runs(templates, 2, 0, rng)
