"""Mix-space tests."""

import math

import pytest

from repro.errors import SamplingError
from repro.sampling.mixes import (
    all_mixes,
    all_pairs,
    concurrent_queries,
    mix_count,
    mixes_containing,
    random_mix,
)


def test_mix_count_formula():
    # The paper's example: 25 templates at MPL 5 -> 118,755 mixes.
    assert mix_count(25, 5) == 118_755
    assert mix_count(25, 2) == 325


def test_mix_count_matches_comb():
    for n in (3, 7, 25):
        for k in (1, 2, 4):
            assert mix_count(n, k) == math.comb(n + k - 1, k)


def test_all_pairs_count():
    pairs = all_pairs(list(range(25)))
    assert len(pairs) == mix_count(25, 2)


def test_all_pairs_include_self_pairs():
    assert (3, 3) in all_pairs([1, 2, 3])


def test_all_mixes_enumerates_with_replacement():
    mixes = all_mixes([1, 2, 3], 3)
    assert len(mixes) == mix_count(3, 3)
    assert (1, 1, 1) in mixes


def test_random_mix_draws_from_templates(rng):
    mix = random_mix([4, 5, 6], 5, rng)
    assert len(mix) == 5
    assert set(mix) <= {4, 5, 6}


def test_mixes_containing_filters():
    mixes = [(1, 2), (2, 3), (1, 1)]
    assert mixes_containing(mixes, 1) == [(1, 2), (1, 1)]


def test_concurrent_queries_removes_one_occurrence():
    assert concurrent_queries((5, 5, 7), 5) == (5, 7)
    assert concurrent_queries((5, 7), 7) == (5,)


def test_concurrent_queries_requires_membership():
    with pytest.raises(SamplingError):
        concurrent_queries((1, 2), 3)


def test_validation():
    with pytest.raises(SamplingError):
        all_pairs([])
    with pytest.raises(SamplingError):
        all_pairs([1, 1])
    with pytest.raises(SamplingError):
        mix_count(0, 2)
