"""RootCauseAnalyzer: mix filtering, truncation, caching, ranking."""

import pytest

from repro.errors import ExplainError
from repro.explain import RootCauseAnalyzer
from repro.explain import rootcause as rootcause_module


def test_analyze_requires_a_mix_containing_the_template(small_catalog):
    analyzer = RootCauseAnalyzer(small_catalog)
    with pytest.raises(ExplainError, match="no observed mix"):
        analyzer.analyze(26, [(71, 65), (22, 62)])


def test_analyze_ranks_co_runners(small_catalog):
    analyzer = RootCauseAnalyzer(small_catalog)
    doc = analyzer.analyze(26, [(26, 71)])
    assert doc["template_id"] == 26
    assert doc["mixes"] == [[26, 71]]
    assert doc["max_residual"] <= 1e-6
    assert doc["top"], "co-runner 71 must receive blame"
    top = doc["top"][0]
    assert top["template_id"] == 71
    assert set(top["resources"]) <= {"seq", "rand", "cpu"}
    # Ranked descending by net seconds.
    seconds = [entry["seconds"] for entry in doc["top"]]
    assert seconds == sorted(seconds, reverse=True)


def test_analyze_filters_and_truncates_mixes(small_catalog):
    analyzer = RootCauseAnalyzer(small_catalog, max_mixes=1)
    doc = analyzer.analyze(26, [(26, 65), (71, 22), (26, 71)])
    # (71, 22) lacks the template; truncation keeps the trailing mix.
    assert doc["mixes"] == [[26, 71]]


def test_analyze_caches_by_template_and_mixes(small_catalog, monkeypatch):
    analyzer = RootCauseAnalyzer(small_catalog)
    calls = []
    real = rootcause_module.explain_mix

    def counting(catalog, mix, **kwargs):
        calls.append(tuple(mix))
        return real(catalog, mix, **kwargs)

    monkeypatch.setattr(rootcause_module, "explain_mix", counting)
    first = analyzer.analyze(26, [(26, 71)])
    assert calls == [(26, 71)]
    second = analyzer.analyze(26, [(26, 71)])
    assert calls == [(26, 71)]  # cache hit: no new simulation
    assert second is first


def test_top_k_truncates_ranking(small_catalog):
    wide = RootCauseAnalyzer(small_catalog)
    narrow = RootCauseAnalyzer(small_catalog, top_k=1)
    mixes = [(26, 71, 65)]
    assert len(narrow.analyze(26, mixes)["top"]) == 1
    assert len(wide.analyze(26, mixes)["top"]) >= 2


def test_defaults_come_from_catalog_config(small_catalog):
    explain_cfg = small_catalog.config.explain
    analyzer = RootCauseAnalyzer(small_catalog)
    assert analyzer._top_k == explain_cfg.top_k
    assert analyzer._max_mixes == explain_cfg.root_cause_mixes
