"""explain_mix: simulation-backed reports, determinism, instruments."""

import pytest

from repro.explain import ExplainInstruments, explain_mix
from repro.obs.metrics import Registry
from repro.sampling.steady_state import SteadyStateConfig

MIX = (26, 71)


@pytest.fixture(scope="module")
def report(small_catalog):
    return explain_mix(small_catalog, MIX)


def test_report_covers_every_primary(report):
    assert report.mix == MIX
    assert [t.template_id for t in report.templates] == sorted(set(MIX))
    for entry in report.templates:
        assert entry.samples > 0
        assert entry.mean_latency > 0.0


def test_report_conserves_slowdown(report):
    assert report.max_residual <= 1e-6
    for entry in report.templates:
        attributed = sum(
            sum(row.values()) for row in entry.rows.values()
        ) + sum(entry.self_adjust.values())
        assert entry.slowdown == pytest.approx(attributed, abs=1e-6)


def test_explain_mix_is_deterministic(small_catalog, report):
    again = explain_mix(small_catalog, MIX)
    assert again.to_doc() == report.to_doc()


def test_samples_per_stream_defaults_from_config(small_catalog, report):
    configured = small_catalog.config.explain.samples_per_stream
    assert all(t.samples >= configured for t in report.templates)


def test_samples_override_changes_sample_count(small_catalog, report):
    fewer = explain_mix(small_catalog, MIX, samples_per_stream=2)
    assert fewer.for_template(26).samples < report.for_template(26).samples


def test_explicit_config_wins_over_samples(small_catalog):
    config = SteadyStateConfig(samples_per_stream=2)
    via_config = explain_mix(small_catalog, MIX, config=config)
    via_kwarg = explain_mix(small_catalog, MIX, samples_per_stream=2)
    assert via_config.to_doc() == via_kwarg.to_doc()


def test_instruments_record_report_and_residual(small_catalog):
    registry = Registry()
    instruments = ExplainInstruments(registry)
    report = explain_mix(small_catalog, MIX, instruments=instruments)
    families = {f.name: f for f in registry.collect()}
    assert families["explain_reports_total"].value == 1.0
    attributed = families["explain_queries_attributed_total"].value
    assert attributed == sum(t.samples for t in report.templates)
    assert families["explain_conservation_residual"].snapshot().count == 1
    assert (
        families["explain_slowdown_seconds"].snapshot().count
        == len(report.templates)
    )
