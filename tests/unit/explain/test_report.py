"""Blame aggregation and report rendering over synthetic attributions."""

import pytest

from repro.errors import ExplainError
from repro.explain import QueryAttribution, RESOURCES, aggregate


def _attr(instance_id, template_id, latency, baseline, blame=None, self_adjust=None):
    return QueryAttribution(
        instance_id=instance_id,
        template_id=template_id,
        latency=latency,
        baseline=baseline,
        blame=blame or {},
        self_adjust=self_adjust or {},
    )


def test_aggregate_means_rows_over_samples():
    # Two samples of template 26 blaming instance 10 (template 71) by
    # different amounts: the report row is the per-sample mean.
    attrs = [
        _attr(1, 26, 10.0, 6.0, blame={10: {"seq": 4.0}}),
        _attr(2, 26, 12.0, 6.0, blame={10: {"seq": 6.0}}),
        _attr(10, 71, 8.0, 8.0),
    ]
    report = aggregate((26, 71), attrs, {1: 26, 2: 26, 10: 71})
    entry = report.for_template(26)
    assert entry.samples == 2
    assert entry.mean_latency == pytest.approx(11.0)
    assert entry.mean_baseline == pytest.approx(6.0)
    assert entry.slowdown == pytest.approx(5.0)
    assert entry.rows[71]["seq"] == pytest.approx(5.0)


def test_aggregate_rekeys_instances_by_template():
    # Two co-runner instances of the same template merge into one row.
    attrs = [
        _attr(1, 26, 10.0, 6.0, blame={10: {"seq": 1.0}, 11: {"seq": 2.0}}),
        _attr(10, 71, 8.0, 8.0),
        _attr(11, 71, 8.0, 8.0),
    ]
    report = aggregate((26, 71, 71), attrs, {1: 26, 10: 71, 11: 71})
    assert report.for_template(26).rows[71]["seq"] == pytest.approx(3.0)


def test_aggregate_requires_samples_for_every_mix_template():
    attrs = [_attr(1, 26, 10.0, 6.0)]
    with pytest.raises(ExplainError, match="no attributed samples"):
        aggregate((26, 71), attrs, {1: 26})


def test_aggregate_rejects_unknown_blamed_instance():
    attrs = [_attr(1, 26, 10.0, 6.0, blame={99: {"seq": 1.0}})]
    with pytest.raises(ExplainError, match="unknown instance"):
        aggregate((26,), attrs, {1: 26})


def test_aggregate_tracks_background_and_residual():
    attrs = [
        _attr(
            1,
            26,
            10.0,
            6.0,
            blame={10: {"seq": 3.0}, 20: {"rand": 1.5}},
        ),
        _attr(10, 71, 8.0, 8.0),
    ]
    report = aggregate(
        (26, 71),
        attrs,
        {1: 26, 10: 71, 20: -2},
        background_of={20: True},
    )
    entry = report.for_template(26)
    assert entry.background == (-2,)
    # slowdown 4.0, attributed 4.5 -> residual -0.5 relative to latency.
    assert entry.max_residual == pytest.approx(0.05)
    assert report.max_residual == pytest.approx(0.05)


def test_residual_scale_floors_at_one_second():
    attrs = [_attr(1, 26, 0.5, 0.4, blame={10: {"seq": 0.2}})]
    report = aggregate((26,), attrs, {1: 26, 10: 71})
    # latency < 1s: the relative scale floors at 1.0 (absolute error).
    assert report.for_template(26).max_residual == pytest.approx(0.1)


def _ranked_entry():
    attrs = [
        _attr(
            1,
            26,
            10.0,
            4.0,
            blame={
                10: {"seq": -1.0},
                20: {"seq": 2.0, "cpu": 1.0},
                30: {"rand": 2.5},
            },
            self_adjust={"seq": 1.5},
        ),
        _attr(10, 62, 1.0, 1.0),
        _attr(20, 71, 1.0, 1.0),
        _attr(30, 65, 1.0, 1.0),
    ]
    report = aggregate((26, 62, 71, 65), attrs, {1: 26, 10: 62, 20: 71, 30: 65})
    return report, report.for_template(26)


def test_ranked_orders_by_net_blame_descending():
    _, entry = _ranked_entry()
    assert entry.ranked() == [(71, 3.0), (65, 2.5), (62, -1.0)]
    assert entry.top_blamed(2) == [71, 65]
    assert [co for co, _ in entry.ranked_rows()] == [71, 65, 62]


def test_for_template_rejects_non_primary():
    report, _ = _ranked_entry()
    with pytest.raises(ExplainError, match="not a primary"):
        report.for_template(99)


def test_to_doc_stringifies_rows_and_fills_resources():
    report, entry = _ranked_entry()
    doc = entry.to_doc()
    assert set(doc["rows"]) == {"62", "65", "71"}
    for row in doc["rows"].values():
        assert tuple(row) == RESOURCES  # every resource key present
    assert doc["self"]["seq"] == pytest.approx(1.5)
    assert doc["self"]["cpu"] == 0.0
    assert doc["slowdown"] == pytest.approx(6.0)
    top = report.to_doc()
    assert top["mix"] == [26, 62, 71, 65]
    assert top["max_residual"] == report.max_residual


def test_format_table_renders_rows_and_background_legend():
    attrs = [
        _attr(1, 26, 10.0, 6.0, blame={10: {"seq": 3.0}, 20: {"rand": 1.0}}),
        _attr(10, 71, 8.0, 8.0),
    ]
    report = aggregate(
        (26, 71), attrs, {1: 26, 10: 71, 20: -2}, background_of={20: True}
    )
    table = report.format_table()
    assert "template 26:" in table
    assert "t71" in table
    assert "t-2*" in table  # background marker
    assert "self" in table
    assert "(* background profile)" in table


def test_format_table_without_background_omits_legend():
    attrs = [_attr(1, 26, 10.0, 6.0, blame={10: {"seq": 3.0}}),
             _attr(10, 71, 8.0, 8.0)]
    report = aggregate((26, 71), attrs, {1: 26, 10: 71})
    assert "background profile" not in report.format_table()
