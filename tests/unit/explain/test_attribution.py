"""Blame attribution against the virtual-time engine's records."""

import numpy as np
import pytest

from repro.config import HardwareSpec, SimulationConfig, SystemConfig
from repro.engine.executor import ConcurrentExecutor, SingleShotStream
from repro.engine.profile import Phase, ResourceProfile, reader_profile
from repro.errors import SimulationError
from repro.explain import (
    ExplainRecorder,
    QueryAttribution,
    attribute,
    max_residual,
)
from repro.units import GB, MB


def _config(engine="virtual_time", *, variance=0.0, window=1.0):
    return SystemConfig(
        hardware=HardwareSpec(
            cores=4,
            ram_bytes=GB(1.0),
            seq_bandwidth=MB(100),
            random_iops=120.0,
            random_io_variance=variance,
        ),
        simulation=SimulationConfig(
            engine=engine, scan_share_window=window, restart_cost=0.0
        ),
    )


def _run(profiles, *, engine="virtual_time", variance=0.0, window=1.0,
         background=(), seed=0):
    config = _config(engine, variance=variance, window=window)
    recorder = ExplainRecorder()
    executor = ConcurrentExecutor(
        config, rng=np.random.default_rng(seed), recorder=recorder
    )
    result = executor.run(
        [SingleShotStream(p, name=f"s{i}") for i, p in enumerate(profiles)],
        background=list(background),
    )
    return recorder, result, config


MIXED = [
    ResourceProfile(
        template_id=1,
        phases=(
            Phase(label="scan", relation="facts", seq_bytes=MB(120),
                  cpu_seconds=0.5),
            Phase(label="agg", cpu_seconds=1.5),
        ),
    ),
    ResourceProfile(
        template_id=2,
        phases=(
            Phase(label="probe", rand_ops=40.0, cpu_seconds=0.3),
        ),
    ),
    ResourceProfile(
        template_id=3,
        phases=(
            Phase(label="scan", relation="orders", seq_bytes=MB(200)),
        ),
    ),
]


def test_conservation_on_mixed_workload():
    recorder, result, config = _run(MIXED, variance=0.35, seed=7)
    attrs = attribute(recorder, result, config)
    assert len(attrs) == len(MIXED)
    assert max_residual(attrs) < 1e-9
    for attr in attrs:
        assert attr.slowdown == pytest.approx(
            attr.total_attributed(), abs=1e-9
        )


def test_contended_query_blames_positive_seconds():
    recorder, result, config = _run(MIXED, seed=3)
    attrs = {a.template_id: a for a in attribute(recorder, result, config)}
    # Both scanners share the disk: each is slowed and blames the other.
    scanner = attrs[1]
    assert scanner.slowdown > 0.0
    others = {tid for tid in attrs if tid != 1}
    blamed = {
        attrs_by_inst
        for attrs_by_inst in scanner.blame
    }
    assert blamed  # at least one co-runner row
    net = sum(sum(row.values()) for row in scanner.blame.values())
    assert net > 0.0
    assert others  # sanity


def test_shared_scan_co_members_receive_negative_seq_blame():
    profiles = [
        ResourceProfile(
            template_id=5,
            phases=(Phase(label="scan", relation="facts", seq_bytes=MB(150)),),
        )
        for _ in range(3)
    ]
    recorder, result, config = _run(profiles, window=1.0)
    attrs = attribute(recorder, result, config)
    assert max_residual(attrs) < 1e-9
    negative = [
        seconds
        for attr in attrs
        for row in attr.blame.values()
        for resource, seconds in row.items()
        if resource == "seq" and seconds < 0.0
    ]
    assert negative, "synchronized scans must credit their co-members"
    # The credit is offset by a positive self entry, keeping totals
    # conserved per query.
    for attr in attrs:
        assert attr.self_adjust.get("seq", 0.0) >= 0.0


def test_background_reader_is_a_blame_source():
    recorder, result, config = _run(
        MIXED[:1], background=[reader_profile(MB(300))]
    )
    attrs = attribute(recorder, result, config)
    primary = next(a for a in attrs if a.template_id == 1)
    background_ids = {
        record[0].instance_id
        for record in recorder.phase_records()
        if record[0].background
    }
    assert background_ids
    blamed_background = background_ids & set(primary.blame)
    assert blamed_background, "spoiler reader must appear in the blame rows"
    assert max_residual(attrs) < 1e-9


def test_rand_variance_draw_is_a_self_entry():
    profile = ResourceProfile(
        template_id=7, phases=(Phase(label="probe", rand_ops=50.0),)
    )
    recorder, result, config = _run([profile], variance=0.5, seed=11)
    (attr,) = attribute(recorder, result, config)
    # Alone on the box: the only slowdown source is the variance draw,
    # which is the query's own doing.
    assert attr.blame == {} or all(
        abs(sum(row.values())) < 1e-12 for row in attr.blame.values()
    )
    assert attr.slowdown == pytest.approx(
        attr.self_adjust.get("rand", 0.0), abs=1e-9
    )


def test_reference_engine_refuses_recorder():
    config = _config("reference")
    executor = ConcurrentExecutor(
        config, rng=np.random.default_rng(0), recorder=ExplainRecorder()
    )
    with pytest.raises(SimulationError, match="virtual-time engine"):
        executor.run([SingleShotStream(MIXED[0], name="s0")])


def test_batched_engine_records_via_scalar_fallback():
    plain_cfg = _config("batched")
    executor = ConcurrentExecutor(plain_cfg, rng=np.random.default_rng(0))
    plain = executor.run(
        [SingleShotStream(p, name=f"s{i}") for i, p in enumerate(MIXED)]
    )
    recorder, recorded, _ = _run(MIXED, engine="batched")
    assert len(recorder.phases) > 0
    for a, b in zip(plain.completions, recorded.completions):
        assert a.stats == b.stats
    assert plain.elapsed == recorded.elapsed


def test_recorder_begin_run_resets_records():
    recorder, _, _ = _run(MIXED[:1])
    assert len(recorder) > 0
    assert recorder.io_exits
    recorder.begin_run()
    assert len(recorder) == 0
    assert recorder.io_exits == []


def test_max_residual_of_nothing_is_zero():
    assert max_residual([]) == 0.0
    perfect = QueryAttribution(
        instance_id=1, template_id=1, latency=2.0, baseline=2.0
    )
    assert max_residual([perfect]) == 0.0
