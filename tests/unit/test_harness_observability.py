"""ExperimentContext observability: auto-wiring, cache events, spans."""

from dataclasses import replace

import pytest

from repro.config import DEFAULT_CONFIG, ObservabilityConfig
from repro.experiments import ExperimentContext
from repro.obs.metrics import Registry
from repro.obs.tracing import TraceRecorder
from repro.sampling.steady_state import SteadyStateConfig
from repro.workload.catalog import TemplateCatalog


def _tiny_context(**ctx_kwargs):
    config = replace(
        DEFAULT_CONFIG,
        observability=ObservabilityConfig(campaign_metrics=True, trace=True),
    )
    catalog = TemplateCatalog(config=config).subset((26, 71))
    return ExperimentContext(
        catalog=catalog,
        mpls=(2,),
        lhs_runs=1,
        steady_config=SteadyStateConfig(samples_per_stream=2),
        **ctx_kwargs,
    )


def test_observability_is_off_by_default():
    ctx = ExperimentContext.small(mpls=(2,), template_ids=(26, 71))
    assert ctx.metrics is None
    assert ctx.tracer is None


def test_config_flags_auto_create_registry_and_tracer():
    ctx = _tiny_context()
    assert isinstance(ctx.metrics, Registry)
    assert isinstance(ctx.tracer, TraceRecorder)


def test_explicit_registry_wins_over_auto_creation():
    reg = Registry()
    ctx = _tiny_context(metrics=reg)
    assert ctx.metrics is reg


@pytest.fixture(scope="module")
def observed_context():
    ctx = _tiny_context()
    ctx.training_data()
    return ctx


def test_campaign_records_miss_then_memory_hits(observed_context):
    ctx = observed_context
    ctx.training_data()
    ctx.training_data()
    events = ctx.metrics.get("campaign_cache_events_total")
    assert events.labels("miss", "memory").value == 1
    assert events.labels("hit", "memory").value >= 2


def test_campaign_metrics_cover_planning_and_execution(observed_context):
    reg = observed_context.metrics
    assert reg.get("campaign_templates").value == 2
    planned = reg.get("campaign_tasks_planned").value
    assert planned > 0
    assert reg.get("campaign_tasks_total").total() == planned
    kinds = {values[0] for values, _ in reg.get("campaign_tasks_total").children()}
    assert kinds == {"mix", "profile", "spoiler"}


def test_campaign_emits_phase_spans(observed_context):
    tracer = observed_context.tracer
    names = [span.name for span in tracer.spans]
    assert "campaign.collect" in names
    for phase in ("campaign.design", "campaign.execute", "campaign.assemble"):
        assert phase in names, names
    root = tracer.find("campaign.collect")[0]
    execute = tracer.find("campaign.execute")[0]
    assert execute.parent_id == root.span_id
    assert root.duration >= execute.duration


def test_span_ids_are_reproducible_across_runs():
    first = _tiny_context()
    first.training_data()
    second = _tiny_context()
    second.training_data()
    ids = lambda ctx: [s.span_id for s in ctx.tracer.spans]  # noqa: E731
    assert ids(first) == ids(second)
