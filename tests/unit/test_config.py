"""Configuration validation tests."""

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    HardwareSpec,
    SimulationConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError
from repro.units import GB


def test_default_config_matches_paper_testbed():
    hw = DEFAULT_CONFIG.hardware
    assert hw.cores == 8
    assert hw.ram_bytes == GB(8)


def test_hardware_rejects_nonpositive_cores():
    with pytest.raises(ConfigurationError):
        HardwareSpec(cores=0)


def test_hardware_rejects_nonpositive_bandwidth():
    with pytest.raises(ConfigurationError):
        HardwareSpec(seq_bandwidth=0)


def test_hardware_rejects_negative_variance():
    with pytest.raises(ConfigurationError):
        HardwareSpec(random_io_variance=-0.1)


def test_simulation_rejects_bad_overlap():
    with pytest.raises(ConfigurationError):
        SimulationConfig(cpu_io_overlap=1.5)


def test_simulation_rejects_negative_spill():
    with pytest.raises(ConfigurationError):
        SimulationConfig(spill_multiplier=-1)


def test_simulation_rejects_negative_thrash():
    with pytest.raises(ConfigurationError):
        SimulationConfig(spill_thrash=-0.5)


def test_simulation_rejects_bad_share_window():
    with pytest.raises(ConfigurationError):
        SimulationConfig(scan_share_window=2.0)


def test_with_seed_changes_only_seed():
    derived = DEFAULT_CONFIG.with_seed(99)
    assert derived.simulation.seed == 99
    assert derived.hardware == DEFAULT_CONFIG.hardware
    assert derived.simulation.spill_multiplier == (
        DEFAULT_CONFIG.simulation.spill_multiplier
    )


def test_configs_are_frozen():
    with pytest.raises(AttributeError):
        DEFAULT_CONFIG.hardware.cores = 4  # type: ignore[misc]


def test_system_config_equality_by_value():
    assert SystemConfig() == SystemConfig()


def test_simulation_rejects_unknown_cache_eviction():
    with pytest.raises(ConfigurationError):
        SimulationConfig(cache_eviction="mru")


def test_lru_cache_eviction_accepted():
    assert SimulationConfig(cache_eviction="lru").cache_eviction == "lru"


def test_serving_config_defaults_valid():
    from repro.config import ServingConfig

    serving = DEFAULT_CONFIG.serving
    assert serving == ServingConfig()
    assert serving.workers >= 1
    assert serving.cache_ttl > 0


def test_serving_config_rejects_bad_values():
    from repro.config import ServingConfig

    with pytest.raises(ConfigurationError):
        ServingConfig(port=70000)
    with pytest.raises(ConfigurationError):
        ServingConfig(workers=0)
    with pytest.raises(ConfigurationError):
        ServingConfig(batch_window=-0.1)
    with pytest.raises(ConfigurationError):
        ServingConfig(max_batch=0)
    with pytest.raises(ConfigurationError):
        ServingConfig(request_timeout=0.0)
    with pytest.raises(ConfigurationError):
        ServingConfig(cache_entries=-1)
    with pytest.raises(ConfigurationError):
        ServingConfig(cache_ttl=0.0)
    with pytest.raises(ConfigurationError):
        ServingConfig(sla_factor=0.5)
    with pytest.raises(ConfigurationError):
        ServingConfig(max_mpl=0)


def test_campaign_config_defaults_are_serial():
    assert DEFAULT_CONFIG.campaign.jobs == 1
    assert DEFAULT_CONFIG.campaign.chunk_size == 0


def test_campaign_config_rejects_bad_values():
    from repro.config import CampaignConfig

    with pytest.raises(ConfigurationError):
        CampaignConfig(jobs=-1)
    with pytest.raises(ConfigurationError):
        CampaignConfig(chunk_size=-1)


def test_with_jobs_changes_only_campaign_jobs():
    config = SystemConfig().with_jobs(4)
    assert config.campaign.jobs == 4
    assert config.simulation == SystemConfig().simulation
    assert config.hardware == SystemConfig().hardware
