"""Shared-memory model artifacts: pack/attach round-trip bit-equality,
segment cleanup, and the control block's seqlock + worker slots."""

import json

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving.registry import build_artifact, load_artifact, save_artifact
from repro.serving.shm import (
    _TABLE_ARRAYS,
    ControlBlock,
    attach_model,
    pack_model,
)


@pytest.fixture(scope="module")
def loaded(small_contender, tmp_path_factory):
    path = tmp_path_factory.mktemp("shm") / "model.json"
    save_artifact(small_contender, path)
    return load_artifact(path)


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    from repro.serving.shm import _untrack

    _untrack(probe)
    probe.close()
    return True


def test_pack_attach_round_trip_is_bit_identical(loaded):
    packed, segment = pack_model(loaded, generation=1)
    attached = None
    try:
        attached = attach_model(packed.name)
        assert attached.generation == 1
        assert attached.model.info.fingerprint == loaded.info.fingerprint
        assert attached.model.info.version == loaded.info.version

        original = loaded.contender.calculator().tables()
        shared = attached.model.contender.calculator().tables()
        for field in _TABLE_ARRAYS:
            a = getattr(original, field)
            b = getattr(shared, field)
            assert a.dtype == b.dtype and a.shape == b.shape
            assert a.tobytes() == b.tobytes()  # bitwise, not just np.equal
            assert not b.flags.writeable
        assert shared.index == original.index
        assert shared.tables == original.tables

        # Predictions through the rebuilt model are bitwise-identical.
        ids = loaded.contender.template_ids
        pairs = [(a, (a, b)) for a in ids for b in ids[:3]]
        assert attached.model.contender.predict_known_many(pairs) == (
            loaded.contender.predict_known_many(pairs)
        )
    finally:
        if attached is not None:
            attached.close()
        segment.close()
        segment.unlink()


def test_attached_arrays_are_views_of_the_segment(loaded):
    packed, segment = pack_model(loaded, generation=3)
    attached = attach_model(packed.name)
    try:
        tables = attached.model.contender.calculator().tables()
        for field in _TABLE_ARRAYS:
            assert not getattr(tables, field).flags.owndata  # zero-copy
    finally:
        attached.close()
        segment.close()
        segment.unlink()


def test_pack_accepts_prebuilt_artifact_doc(loaded):
    doc = build_artifact(loaded.contender)
    packed, segment = pack_model(loaded, generation=2, artifact_doc=doc)
    try:
        attached = attach_model(packed.name)
        try:
            got = json.loads(
                attached.model.contender.data.to_json()
            )
            assert got == doc["training"]
        finally:
            attached.close()
    finally:
        segment.close()
        segment.unlink()


def test_unlink_removes_the_segment(loaded):
    packed, segment = pack_model(loaded, generation=1)
    assert _segment_exists(packed.name)
    segment.close()
    segment.unlink()
    assert not _segment_exists(packed.name)
    with pytest.raises(ServingError):
        attach_model(packed.name)


def test_worker_close_does_not_unlink(loaded):
    packed, segment = pack_model(loaded, generation=1)
    try:
        attached = attach_model(packed.name)
        attached.close()  # a worker detaching...
        assert _segment_exists(packed.name)  # ...must not destroy the model
        again = attach_model(packed.name)
        assert again.model.info.fingerprint == loaded.info.fingerprint
        again.close()
    finally:
        segment.close()
        segment.unlink()


# ----------------------------------------------------------------------
# The control block.


def test_control_block_publish_read_round_trip():
    block = ControlBlock.create(workers=3)
    try:
        state = block.read()
        assert state.generation == 0 and state.segment == ""
        block.publish(
            generation=4,
            segment="seg-current",
            fingerprint="f" * 64,
            version="v1-abcdef",
            previous_segment="seg-old",
        )
        state = block.read()
        assert state.generation == 4
        assert state.segment == "seg-current"
        assert state.previous_segment == "seg-old"
        assert state.fingerprint == "f" * 64
        assert state.version == "v1-abcdef"
        assert block.generation() == 4
    finally:
        block.close()
        block.unlink()


def test_control_block_attach_sees_publishes():
    block = ControlBlock.create(workers=2)
    try:
        other = ControlBlock.attach(block.name)
        assert other.worker_count == 2
        block.publish(1, "seg-a", "fp", "v1")
        assert other.read().segment == "seg-a"
        other.heartbeat(1, requests=7, predictions=5)
        statuses = block.worker_statuses()
        assert statuses[1].requests == 7
        assert statuses[1].predictions == 5
        assert statuses[1].alive()
        assert statuses[0].pid == 0 and not statuses[0].alive()
        other.close()
    finally:
        block.close()
        block.unlink()


def test_control_block_workers_doc():
    block = ControlBlock.create(workers=2)
    try:
        block.heartbeat(0, requests=3, predictions=2)
        doc = block.workers_doc()
        assert doc["count"] == 2 and doc["alive"] == 1
        assert doc["workers"][0]["alive"] is True
        assert doc["workers"][0]["requests"] == 3
        assert doc["workers"][1]["alive"] is False
        assert doc["workers"][1]["heartbeat_age_seconds"] is None
    finally:
        block.close()
        block.unlink()


def test_control_block_reader_retries_in_flight_publish():
    block = ControlBlock.create(workers=1)
    try:
        block.publish(1, "seg-a", "fp-a", "v-a")
        # Simulate a torn write: force the seqlock odd, patch the
        # generation, and verify read() refuses to return until the
        # publish completes.
        block._write_seq(3)
        import threading

        results = []

        def reader():
            results.append(block.read())

        t = threading.Thread(target=reader)
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive()  # parked on the odd seqlock
        block._write_seq(4)
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert results[0].segment == "seg-a"
    finally:
        block.close()
        block.unlink()


def test_slot_index_bounds():
    block = ControlBlock.create(workers=1)
    try:
        with pytest.raises(ServingError):
            block.heartbeat(1, requests=0, predictions=0)
        with pytest.raises(ServingError):
            block.heartbeat(-1, requests=0, predictions=0)
    finally:
        block.close()
        block.unlink()
