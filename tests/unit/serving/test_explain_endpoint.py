"""``POST /v1/explain``: blame reports served with generation fencing."""

import json

import pytest

from repro.config import LifecycleConfig, ServingConfig
from repro.errors import ProtocolError, ServingError
from repro.serving import (
    ModelRegistry,
    PredictionClient,
    PredictionServer,
    RegistryModelProvider,
    ServingApp,
    save_artifact,
)

MIX = [26, 71]


@pytest.fixture(scope="module")
def artifact_path(small_contender, tmp_path_factory):
    path = tmp_path_factory.mktemp("explain") / "model.json"
    save_artifact(small_contender, path)
    return path


@pytest.fixture(scope="module")
def app(artifact_path):
    registry = ModelRegistry()
    registry.register("default", artifact_path)
    provider = RegistryModelProvider(registry, "default")
    app = ServingApp(
        provider, config=ServingConfig(workers=1, batch_window=0.0)
    )
    yield app
    app.close()


def _post_explain(app, doc):
    response = app.handle("POST", "/v1/explain", json.dumps(doc).encode())
    return response.status, json.loads(response.body.decode())


def test_explain_returns_report_and_ranking(app):
    status, doc = _post_explain(app, {"mix": MIX})
    assert status == 200
    assert doc["cached"] is False
    assert doc["model_version"]
    report = doc["report"]
    assert report["mix"] == MIX
    assert report["max_residual"] <= 1e-6
    primaries = [entry["template_id"] for entry in report["templates"]]
    assert primaries == sorted(set(MIX))
    # Each primary's ranking names the other member of the pair first.
    assert doc["top"]["26"][0] == 71
    assert doc["top"]["71"][0] == 26


def test_explain_is_cached_and_identical_on_repeat(app):
    first_status, first = _post_explain(app, {"mix": MIX})
    status, second = _post_explain(app, {"mix": MIX})
    assert first_status == status == 200
    assert second["cached"] is True
    assert second["report"] == first["report"]
    assert app.counter_snapshot()["explain"] >= 2


def test_explain_top_k_truncates(app):
    status, doc = _post_explain(app, {"mix": [26, 71, 65], "top_k": 1})
    assert status == 200
    assert all(len(ranked) == 1 for ranked in doc["top"].values())


def test_explain_rejects_bad_requests(app):
    status, doc = _post_explain(app, {"mix": []})
    assert status == 400
    assert doc["type"] == "protocol"
    status, doc = _post_explain(app, {"mix": MIX, "top_k": 0})
    assert status == 400


def test_explain_unknown_template_maps_to_422(app):
    status, doc = _post_explain(app, {"mix": [26, 987654]})
    assert status == 422
    assert doc["type"] == "model"


def test_explain_backend_is_lazy_and_reused(app):
    first = app._explain_parts()
    assert app._explain_parts() is first


def test_client_explain_round_trip(artifact_path):
    config = ServingConfig(port=0, workers=1, batch_window=0.0)
    with PredictionServer.from_artifact(artifact_path, config=config) as srv:
        with PredictionClient(srv.host, srv.port) as cli:
            response = cli.explain(MIX, top_k=2)
            assert response.model_version
            assert response.top[26][0] == 71
            assert response.report["mix"] == MIX
            again = cli.explain(MIX, top_k=2)
            assert again.cached is True
            with pytest.raises(ProtocolError):
                cli.explain([])


#: Small windows so drift latches within a handful of observations.
FAST = LifecycleConfig(
    reference_window=4, test_window=2, min_samples=4, residual_window=8
)


def test_stats_attach_root_cause_for_drifted_templates(artifact_path):
    registry = ModelRegistry()
    registry.register("default", artifact_path)
    provider = RegistryModelProvider(registry, "default")
    app = ServingApp(
        provider,
        config=ServingConfig(workers=1, batch_window=0.0),
        lifecycle=FAST,
    )
    try:
        predicted = 100.0
        for i in range(14):
            observed = 100.0 if i < 8 else 150.0
            app.ingest_observation(26, predicted, observed, mix=tuple(MIX))
        assert app.monitor.drifted_templates() == [26]
        response = app.handle("GET", "/v1/stats", b"")
        doc = json.loads(response.body.decode())
        root_cause = doc["lifecycle"]["root_cause"]
        analysis = root_cause["26"]
        assert analysis["mixes"] == [MIX]
        assert analysis["top"][0]["template_id"] == 71
    finally:
        app.close()


def test_observation_without_mix_skips_root_cause(artifact_path):
    registry = ModelRegistry()
    registry.register("default", artifact_path)
    provider = RegistryModelProvider(registry, "default")
    app = ServingApp(
        provider,
        config=ServingConfig(workers=1, batch_window=0.0),
        lifecycle=FAST,
    )
    try:
        for i in range(14):
            observed = 100.0 if i < 8 else 150.0
            app.ingest_observation(26, 100.0, observed)
        assert app.monitor.drifted_templates() == [26]
        snapshot = app.monitor.snapshot()
        assert "root_cause" not in snapshot
    finally:
        app.close()


def test_ingest_observation_requires_monitor(artifact_path):
    registry = ModelRegistry()
    registry.register("default", artifact_path)
    provider = RegistryModelProvider(registry, "default")
    app = ServingApp(
        provider,
        config=ServingConfig(workers=1, batch_window=0.0),
        lifecycle=LifecycleConfig(enabled=False),
    )
    try:
        with pytest.raises(ServingError, match="disabled"):
            app.ingest_observation(26, 1.0, 1.0)
    finally:
        app.close()
