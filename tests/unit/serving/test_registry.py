"""Registry artifact round-trip and validation tests."""

import json
from pathlib import Path

import pytest

#: Lets the cross-process test import `repro` from a plain checkout.
_SRC_DIR = Path(__file__).resolve().parents[3] / "src"

from repro.core.contender import Contender, ContenderOptions, SpoilerMode
from repro.core.cqi import CQIVariant
from repro.core.isolated import perturb_profile
from repro.errors import ArtifactError, ServingError
from repro.serving.registry import (
    ARTIFACT_FORMAT,
    SCHEMA_VERSION,
    ModelRegistry,
    build_artifact,
    load_artifact,
    save_artifact,
)


@pytest.fixture()
def artifact_path(small_contender, tmp_path):
    path = tmp_path / "model.json"
    save_artifact(small_contender, path)
    return path


def test_round_trip_predictions_bitwise_identical(
    small_contender, artifact_path
):
    """Train → save → load must reproduce predictions exactly."""
    restored = load_artifact(artifact_path).contender
    ids = small_contender.template_ids
    for primary in ids:
        for other in ids:
            mix = (primary, other)
            assert restored.predict_known(primary, mix) == (
                small_contender.predict_known(primary, mix)
            )


def test_round_trip_new_template_identical(small_contender, artifact_path, rng):
    import dataclasses

    restored = load_artifact(artifact_path).contender
    profile = dataclasses.replace(
        perturb_profile(small_contender.data.profile(26), rng),
        template_id=999,
    )
    mix = (999, 65)
    assert restored.predict_new(
        profile, mix, spoiler_mode=SpoilerMode.KNN
    ) == small_contender.predict_new(profile, mix, spoiler_mode=SpoilerMode.KNN)


def test_verify_accepts_faithful_artifact(artifact_path):
    loaded = load_artifact(artifact_path, verify=True)
    assert loaded.info.schema_version == SCHEMA_VERSION


def test_verify_passes_across_processes(artifact_path):
    """An artifact packed here must verify under a different hash seed.

    Set iteration order changes with hash randomization; CQI sums must
    not depend on it or stored coefficients stop reproducing bit-exactly
    in the serving process.
    """
    import os
    import subprocess
    import sys

    env = dict(os.environ, PYTHONHASHSEED="12345")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), str(_SRC_DIR)) if p
    )
    script = (
        "from repro.serving.registry import load_artifact; "
        f"load_artifact({str(artifact_path)!r}, verify=True)"
    )
    subprocess.run(
        [sys.executable, "-c", script], env=env, check=True, timeout=120
    )


def test_options_round_trip(small_training_data, tmp_path):
    options = ContenderOptions(
        cqi_variant=CQIVariant.POSITIVE_IO, knn_k=2, drop_outliers=False
    )
    path = tmp_path / "model.json"
    save_artifact(Contender(small_training_data, options), path)
    assert load_artifact(path).info.options == options


def test_artifact_info_contents(small_contender, artifact_path):
    info = load_artifact(artifact_path).info
    assert list(info.template_ids) == small_contender.template_ids
    assert info.qs_mpls == (2,)
    assert info.version.startswith(f"v{SCHEMA_VERSION}-")


def test_build_artifact_stores_qs_coefficients(small_contender):
    doc = build_artifact(small_contender)
    assert doc["format"] == ARTIFACT_FORMAT
    stored = doc["models"]["qs"]["2"]["26"]
    fitted = small_contender.qs_model(26, 2)
    assert stored["slope"] == fitted.slope
    assert stored["intercept"] == fitted.intercept


def test_missing_artifact_rejected(tmp_path):
    with pytest.raises(ArtifactError, match="cannot read"):
        load_artifact(tmp_path / "nope.json")


def test_unparsable_artifact_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{ not json")
    with pytest.raises(ArtifactError, match="not valid JSON"):
        load_artifact(path)


def test_wrong_format_rejected(tmp_path, artifact_path):
    doc = json.loads(artifact_path.read_text())
    doc["format"] = "something-else"
    artifact_path.write_text(json.dumps(doc))
    with pytest.raises(ArtifactError, match="not a contender-model"):
        load_artifact(artifact_path)


def test_schema_version_mismatch_rejected(artifact_path):
    doc = json.loads(artifact_path.read_text())
    doc["schema_version"] = SCHEMA_VERSION + 1
    artifact_path.write_text(json.dumps(doc))
    with pytest.raises(ArtifactError, match="schema version"):
        load_artifact(artifact_path)


def test_tampered_training_data_rejected(artifact_path):
    doc = json.loads(artifact_path.read_text())
    first = next(iter(doc["training"]["profiles"]))
    doc["training"]["profiles"][first]["isolated_latency"] *= 2.0
    artifact_path.write_text(json.dumps(doc))
    with pytest.raises(ArtifactError, match="fingerprint"):
        load_artifact(artifact_path)


def test_missing_keys_rejected(artifact_path):
    doc = json.loads(artifact_path.read_text())
    del doc["models"]
    artifact_path.write_text(json.dumps(doc))
    with pytest.raises(ArtifactError, match="missing artifact keys"):
        load_artifact(artifact_path)


# ----------------------------------------------------------------------
# ModelRegistry.


def test_registry_register_and_get(artifact_path):
    registry = ModelRegistry()
    entry = registry.register("default", artifact_path)
    assert entry.generation == 1
    assert registry.get("default") is entry.contender
    assert registry.names == ["default"]


def test_registry_unknown_name(artifact_path):
    registry = ModelRegistry()
    with pytest.raises(ServingError, match="no model registered"):
        registry.get("missing")


def test_registry_reload_noop_when_unchanged(artifact_path):
    registry = ModelRegistry()
    registry.register("default", artifact_path)
    assert registry.maybe_reload("default") is None


def test_registry_touch_without_change_is_noop(artifact_path):
    import os

    registry = ModelRegistry()
    registry.register("default", artifact_path)
    os.utime(artifact_path, (0, 0))
    assert registry.maybe_reload("default") is None
    assert registry.entry("default").generation == 1


def test_registry_hot_reload_on_content_change(
    small_training_data, artifact_path
):
    registry = ModelRegistry()
    registry.register("default", artifact_path)
    before = registry.get("default")

    import os

    smaller = small_training_data.restricted_to(
        small_training_data.template_ids[:-1]
    )
    save_artifact(Contender(smaller), artifact_path)
    os.utime(artifact_path, (1, 1))  # force an mtime difference

    updated = registry.maybe_reload("default")
    assert updated is not None
    assert updated.generation == 2
    assert registry.get("default") is not before
    assert len(registry.get("default").template_ids) == (
        len(before.template_ids) - 1
    )
