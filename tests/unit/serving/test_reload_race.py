"""Hot-reload consistency: readers must never see a half-swapped model.

A reload replaces the whole :class:`RegistryEntry` atomically; any
reader that snapshots the entry once gets a (model, version, generation)
triple from a single artifact.  These tests hammer that contract from
many threads while a writer flips the backing file between two models
with different predictions.
"""

import os
import threading

import pytest

from repro.core.contender import Contender
from repro.serving.registry import ModelRegistry, load_artifact, save_artifact

MIX = (26, 65)


@pytest.fixture(scope="module")
def variants(small_contender, small_training_data, tmp_path_factory):
    """Two artifacts (bytes) whose predictions for MIX differ, plus the
    expected prediction keyed by artifact version."""
    tmp = tmp_path_factory.mktemp("race")
    smaller = Contender(
        small_training_data.restricted_to(
            [t for t in small_training_data.template_ids if t != 22]
        )
    )
    blobs = []
    expected = {}
    for i, model in enumerate((small_contender, smaller)):
        path = tmp / f"variant{i}.json"
        save_artifact(model, path)
        version = load_artifact(path).info.version
        blobs.append(path.read_bytes())
        expected[version] = model.predict_known(*MIX[:1], MIX)
    assert len(expected) == 2, "variants must have distinct versions"
    assert len(set(expected.values())) == 2, "variants must predict apart"
    return blobs, expected


def test_entry_snapshot_stays_consistent_under_reload_hammer(
    variants, tmp_path
):
    blobs, expected = variants
    path = tmp_path / "model.json"
    path.write_bytes(blobs[0])
    registry = ModelRegistry()
    registry.register("default", path)

    stop = threading.Event()
    failures = []

    def read():
        while not stop.is_set():
            # One snapshot, then only snapshot-derived state: the
            # version seen and the prediction served must come from the
            # same artifact even while the writer is mid-swap.
            entry = registry.entry("default")
            version = entry.model.info.version
            latency = entry.model.contender.predict_known(MIX[0], MIX)
            if latency != expected[version]:
                failures.append((version, latency))
                return

    readers = [threading.Thread(target=read) for _ in range(4)]
    for t in readers:
        t.start()
    try:
        for flip in range(1, 13):
            path.write_bytes(blobs[flip % 2])
            os.utime(path, (flip, flip))
            updated = registry.maybe_reload("default")
            assert updated is not None
            assert updated.generation == flip + 1
    finally:
        stop.set()
        for t in readers:
            t.join()
    assert failures == []


def test_generation_is_monotonic_under_concurrent_reload_calls(
    variants, tmp_path
):
    blobs, _ = variants
    path = tmp_path / "model.json"
    path.write_bytes(blobs[0])
    registry = ModelRegistry()
    registry.register("default", path)
    path.write_bytes(blobs[1])
    os.utime(path, (1, 1))

    generations = []
    barrier = threading.Barrier(4)

    def reload():
        barrier.wait()
        updated = registry.maybe_reload("default")
        if updated is not None:
            generations.append(updated.generation)

    threads = [threading.Thread(target=reload) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # However the four calls raced, the file changed once: the swap
    # happened at least once and every observed generation is unique.
    assert generations
    assert len(set(generations)) == len(generations)
    assert registry.entry("default").generation == 1 + len(generations)
