"""Request-batcher tests: coalescing, fan-out, error isolation, shutdown."""

import threading

import pytest

from repro.errors import ModelError, ServingError
from repro.serving.batching import RequestBatcher


class CountingCompute:
    """A compute_batch callable that records every batch it runs."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.batches = []

    def __call__(self, keys):
        with self.lock:
            self.batches.append(list(keys))
        return {key: ("value", key) for key in keys}

    @property
    def computed_keys(self):
        with self.lock:
            return [key for batch in self.batches for key in batch]


def test_single_request_round_trip():
    compute = CountingCompute()
    with RequestBatcher(compute, workers=1, batch_window=0.0) as batcher:
        assert batcher.submit("k").result(timeout=5.0) == ("value", "k")
    assert compute.computed_keys == ["k"]


def test_duplicate_keys_coalesce_into_one_computation():
    compute = CountingCompute()
    # One worker with a generous window: every concurrent submission
    # lands in the worker's first batch.
    with RequestBatcher(compute, workers=1, batch_window=0.2, max_batch=64) as batcher:
        start = threading.Barrier(8)
        futures = []
        futures_lock = threading.Lock()

        def submit():
            start.wait()
            future = batcher.submit("hot-key")
            with futures_lock:
                futures.append(future)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [f.result(timeout=5.0) for f in futures]

    assert results == [("value", "hot-key")] * 8
    # 8 submissions, strictly fewer computations (typically 1-2).
    assert len(compute.computed_keys) < 8
    stats = batcher.stats()
    assert stats.requests == 8
    assert stats.coalesced == stats.requests - stats.unique_keys > 0


def test_distinct_keys_all_computed():
    compute = CountingCompute()
    with RequestBatcher(compute, workers=2, batch_window=0.01) as batcher:
        futures = {k: batcher.submit(k) for k in range(20)}
        for key, future in futures.items():
            assert future.result(timeout=5.0) == ("value", key)
    assert sorted(compute.computed_keys) == sorted(range(20))


def test_per_key_exception_fails_only_that_request():
    def compute(keys):
        return {
            k: (ModelError("bad key") if k == "bad" else ("value", k))
            for k in keys
        }

    with RequestBatcher(compute, workers=1, batch_window=0.05) as batcher:
        good = batcher.submit("good")
        bad = batcher.submit("bad")
        assert good.result(timeout=5.0) == ("value", "good")
        with pytest.raises(ModelError, match="bad key"):
            bad.result(timeout=5.0)


def test_compute_crash_fails_whole_batch():
    def compute(keys):
        raise RuntimeError("model exploded")

    with RequestBatcher(compute, workers=1, batch_window=0.05) as batcher:
        future = batcher.submit("k")
        with pytest.raises(RuntimeError, match="model exploded"):
            future.result(timeout=5.0)


def test_missing_result_fails_that_request():
    def compute(keys):
        return {}

    with RequestBatcher(compute, workers=1, batch_window=0.0) as batcher:
        future = batcher.submit("k")
        with pytest.raises(ServingError, match="no result"):
            future.result(timeout=5.0)


def test_max_batch_respected():
    compute = CountingCompute()
    with RequestBatcher(compute, workers=1, batch_window=0.2, max_batch=4) as batcher:
        futures = [batcher.submit(i) for i in range(12)]
        for future in futures:
            future.result(timeout=5.0)
    assert all(len(batch) <= 4 for batch in compute.batches)


def test_submit_after_close_rejected():
    batcher = RequestBatcher(CountingCompute(), workers=1)
    batcher.close()
    with pytest.raises(ServingError, match="shut down"):
        batcher.submit("k")


def test_close_is_idempotent():
    batcher = RequestBatcher(CountingCompute(), workers=2)
    batcher.close()
    batcher.close()


def test_concurrent_submitters_under_load():
    """8 submitter threads × 25 requests: everything resolves correctly."""
    compute = CountingCompute()
    results = {}
    results_lock = threading.Lock()
    with RequestBatcher(compute, workers=4, batch_window=0.002) as batcher:

        def submit(worker: int) -> None:
            for i in range(25):
                key = (worker % 4, i % 5)  # heavy key overlap across threads
                value = batcher.submit(key).result(timeout=5.0)
                with results_lock:
                    results[(worker, i)] = (key, value)

        threads = [
            threading.Thread(target=submit, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    assert len(results) == 200
    for key, value in results.values():
        assert value == ("value", key)
    assert batcher.stats().requests == 200
