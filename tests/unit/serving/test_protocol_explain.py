"""Wire forms for explain plus the response-side parsers.

The original protocol tests cover the request-side hot paths; these pin
the explain request/response pair and the ``from_doc`` parsers the
client exercises (batch, observe, health), including their rejection
branches.
"""

import pytest

from repro.core.training import TemplateProfile
from repro.errors import ProtocolError
from repro.serving.protocol import (
    BatchPredictRequest,
    BatchPredictResponse,
    ExplainRequest,
    ExplainResponse,
    HealthResponse,
    ObserveRequest,
    ObserveResponse,
    PredictResponse,
    profile_from_doc,
    profile_to_doc,
)


# -- ExplainRequest ----------------------------------------------------


def test_explain_request_roundtrip():
    request = ExplainRequest(mix=(26, 71), top_k=3)
    doc = request.to_doc()
    assert doc == {"mix": [26, 71], "top_k": 3}
    assert ExplainRequest.from_doc(doc) == request


def test_explain_request_top_k_is_optional():
    request = ExplainRequest.from_doc({"mix": [26]})
    assert request.top_k is None
    assert "top_k" not in request.to_doc()


@pytest.mark.parametrize(
    "doc, message",
    [
        ({"mix": []}, "must not be empty"),
        ({"mix": [26], "top_k": 0}, "must be >= 1"),
        ({"mix": [26], "top_k": True}, "must be an integer"),
        ({"mix": [26], "top_k": "two"}, "must be an integer"),
        ({"mix": "26"}, "'mix'"),
        ({}, "missing required field"),
    ],
)
def test_explain_request_rejections(doc, message):
    with pytest.raises(ProtocolError, match=message):
        ExplainRequest.from_doc(doc)


# -- ExplainResponse ---------------------------------------------------


def test_explain_response_roundtrip_restores_int_keys():
    response = ExplainResponse(
        report={"mix": [26, 71], "templates": []},
        top={26: (71,), 71: (26,)},
        cached=True,
        model_version="v1",
    )
    doc = response.to_doc()
    assert doc["top"] == {"26": [71], "71": [26]}
    parsed = ExplainResponse.from_doc(doc)
    assert parsed == response


@pytest.mark.parametrize(
    "doc, message",
    [
        ({}, "missing required field"),
        ({"report": "nope"}, "'report' must be a JSON object"),
        ({"report": {}, "top": []}, "'top' must be a JSON object"),
        ({"report": {}, "top": {"x": [1]}}, "malformed explain response"),
    ],
)
def test_explain_response_rejections(doc, message):
    with pytest.raises(ProtocolError, match=message):
        ExplainResponse.from_doc(doc)


# -- response parsers the client leans on ------------------------------


def test_batch_predict_response_roundtrip():
    response = BatchPredictResponse(
        items=(
            PredictResponse(latency=1.0, cached=False, model_version="v1"),
            PredictResponse(latency=2.0, cached=True, model_version="v1"),
        )
    )
    assert BatchPredictResponse.from_doc(response.to_doc()) == response


@pytest.mark.parametrize(
    "doc, message",
    [
        ({"items": "nope"}, "'items' must be a list"),
        ({"items": ["nope"]}, "must be a JSON object"),
    ],
)
def test_batch_predict_response_rejections(doc, message):
    with pytest.raises(ProtocolError, match=message):
        BatchPredictResponse.from_doc(doc)


def test_batch_predict_request_rejects_empty_and_non_objects():
    with pytest.raises(ProtocolError, match="non-empty list"):
        BatchPredictRequest.from_doc({"items": []})
    with pytest.raises(ProtocolError, match="JSON object"):
        BatchPredictRequest.from_doc({"items": [5]})


def test_observe_response_roundtrip_with_and_without_verdict():
    with_verdict = ObserveResponse(
        predicted=1.5,
        residual=0.1,
        drifted=True,
        verdict={"detector": "mean_shift"},
        model_version="v1",
    )
    assert ObserveResponse.from_doc(with_verdict.to_doc()) == with_verdict
    silent = ObserveResponse(
        predicted=1.5, residual=0.1, drifted=False, verdict=None
    )
    assert ObserveResponse.from_doc(silent.to_doc()).verdict is None


def test_observe_response_rejects_non_object_verdict():
    with pytest.raises(ProtocolError, match="'verdict'"):
        ObserveResponse.from_doc(
            {"predicted": 1.0, "residual": 0.0, "drifted": False,
             "verdict": "yes"}
        )


def test_observe_request_rejections():
    with pytest.raises(ProtocolError, match="must be a number"):
        ObserveRequest.from_doc(
            {"primary": 26, "mix": [26], "observed_latency": "slow"}
        )
    with pytest.raises(ProtocolError, match="occupy a slot"):
        ObserveRequest.from_doc(
            {"primary": 26, "mix": [71], "observed_latency": 1.0}
        )
    with pytest.raises(ProtocolError, match="positive"):
        ObserveRequest.from_doc(
            {"primary": 26, "mix": [26], "observed_latency": 0.0}
        )
    with pytest.raises(ProtocolError, match="template id"):
        ObserveRequest.from_doc(
            {"primary": True, "mix": [26], "observed_latency": 1.0}
        )


def test_health_response_roundtrip():
    response = HealthResponse(
        status="ok",
        model_version="v1",
        template_ids=(26, 71),
        uptime_seconds=1.0,
        requests_served=3,
        isolated_latencies={26: 10.0},
        workers={"count": 2},
    )
    parsed = HealthResponse.from_doc(response.to_doc())
    assert parsed == response
    bare = HealthResponse(
        status="ok",
        model_version="v1",
        template_ids=(),
        uptime_seconds=0.0,
        requests_served=0,
    )
    assert HealthResponse.from_doc(bare.to_doc()).workers is None


def test_health_response_rejections():
    with pytest.raises(ProtocolError, match="'workers'"):
        HealthResponse.from_doc({"workers": "nope"})
    with pytest.raises(ProtocolError, match="malformed health response"):
        HealthResponse.from_doc(
            {
                "status": "ok",
                "model_version": "v1",
                "template_ids": [26],
                "uptime_seconds": "soon",
                "requests_served": 0,
            }
        )


def test_profile_roundtrip_and_rejections():
    profile = TemplateProfile(
        template_id=99,
        isolated_latency=12.0,
        io_fraction=0.5,
        working_set_bytes=1e9,
        records_accessed=1e6,
        plan_steps=7,
        fact_scans=frozenset({"facts"}),
    )
    assert profile_from_doc(profile_to_doc(profile)) == profile
    with pytest.raises(ProtocolError, match="JSON object"):
        profile_from_doc("nope")
    with pytest.raises(ProtocolError, match="malformed profile"):
        profile_from_doc({**profile_to_doc(profile), "plan_steps": "many"})
