"""The coalesced predict path must evaluate the model **once** per
unique batch — one vectorized ``predict_known_many`` call, zero scalar
``predict_known`` calls — and fall back to the isolating scalar loop
only when the batch carries an invalid key.
"""

import threading

import pytest

from repro.config import ServingConfig
from repro.serving.app import RegistryModelProvider, ServingApp
from repro.serving.protocol import (
    BatchPredictRequest,
    PredictRequest,
)
from repro.serving.registry import ModelRegistry, save_artifact


@pytest.fixture()
def registry(small_contender, tmp_path):
    path = tmp_path / "model.json"
    save_artifact(small_contender, path)
    registry = ModelRegistry()
    registry.register("default", path)
    return registry


class _CountingContender:
    """Counts model-evaluation entry points on a wrapped Contender."""

    def __init__(self, contender):
        self._contender = contender
        self.many_calls = 0
        self.scalar_calls = 0
        self.lock = threading.Lock()

    def __getattr__(self, name):
        return getattr(self._contender, name)

    def predict_known_many(self, pairs):
        with self.lock:
            self.many_calls += 1
        return self._contender.predict_known_many(pairs)

    def predict_known(self, primary, mix):
        with self.lock:
            self.scalar_calls += 1
        return self._contender.predict_known(primary, mix)


def _app_with_counter(registry, **config_kwargs):
    config = ServingConfig(
        port=0, workers=1, metrics_enabled=False, **config_kwargs
    )
    app = ServingApp(RegistryModelProvider(registry, "default"), config=config)
    entry = registry.entry("default")
    counter = _CountingContender(entry.contender)
    # The provider snapshots entry.contender on every batch; splicing the
    # counting wrapper into the loaded model intercepts all evaluations.
    object.__setattr__(entry.model, "contender", counter)
    return app, counter


def test_one_vectorized_call_per_unique_batch(registry):
    app, counter = _app_with_counter(registry, batch_window=0.05, max_batch=64)
    try:
        ids = registry.entry("default").contender.template_ids
        items = tuple(
            PredictRequest(primary=a, mix=(a, b))
            for a in ids
            for b in ids[:3]
        )
        response = app._predict_batch(BatchPredictRequest(items=items))
        assert len(response.items) == len(items)
        assert all(item.latency > 0 for item in response.items)
        stats = app.batcher.stats()
        # Every executed batch made exactly one vectorized model call;
        # the scalar path never ran.
        assert counter.many_calls == stats.batches > 0
        assert counter.scalar_calls == 0
    finally:
        app.close()


def test_repeat_batch_answers_from_cache_without_model_calls(registry):
    app, counter = _app_with_counter(registry, batch_window=0.0)
    try:
        items = (
            PredictRequest(primary=26, mix=(26, 65)),
            PredictRequest(primary=65, mix=(26, 65)),
        )
        app._predict_batch(BatchPredictRequest(items=items))
        calls_after_first = counter.many_calls
        assert calls_after_first > 0
        second = app._predict_batch(BatchPredictRequest(items=items))
        assert counter.many_calls == calls_after_first  # pure cache hits
        assert counter.scalar_calls == 0
        assert all(item.cached for item in second.items)
    finally:
        app.close()


def test_invalid_key_falls_back_to_isolating_scalar_loop(registry):
    app, counter = _app_with_counter(registry, batch_window=0.05, max_batch=64)
    try:
        good = PredictRequest(primary=26, mix=(26, 65))
        bad = PredictRequest(primary=999, mix=(999, 26))
        futures = [app.submit_predict(good), app.submit_predict(bad)]
        latency, cached, _version = futures[0].result(timeout=5)
        assert latency > 0 and cached is False
        with pytest.raises(Exception) as excinfo:
            futures[1].result(timeout=5)
        assert "999" in str(excinfo.value)
        # The batch tried the vectorized call, was rejected, and redid
        # each key alone — the good key still answered.
        assert counter.many_calls >= 1
        assert counter.scalar_calls >= 1
    finally:
        app.close()
