"""The load generator, workload builder, and remote admission backend."""

import pytest

from repro.config import ServingConfig
from repro.errors import ModelError, ServingError
from repro.serving import (
    LoadGenerator,
    PredictionClient,
    PredictionServer,
    RemotePredictionBackend,
    mix_pool_workload,
    save_artifact,
)
from repro.serving.client import _percentile

TEMPLATES = (22, 26, 62, 65, 71)


@pytest.fixture(scope="module")
def server(small_contender, tmp_path_factory):
    path = tmp_path_factory.mktemp("load") / "model.json"
    save_artifact(small_contender, path)
    config = ServingConfig(port=0, workers=2, batch_window=0.0)
    with PredictionServer.from_artifact(path, config=config) as srv:
        yield srv


def test_mix_pool_workload_draws_repeated_mixes():
    workload = mix_pool_workload(TEMPLATES, requests=50, pool_size=4, mpl=2)
    assert len(workload) == 50
    distinct = {(r.primary, r.mix) for r in workload}
    assert len(distinct) <= 4
    for request in workload:
        assert request.primary in request.mix
        assert len(request.mix) == 2
    # Deterministic per seed.
    assert workload == mix_pool_workload(
        TEMPLATES, requests=50, pool_size=4, mpl=2
    )


@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(template_ids=(), requests=1), "at least one template"),
        (dict(template_ids=TEMPLATES, requests=0), "requests"),
        (dict(template_ids=TEMPLATES, requests=1, pool_size=0), "pool_size"),
        (dict(template_ids=TEMPLATES, requests=1, mpl=0), "mpl"),
    ],
)
def test_mix_pool_workload_validation(kwargs, message):
    with pytest.raises(ServingError, match=message):
        mix_pool_workload(**kwargs)


@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(submitters=0), "submitters"),
        (dict(processes=0), "processes"),
        (dict(batch_size=0), "batch_size"),
    ],
)
def test_load_generator_validation(kwargs, message):
    with pytest.raises(ServingError, match=message):
        LoadGenerator("127.0.0.1", 1, **kwargs)


def test_load_generator_single_process_run(server):
    workload = mix_pool_workload(TEMPLATES, requests=40, pool_size=4)
    generator = LoadGenerator(
        server.host, server.port, submitters=4, timeout=30.0
    )
    report = generator.run(workload)
    assert report.requests == 40
    assert report.errors == 0
    assert report.qps > 0
    assert report.p50_ms <= report.p99_ms <= report.max_ms
    assert report.processes == 1
    assert report.submitters == 4
    table = report.format_table()
    assert "throughput" in table and "p99 latency" in table


def test_load_generator_batch_mode(server):
    workload = mix_pool_workload(TEMPLATES, requests=24, pool_size=4)
    generator = LoadGenerator(
        server.host, server.port, submitters=2, timeout=30.0, batch_size=8
    )
    report = generator.run(workload)
    assert report.requests == 24
    assert report.errors == 0


def test_load_generator_counts_errors_against_dead_port(server):
    workload = mix_pool_workload(TEMPLATES, requests=4, pool_size=2)
    # A port nothing listens on: every request errors, none hang.
    generator = LoadGenerator("127.0.0.1", 1, submitters=2, timeout=0.5)
    report = generator.run(workload)
    assert report.errors == 4
    assert report.requests == 4
    assert report.qps == 0


def test_load_generator_rejects_empty_workload(server):
    generator = LoadGenerator(server.host, server.port)
    with pytest.raises(ServingError, match="empty"):
        generator.run([])


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert _percentile(values, 0.0) == 1.0
    assert _percentile(values, 1.0) == 4.0
    assert _percentile(values, 0.5) == pytest.approx(2.5)
    assert _percentile([], 0.5) == 0.0


def test_remote_admission_backend(server):
    with PredictionClient(server.host, server.port) as client:
        backend = RemotePredictionBackend(client)
        assert backend.predict_known(26, (26, 65)) > 0
        latencies = backend.predict_mix((26, 65))
        assert len(latencies) == 2
        assert backend.isolated_latency(26) > 0
        # The isolated map is fetched once and cached.
        assert backend.isolated_latency(26) == backend.isolated_latency(26)
        with pytest.raises(ModelError, match="does not know"):
            backend.isolated_latency(987654)
