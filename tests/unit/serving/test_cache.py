"""LRU + TTL prediction-cache tests (manual clock, no sleeping)."""

import pytest

from repro.errors import ServingError
from repro.serving.cache import PredictionCache, mix_signature


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


def test_mix_signature_is_order_independent():
    assert mix_signature((65, 26)) == mix_signature((26, 65))
    assert mix_signature((26, 26, 65)) == (26, 26, 65)


def test_hit_after_put(clock):
    cache = PredictionCache(max_entries=4, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1.0)
    assert cache.get("a") == 1.0
    stats = cache.stats()
    assert stats.hits == 1 and stats.misses == 0


def test_miss_counted(clock):
    cache = PredictionCache(max_entries=4, ttl_seconds=10.0, clock=clock)
    assert cache.get("absent") is None
    assert cache.stats().misses == 1


def test_lru_evicts_least_recently_used(clock):
    cache = PredictionCache(max_entries=2, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1.0)
    cache.put("b", 2.0)
    assert cache.get("a") == 1.0  # refresh a → b becomes LRU
    cache.put("c", 3.0)  # evicts b
    assert cache.get("b") is None
    assert cache.get("a") == 1.0
    assert cache.get("c") == 3.0
    assert cache.stats().evictions == 1


def test_put_refreshes_recency(clock):
    cache = PredictionCache(max_entries=2, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1.0)
    cache.put("b", 2.0)
    cache.put("a", 1.5)  # re-put makes a most recent
    cache.put("c", 3.0)  # evicts b, not a
    assert cache.get("a") == 1.5
    assert cache.get("b") is None


def test_ttl_expiry(clock):
    cache = PredictionCache(max_entries=4, ttl_seconds=5.0, clock=clock)
    cache.put("a", 1.0)
    clock.advance(4.9)
    assert cache.get("a") == 1.0
    clock.advance(0.2)  # now 5.1s past insertion
    assert cache.get("a") is None
    stats = cache.stats()
    assert stats.expirations == 1
    assert stats.size == 0


def test_expired_entry_counts_one_miss(clock):
    cache = PredictionCache(max_entries=4, ttl_seconds=5.0, clock=clock)
    cache.put("a", 1.0)
    clock.advance(6.0)
    cache.get("a")
    stats = cache.stats()
    assert stats.hits == 0
    assert stats.misses == 1


def test_hit_rate(clock):
    cache = PredictionCache(max_entries=4, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1.0)
    cache.get("a")
    cache.get("a")
    cache.get("b")
    assert cache.stats().hit_rate == pytest.approx(2 / 3)


def test_zero_capacity_disables_caching(clock):
    cache = PredictionCache(max_entries=0, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1.0)
    assert cache.get("a") is None
    assert len(cache) == 0


def test_clear_keeps_counters(clock):
    cache = PredictionCache(max_entries=4, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1.0)
    cache.get("a")
    cache.clear()
    assert cache.get("a") is None
    stats = cache.stats()
    assert stats.hits == 1 and stats.misses == 1 and stats.size == 0


def test_invalid_parameters_rejected():
    with pytest.raises(ServingError):
        PredictionCache(max_entries=-1)
    with pytest.raises(ServingError):
        PredictionCache(ttl_seconds=0.0)


def test_stats_as_dict_round_trip(clock):
    cache = PredictionCache(max_entries=4, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1.0)
    cache.get("a")
    doc = cache.stats().as_dict()
    assert doc["hits"] == 1
    assert doc["hit_rate"] == 1.0
    assert doc["max_entries"] == 4
