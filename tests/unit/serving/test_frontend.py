"""In-process coverage of the pre-fork front end's building blocks.

The end-to-end multi-worker behavior is pinned by the integration tier;
these tests drive the worker-side pieces — the shared-memory provider,
the asyncio HTTP plumbing, and the worker main loop — inside this
process, plus the parent's packing/publishing lifecycle.
"""

import asyncio
import json
import os
import queue
import signal
import socket
import threading
import time

import pytest

from repro.config import LifecycleConfig, ServingConfig
from repro.core.contender import Contender
from repro.errors import ServingError
from repro.serving import (
    ModelRegistry,
    PredictionClient,
    RegistryModelProvider,
    ServingApp,
    save_artifact,
)
from repro.serving.app import AppResponse
from repro.serving.frontend import (
    MultiWorkerServer,
    SharedModelProvider,
    _new_listen_socket,
    _render,
    _respond_predict,
    _respond_predict_batch,
    _reuseport_available,
    _serve_connection,
    _worker_async,
    multiworker_supported,
)
from repro.serving.registry import load_artifact
from repro.serving.shm import ControlBlock, pack_model

MIX = (26, 65)

#: Drift latches within a handful of samples (worker-0 drain tests).
FAST = LifecycleConfig(
    reference_window=4, test_window=2, min_samples=4, residual_window=8
)


@pytest.fixture(scope="module")
def artifact_path(small_contender, tmp_path_factory):
    path = tmp_path_factory.mktemp("frontend") / "model.json"
    save_artifact(small_contender, path)
    return path


@pytest.fixture(scope="module")
def variant_bytes(small_training_data, tmp_path_factory):
    """A second artifact (bytes) with a different fingerprint."""
    smaller = Contender(
        small_training_data.restricted_to(
            [t for t in small_training_data.template_ids if t != 22]
        )
    )
    path = tmp_path_factory.mktemp("frontend-variant") / "variant.json"
    save_artifact(smaller, path)
    return path.read_bytes()


@pytest.fixture()
def published(artifact_path):
    """A control block with generation 1 of the artifact published."""
    model = load_artifact(artifact_path)
    control = ControlBlock.create(2)
    segments = []

    def publish(generation):
        packed, segment = pack_model(model, generation=generation)
        segments.append(segment)
        control.publish(
            generation=generation,
            segment=packed.name,
            fingerprint=packed.fingerprint,
            version=packed.version,
        )
        return packed

    publish(1)
    yield control, publish, model
    control.close()
    control.unlink()
    for segment in segments:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


# -- platform probes and HTTP rendering --------------------------------


def test_multiworker_supported_on_this_platform():
    supported, reason = multiworker_supported()
    assert supported is True
    assert reason == ""


def test_multiworker_unsupported_without_fork(monkeypatch):
    monkeypatch.delattr(os, "fork")
    supported, reason = multiworker_supported()
    assert supported is False
    assert "fork" in reason


def test_multiworker_unsupported_without_fork_context(monkeypatch):
    import multiprocessing

    def no_fork(method=None):
        raise ValueError("fork unavailable")

    monkeypatch.setattr(multiprocessing, "get_context", no_fork)
    supported, reason = multiworker_supported()
    assert supported is False
    assert "fork start method" in reason


def test_new_listen_socket_binds_and_listens():
    sock = _new_listen_socket("127.0.0.1", 0, reuseport=_reuseport_available())
    try:
        assert sock.getsockname()[1] > 0
    finally:
        sock.close()


def test_new_listen_socket_closes_on_bind_failure():
    with pytest.raises(OSError):
        _new_listen_socket("203.0.113.1", 1, reuseport=False)


def test_render_formats_status_line_and_connection():
    response = AppResponse.from_doc(200, {"ok": True})
    raw = _render(response, keep_alive=True)
    assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
    assert b"Connection: keep-alive\r\n" in raw
    closed = _render(AppResponse.from_doc(418, {}), keep_alive=False)
    assert closed.startswith(b"HTTP/1.1 418 Error\r\n")
    assert b"Connection: close\r\n" in closed


# -- SharedModelProvider ----------------------------------------------


def test_shared_provider_requires_a_published_generation(artifact_path):
    control = ControlBlock.create(1)
    try:
        with pytest.raises(ServingError, match="no model generation"):
            SharedModelProvider(control, artifact_path)
    finally:
        control.close()
        control.unlink()


def test_shared_provider_snapshot_and_generation_flip(
    published, artifact_path
):
    control, publish, model = published
    provider = SharedModelProvider(control, artifact_path)
    try:
        swaps = []
        provider.set_swap_listener(lambda: swaps.append(1))
        assert provider.model_name == "default"
        snap = provider.snapshot()
        assert snap.generation == 1
        assert snap.fingerprint == model.info.fingerprint
        assert snap.contender.predict_known(26, MIX) > 0

        publish(2)
        flipped = provider.snapshot()
        assert flipped.generation == 2
        assert swaps == [1]
        # Generation 3 reaps generation 1 from the graveyard.
        publish(3)
        assert provider.snapshot().generation == 3
        assert provider.snapshot().generation == 3  # no-flip fast path
    finally:
        provider.close()


def test_shared_provider_reload_is_noop_for_same_fingerprint(
    published, artifact_path
):
    control, _publish, _model = published
    provider = SharedModelProvider(control, artifact_path)
    try:
        outcome = provider.reload()
        assert outcome["reloaded"] is False
        assert outcome["model_version"]
    finally:
        provider.close()


def test_shared_provider_reload_requires_queue_wiring(
    published, artifact_path, variant_bytes, tmp_path
):
    control, _publish, _model = published
    changed = tmp_path / "changed.json"
    changed.write_bytes(variant_bytes)
    provider = SharedModelProvider(control, changed)
    try:
        with pytest.raises(ServingError, match="not wired"):
            provider.reload()
    finally:
        provider.close()


def test_shared_provider_reload_times_out_without_publisher(
    published, artifact_path, variant_bytes, tmp_path
):
    control, _publish, _model = published
    changed = tmp_path / "changed.json"
    changed.write_bytes(variant_bytes)
    requests = queue.Queue()
    provider = SharedModelProvider(
        control, changed, reload_queue=requests, reload_timeout=0.2
    )
    try:
        with pytest.raises(ServingError, match="timed out"):
            provider.reload()
        assert requests.get_nowait()[0] == "reload"
    finally:
        provider.close()


def test_shared_provider_reload_adopts_published_flip(
    published, artifact_path, variant_bytes, tmp_path
):
    control, _publish, _model = published
    changed = tmp_path / "changed.json"
    changed.write_bytes(variant_bytes)
    requests = queue.Queue()
    provider = SharedModelProvider(
        control, changed, reload_queue=requests, reload_timeout=10.0
    )
    segments = []

    def publisher():
        requests.get(timeout=5.0)
        model = load_artifact(changed)
        packed, segment = pack_model(model, generation=2)
        segments.append(segment)
        control.publish(
            generation=2,
            segment=packed.name,
            fingerprint=packed.fingerprint,
            version=packed.version,
        )

    thread = threading.Thread(target=publisher)
    thread.start()
    try:
        outcome = provider.reload()
        assert outcome["reloaded"] is True
        assert provider.snapshot().generation == 2
    finally:
        thread.join()
        provider.close()
        for segment in segments:
            segment.close()
            segment.unlink()


# -- the asyncio hot paths --------------------------------------------


@pytest.fixture(scope="module")
def app(artifact_path):
    registry = ModelRegistry()
    registry.register("default", artifact_path)
    provider = RegistryModelProvider(registry, "default")
    app = ServingApp(
        provider, config=ServingConfig(workers=1, batch_window=0.0)
    )
    yield app
    app.close()


def _body(doc):
    return json.dumps(doc).encode()


def test_respond_predict_success_and_error(app):
    async def drive():
        good = await _respond_predict(
            app, _body({"primary": 26, "mix": list(MIX)})
        )
        bad = await _respond_predict(app, b"{nope")
        unknown = await _respond_predict(
            app, _body({"primary": 987654, "mix": [987654, 26]})
        )
        return good, bad, unknown

    good, bad, unknown = asyncio.run(drive())
    assert good.status == 200
    assert json.loads(good.body)["latency"] > 0
    assert bad.status == 400
    assert unknown.status == 422


def test_respond_predict_batch_mixes_hits_and_misses(app):
    items = [
        {"primary": 26, "mix": list(MIX)},
        {"primary": 65, "mix": list(MIX)},
        {"primary": 26, "mix": list(MIX)},
    ]

    async def drive():
        first = await _respond_predict_batch(app, _body({"items": items}))
        malformed = await _respond_predict_batch(app, _body({"items": []}))
        return first, malformed

    first, malformed = asyncio.run(drive())
    assert first.status == 200
    answers = json.loads(first.body)["items"]
    assert len(answers) == 3
    assert answers[0]["latency"] == answers[2]["latency"]
    assert malformed.status == 400


def _http(sock_reader_writer, raw):
    reader, writer = sock_reader_writer
    writer.write(raw)


async def _read_response(reader):
    status_line = await reader.readline()
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", 0)))
    return int(status_line.split()[1]), headers, body


def test_serve_connection_keep_alive_and_routing(app):
    async def drive():
        server = await asyncio.start_server(
            lambda r, w: _serve_connection(app, r, w),
            host="127.0.0.1",
            port=0,
        )
        port = server.sockets[0].getsockname()[1]
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            body = _body({"primary": 26, "mix": list(MIX)})
            request = (
                b"POST /v1/predict HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            writer.write(request)
            status1, headers1, body1 = await _read_response(reader)

            # Keep-alive: a second request on the same connection, this
            # one a cold endpoint served via the executor.
            writer.write(b"GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n")
            status2, headers2, body2 = await _read_response(reader)
            writer.close()
            await writer.wait_closed()

            # A fresh connection with a malformed request line.
            reader3, writer3 = await asyncio.open_connection("127.0.0.1", port)
            writer3.write(b"NONSENSE\r\n\r\n")
            status3, _headers3, body3 = await _read_response(reader3)
            writer3.close()
            await writer3.wait_closed()

            # Batch endpoint through the wire.
            reader4, writer4 = await asyncio.open_connection("127.0.0.1", port)
            batch = _body({"items": [{"primary": 26, "mix": list(MIX)}]})
            writer4.write(
                b"POST /v1/predict-batch HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(batch), batch)
            )
            status4, _headers4, body4 = await _read_response(reader4)
            writer4.close()
            await writer4.wait_closed()
            return (
                (status1, headers1, body1),
                (status2, headers2, body2),
                (status3, body3),
                (status4, body4),
            )
        finally:
            server.close()
            await server.wait_closed()

    first, second, malformed, batch = asyncio.run(drive())
    assert first[0] == 200
    assert first[1]["connection"] == "keep-alive"
    assert json.loads(first[2])["latency"] > 0
    assert second[0] == 200
    assert second[1]["connection"] == "close"
    assert json.loads(second[2])["status"] == "ok"
    assert malformed[0] == 400
    assert json.loads(malformed[1])["type"] == "protocol"
    assert batch[0] == 200
    assert json.loads(batch[1])["items"]


# -- the worker main loop ---------------------------------------------


def _drive_worker(port, actions, delay=0.1):
    """Run *actions* against a live worker, then SIGTERM this process."""
    outcome = {}

    def drive():
        try:
            with PredictionClient("127.0.0.1", port, timeout=10.0) as cli:
                actions(cli, outcome)
        except Exception as exc:  # pragma: no cover - surfaced by assert
            outcome["error"] = exc
        finally:
            time.sleep(delay)
            os.kill(os.getpid(), signal.SIGTERM)

    thread = threading.Thread(target=drive)
    return thread, outcome


def test_worker_async_serves_and_drains_observations(
    published, artifact_path
):
    control, _publish, _model = published
    listen = _new_listen_socket("127.0.0.1", 0, reuseport=False)
    port = listen.getsockname()[1]
    config = ServingConfig(
        host="127.0.0.1", port=port, workers=1, batch_window=0.0
    )
    observe_queues = [queue.Queue(), queue.Queue()]
    ready = queue.Queue()

    def actions(cli, outcome):
        ready.get(timeout=15.0)
        outcome["predict"] = cli.predict(26, MIX)
        outcome["health"] = cli.health()
        # Worker 0 drains every fan-in queue into its own monitor.
        observe_queues[1].put((26, 1.0, 1.2, MIX))
        time.sleep(0.4)
        outcome["stats"] = cli.stats()

    thread, outcome = _drive_worker(port, actions)
    thread.start()
    asyncio.run(
        _worker_async(
            0,
            control.name,
            artifact_path,
            config,
            FAST,
            observe_queues,
            queue.Queue(),
            listen,
            ready,
        )
    )
    thread.join()
    assert "error" not in outcome, outcome.get("error")
    assert outcome["predict"].latency > 0
    assert outcome["health"].status == "ok"
    lifecycle = outcome["stats"]["lifecycle"]
    assert [t["template_id"] for t in lifecycle["templates"]] == [26]
    # The heartbeat stamped this worker's slot in the control block.
    workers = control.workers_doc()["workers"]
    assert any(w["alive"] for w in workers if w["index"] == 0)


def test_worker_async_nonzero_index_enqueues_observations(
    published, artifact_path
):
    control, _publish, _model = published
    # The reuseport path: reserve a port, let the worker bind its own.
    reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    reserve.bind(("127.0.0.1", 0))
    port = reserve.getsockname()[1]
    config = ServingConfig(
        host="127.0.0.1", port=port, workers=1, batch_window=0.0
    )
    observe_queues = [queue.Queue(), queue.Queue()]
    ready = queue.Queue()

    def actions(cli, outcome):
        ready.get(timeout=15.0)
        outcome["observe"] = cli.observe(26, MIX, observed_latency=30.0)

    thread, outcome = _drive_worker(port, actions)
    thread.start()
    try:
        asyncio.run(
            _worker_async(
                1,
                control.name,
                artifact_path,
                config,
                FAST,
                observe_queues,
                queue.Queue(),
                None,
                ready,
            )
        )
    finally:
        reserve.close()
    thread.join()
    assert "error" not in outcome, outcome.get("error")
    # Fan-in: the verdict is asynchronous, the residual is enqueued for
    # worker 0 with the mix attached.
    assert outcome["observe"].verdict is None
    primary, _predicted, observed, mix = observe_queues[1].get_nowait()
    assert (primary, observed, mix) == (26, 30.0, MIX)


# -- the parent process -----------------------------------------------


def test_multiworker_server_refuses_unsupported_platform(
    artifact_path, monkeypatch
):
    import repro.serving.frontend as frontend

    monkeypatch.setattr(
        frontend, "multiworker_supported", lambda: (False, "no fork")
    )
    with pytest.raises(ServingError, match="no fork"):
        MultiWorkerServer(artifact_path)


def test_multiworker_server_packs_and_publishes_before_start(artifact_path):
    config = ServingConfig(port=0, worker_processes=2)
    server = MultiWorkerServer(artifact_path, config)
    try:
        assert server.port > 0
        assert server.worker_count == 2
        state = server.control.read()
        assert state.generation == 1
        assert state.segment
        # Unchanged artifact: no new generation.
        assert server.publish_reload() is False
    finally:
        server.shutdown()
    server.shutdown()  # idempotent


def test_multiworker_publish_reload_flips_generation(
    artifact_path, variant_bytes, tmp_path
):
    path = tmp_path / "model.json"
    path.write_bytes((artifact_path).read_bytes())
    server = MultiWorkerServer(path, ServingConfig(port=0, worker_processes=1))
    try:
        first = server.control.read()
        path.write_bytes(variant_bytes)
        assert server.publish_reload() is True
        flipped = server.control.read()
        assert flipped.generation == first.generation + 1
        assert flipped.fingerprint != first.fingerprint
        # A third publish trims the segment list to two generations.
        path.write_bytes((artifact_path).read_bytes())
        assert server.publish_reload() is True
        assert len(server._segments) == 2
    finally:
        server.shutdown()


def test_multiworker_end_to_end_single_worker(artifact_path):
    config = ServingConfig(port=0, worker_processes=1, batch_window=0.0)
    with MultiWorkerServer(artifact_path, config) as server:
        with PredictionClient(server.host, server.port, timeout=15.0) as cli:
            response = cli.predict(26, MIX)
            assert response.latency > 0
            health = cli.health()
            assert health.status == "ok"
            assert health.workers is not None
            # The worker-side reload answers no-op via the shared path.
            assert cli.reload()["reloaded"] is False


def test_multiworker_start_twice_is_an_error(artifact_path):
    config = ServingConfig(port=0, worker_processes=1)
    with MultiWorkerServer(artifact_path, config) as server:
        with pytest.raises(ServingError, match="already started"):
            server.start()
