"""Wire-protocol encode/decode and validation tests."""

import json

import pytest

from repro.core.contender import SpoilerMode
from repro.errors import ProtocolError
from repro.serving.protocol import (
    AdmitRequest,
    AdmitResponse,
    HealthResponse,
    PredictNewRequest,
    PredictRequest,
    PredictResponse,
    decode_json,
    profile_from_doc,
    profile_to_doc,
)


def test_decode_json_rejects_non_object():
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_json(b"[1, 2]")
    with pytest.raises(ProtocolError, match="not valid JSON"):
        decode_json(b"{nope")


def test_predict_request_round_trip():
    request = PredictRequest(primary=26, mix=(26, 65))
    assert PredictRequest.from_doc(request.to_doc()) == request


def test_predict_request_requires_primary_in_mix():
    with pytest.raises(ProtocolError, match="occupy a slot"):
        PredictRequest.from_doc({"primary": 26, "mix": [65, 71]})


def test_predict_request_rejects_bad_mix():
    with pytest.raises(ProtocolError, match="list of template ids"):
        PredictRequest.from_doc({"primary": 26, "mix": "26,65"})
    with pytest.raises(ProtocolError, match="list of template ids"):
        PredictRequest.from_doc({"primary": 26, "mix": [26, "65"]})
    with pytest.raises(ProtocolError, match="missing required field"):
        PredictRequest.from_doc({"primary": 26})


def test_profile_round_trip(small_training_data):
    profile = small_training_data.profile(26)
    assert profile_from_doc(profile_to_doc(profile)) == profile


def test_predict_new_round_trip(small_training_data):
    request = PredictNewRequest(
        profile=small_training_data.profile(26),
        mix=(26, 65),
        spoiler_mode=SpoilerMode.IO_TIME,
    )
    decoded = PredictNewRequest.from_doc(request.to_doc())
    assert decoded == request


def test_predict_new_rejects_measured_mode(small_training_data):
    doc = PredictNewRequest(
        profile=small_training_data.profile(26), mix=(26, 65)
    ).to_doc()
    doc["spoiler_mode"] = "measured"
    with pytest.raises(ProtocolError, match="not servable remotely"):
        PredictNewRequest.from_doc(doc)
    doc["spoiler_mode"] = "banana"
    with pytest.raises(ProtocolError, match="unknown spoiler_mode"):
        PredictNewRequest.from_doc(doc)


def test_admit_request_round_trip():
    request = AdmitRequest(
        running=(26, 65), candidate=71, sla_factor=2.0, max_mpl=4
    )
    assert AdmitRequest.from_doc(request.to_doc()) == request


def test_admit_request_defaults():
    decoded = AdmitRequest.from_doc({"candidate": 71})
    assert decoded.running == ()
    assert decoded.sla_factor is None
    assert decoded.max_mpl is None


def test_admit_response_encodes_infinity_as_null():
    response = AdmitResponse(
        admitted=False,
        candidate=71,
        mix_after=(26, 65, 71),
        worst_ratio=float("inf"),
        limiting_template=71,
    )
    doc = response.to_doc()
    assert doc["worst_ratio"] is None
    assert json.loads(json.dumps(doc))  # strictly valid JSON
    assert AdmitResponse.from_doc(doc) == response


def test_predict_response_round_trip():
    response = PredictResponse(latency=12.5, cached=True, model_version="v1-abc")
    assert PredictResponse.from_doc(response.to_doc()) == response


def test_health_response_round_trip():
    response = HealthResponse(
        status="ok",
        model_version="v1-abc",
        template_ids=(22, 26),
        uptime_seconds=3.5,
        requests_served=17,
        isolated_latencies={22: 100.0, 26: 200.0},
    )
    assert HealthResponse.from_doc(response.to_doc()) == response
