"""The serving ``/metrics`` endpoint and its per-endpoint instruments."""

import http.client

import pytest

from repro.config import ServingConfig
from repro.errors import ModelError, ServingError
from repro.obs.export import CONTENT_TYPE_LATEST
from repro.obs.metrics import Registry
from repro.serving import PredictionClient, PredictionServer, save_artifact


@pytest.fixture(scope="module")
def artifact_path(small_contender, tmp_path_factory):
    path = tmp_path_factory.mktemp("metrics") / "model.json"
    save_artifact(small_contender, path)
    return path


def _serve(artifact_path, metrics=None, **config_kwargs):
    defaults = dict(port=0, workers=1, batch_window=0.0)
    defaults.update(config_kwargs)
    return PredictionServer.from_artifact(
        artifact_path, config=ServingConfig(**defaults), metrics=metrics
    )


def _metric_value(text, name, **labels):
    """The value of *name* with exactly the given labels in exposition text."""
    wanted = {f'{k}="{v}"' for k, v in labels.items()}
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name) :]
        if rest.startswith("{"):
            body, _, value = rest[1:].partition("} ")
            if set(body.split(",")) == wanted:
                return float(value)
        elif not wanted and rest.startswith(" "):
            return float(rest[1:])
    raise AssertionError(f"{name}{labels} not found in exposition:\n{text}")


def test_metrics_endpoint_serves_prometheus_text(small_contender, artifact_path):
    with _serve(artifact_path) as srv:
        with PredictionClient(srv.host, srv.port) as cli:
            cli.predict(26, (26, 65))
            cli.predict(26, (26, 65))  # cache hit
            cli.health()
            with pytest.raises(ModelError):
                cli.predict(12345, (12345, 26))

            text = cli.metrics_text()

    assert _metric_value(text, "serving_requests_total", endpoint="predict") == 3
    assert _metric_value(text, "serving_requests_total", endpoint="health") == 1
    assert _metric_value(text, "serving_errors_total", type="model") == 1
    assert (
        _metric_value(text, "serving_request_seconds_count", endpoint="predict")
        == 3
    )
    assert _metric_value(text, "serving_cache_hits") == 1
    assert _metric_value(text, "serving_cache_misses") == 2
    assert _metric_value(text, "serving_model_generation") == 1
    # The scrape itself is in flight while the page renders.
    assert _metric_value(text, "serving_requests_in_flight") == 1
    assert _metric_value(text, "serving_uptime_seconds") >= 0
    # The batcher saw work, and its histogram carries per-batch sizes.
    assert _metric_value(text, "serving_batch_size_count") >= 1


def test_metrics_content_type_and_unknown_endpoint_count(artifact_path):
    with _serve(artifact_path) as srv:
        conn = http.client.HTTPConnection(srv.host, srv.port, timeout=30.0)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            assert response.status == 200
            assert response.getheader("Content-Type") == CONTENT_TYPE_LATEST
            assert "# TYPE serving_requests_total counter" in body

            conn.request("GET", "/nope")
            missing = conn.getresponse()
            missing.read()
            assert missing.status == 404
        finally:
            conn.close()
        with PredictionClient(srv.host, srv.port) as cli:
            text = cli.metrics_text()
    assert _metric_value(text, "serving_requests_total", endpoint="unknown") == 1
    assert _metric_value(text, "serving_errors_total", type="not_found") == 1


def test_metrics_agree_with_stats_endpoint(artifact_path):
    with _serve(artifact_path) as srv:
        with PredictionClient(srv.host, srv.port) as cli:
            for other in (65, 71, 65):
                cli.predict(26, (26, other))
            stats = cli.stats()
            text = cli.metrics_text()
    assert stats["metrics_enabled"] is True
    assert _metric_value(text, "serving_cache_hits") == stats["cache"]["hits"]
    assert _metric_value(text, "serving_cache_size") == stats["cache"]["size"]
    assert (
        _metric_value(text, "serving_batcher_requests")
        == stats["batching"]["requests"]
    )


def test_shared_registry_is_used_verbatim(artifact_path):
    reg = Registry()
    reg.counter("unrelated_total").inc()
    with _serve(artifact_path, metrics=reg) as srv:
        assert srv.metrics is reg
        with PredictionClient(srv.host, srv.port) as cli:
            cli.health()
            text = cli.metrics_text()
    assert "unrelated_total 1" in text
    assert _metric_value(text, "serving_requests_total", endpoint="health") == 1


def test_disabled_metrics_404_and_skip_instruments(artifact_path):
    with _serve(artifact_path, metrics_enabled=False) as srv:
        with PredictionClient(srv.host, srv.port) as cli:
            cli.predict(26, (26, 65))
            assert cli.stats()["metrics_enabled"] is False
            with pytest.raises(ServingError, match="metrics_enabled"):
                cli.metrics_text()
        assert srv.metrics is None
