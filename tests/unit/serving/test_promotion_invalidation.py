"""Cache invalidation across model flips: a promotion, rollback, or hot
reload must make stale predictions unreachable — including writes from
batches already in flight when the flip lands.

Companion to ``test_reload_race.py``: that file proves the registry swap
itself is atomic; this one proves the serving cache cannot serve values
computed under a displaced model.
"""

import threading

import pytest

from repro.config import ServingConfig
from repro.core.contender import Contender
from repro.serving.cache import PredictionCache
from repro.serving.registry import ModelRegistry, save_artifact
from repro.serving.server import PredictionServer

MIX = (26, 65)


# ----------------------------------------------------------------------
# The generation fence at the cache level.


def test_bump_generation_empties_and_advances():
    cache = PredictionCache(max_entries=8, ttl_seconds=60.0)
    cache.put("a", 1.0)
    assert cache.bump_generation() == 2
    assert len(cache) == 0
    assert cache.get("a") is None


def test_put_from_a_stale_generation_is_discarded():
    cache = PredictionCache(max_entries=8, ttl_seconds=60.0)
    snapshot = cache.generation
    cache.bump_generation()  # the model flipped mid-compute
    assert cache.put("a", 1.0, generation=snapshot) is False
    assert cache.get("a") is None
    stats = cache.stats()
    assert stats.stale_drops == 1
    assert stats.generation == 2


def test_put_with_current_generation_is_stored():
    cache = PredictionCache(max_entries=8, ttl_seconds=60.0)
    assert cache.put("a", 1.0, generation=cache.generation) is True
    assert cache.get("a") == 1.0
    assert cache.stats().stale_drops == 0


def test_clear_keeps_the_generation():
    cache = PredictionCache(max_entries=8, ttl_seconds=60.0)
    snapshot = cache.generation
    cache.clear()
    # clear() drops entries but does not fence: a put from before the
    # clear still lands (that is why model flips use bump_generation).
    assert cache.put("a", 1.0, generation=snapshot) is True


def test_concurrent_bumps_are_monotonic():
    cache = PredictionCache(max_entries=8, ttl_seconds=60.0)
    generations = []
    barrier = threading.Barrier(4)

    def bump():
        barrier.wait()
        generations.append(cache.bump_generation())

    threads = [threading.Thread(target=bump) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(generations) == [2, 3, 4, 5]


# ----------------------------------------------------------------------
# The fence wired through a live server.


@pytest.fixture(scope="module")
def artifacts(small_contender, small_training_data, tmp_path_factory):
    """Two artifact files with different predictions for MIX."""
    tmp = tmp_path_factory.mktemp("promotion")
    smaller = Contender(
        small_training_data.restricted_to(
            [t for t in small_training_data.template_ids if t != 22]
        )
    )
    paths = []
    for i, model in enumerate((small_contender, smaller)):
        path = tmp / f"model{i}.json"
        save_artifact(model, path)
        paths.append(path)
    return paths


def _server(registry):
    return PredictionServer(
        registry, config=ServingConfig(port=0, metrics_enabled=False)
    )


def _predict(server, primary, mix):
    from repro.serving.protocol import PredictRequest

    return server._predict(PredictRequest(primary=primary, mix=mix)).latency


def test_registry_swap_bumps_generation_and_empties_cache(artifacts):
    registry = ModelRegistry()
    registry.register("default", artifacts[0])
    with _server(registry) as server:
        client_response = _predict(server, 26, MIX)
        stats = server._cache.stats()
        assert stats.size == 1 and stats.generation == 1

        # A lifecycle promotion re-registers the same name over a new
        # artifact; the server's subscription must flush the cache.
        registry.register("default", artifacts[1])
        stats = server._cache.stats()
        assert stats.generation == 2
        assert stats.size == 0

        after = _predict(server, 26, MIX)
        assert after != client_response  # new model answers


def test_swap_of_another_model_does_not_flush(artifacts):
    registry = ModelRegistry()
    registry.register("default", artifacts[0])
    with _server(registry) as server:
        _predict(server, 26, MIX)
        registry.register("shadow", artifacts[1])  # first registration
        registry.register("shadow", artifacts[0])  # swap of another name
        stats = server._cache.stats()
        assert stats.generation == 1 and stats.size == 1


def test_rollback_flip_cannot_resurface_pre_flip_entries(artifacts):
    # A -> B -> A: entries computed under the first A-generation must
    # not come back when A returns, even though the model is identical.
    registry = ModelRegistry()
    registry.register("default", artifacts[0])
    with _server(registry) as server:
        _predict(server, 26, MIX)
        registry.register("default", artifacts[1])
        registry.register("default", artifacts[0])
        stats = server._cache.stats()
        assert stats.generation == 3
        assert stats.size == 0


def test_in_flight_batch_write_is_fenced_by_the_flip(artifacts):
    registry = ModelRegistry()
    registry.register("default", artifacts[0])
    with _server(registry) as server:
        cache = server._cache
        generation = cache.generation
        # Simulate a batch that snapshotted (entry, generation), then
        # lost the race with a promotion before its put().
        registry.register("default", artifacts[1])
        assert cache.put(("predict", 26, MIX), 123.0, generation=generation) is False
        assert cache.stats().stale_drops == 1
        assert cache.get(("predict", 26, MIX)) is None
