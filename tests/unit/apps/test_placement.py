"""Placement application tests."""

import pytest

from repro.apps.placement import (
    balanced_placement,
    placement_cost,
    predicted_slowdowns,
)
from repro.errors import ModelError


def test_slowdowns_at_least_intercept(small_contender):
    values = predicted_slowdowns(small_contender, (26, 65))
    assert len(values) == 2
    assert all(v > 0.5 for v in values)


def test_cost_is_worst_server(small_contender):
    placement = ((26, 82), (65, 62))
    cost = placement_cost(small_contender, placement)
    per_server = [
        max(predicted_slowdowns(small_contender, mix)) for mix in placement
    ]
    assert cost == pytest.approx(max(per_server))


def test_single_query_servers_are_free(small_contender):
    assert placement_cost(small_contender, ((26,), (65,))) == 0.0


def test_balanced_placement_minimizes_worst_slowdown(small_contender):
    tenants = (26, 82, 65, 62)
    best = balanced_placement(small_contender, tenants, num_servers=2)
    best_cost = placement_cost(small_contender, best)
    # Exhaustive alternative check: no other balanced placement is better.
    alternatives = [
        ((26, 82), (65, 62)),
        ((26, 65), (82, 62)),
        ((26, 62), (82, 65)),
    ]
    for placement in alternatives:
        assert best_cost <= placement_cost(small_contender, placement) + 1e-9
    flattened = sorted(t for mix in best for t in mix)
    assert flattened == sorted(tenants)


def test_uneven_tenants_rejected(small_contender):
    with pytest.raises(ModelError):
        balanced_placement(small_contender, (26, 65, 71), num_servers=2)


def test_bad_server_count_rejected(small_contender):
    with pytest.raises(ModelError):
        balanced_placement(small_contender, (26, 65), num_servers=0)
