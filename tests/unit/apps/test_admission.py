"""Admission-control application tests."""

import pytest

from repro.apps.admission import AdmissionController
from repro.errors import ModelError


@pytest.fixture()
def controller(small_contender):
    return AdmissionController(small_contender, sla_factor=1.5, max_mpl=4)


def test_first_query_always_admitted(controller):
    decision = controller.check((), 26)
    assert decision.admitted
    assert decision.mix_after == (26,)


def test_mpl_cap_enforced(small_contender):
    controller = AdmissionController(
        small_contender, sla_factor=100.0, max_mpl=2
    )
    assert controller.check((26,), 65).admitted
    decision = controller.check((26, 65), 62)
    assert not decision.admitted
    assert decision.worst_ratio == float("inf")


def test_tight_sla_rejects_heavy_contention(small_contender):
    tight = AdmissionController(small_contender, sla_factor=1.05, max_mpl=4)
    # Two disjoint I/O-bound scans: each predicted well past 1.05x.
    decision = tight.check((26,), 82)
    assert not decision.admitted
    assert decision.worst_ratio > 1.0


def test_loose_sla_admits(small_contender):
    loose = AdmissionController(small_contender, sla_factor=5.0, max_mpl=4)
    decision = loose.check((26,), 82)
    assert decision.admitted
    assert decision.worst_ratio <= 1.0


def test_limiting_template_identified(controller):
    decision = controller.check((26,), 82)
    assert decision.limiting_template in (26, 82)


def test_plan_batches_covers_queue(small_contender):
    # The small campaign samples MPL 2 only, so cap admission at pairs.
    controller = AdmissionController(
        small_contender, sla_factor=1.5, max_mpl=2
    )
    queue = [26, 82, 65, 62, 71]
    batches = controller.plan_batches(queue)
    flattened = [t for batch in batches for t in batch]
    assert flattened == queue  # FIFO order preserved
    assert all(len(batch) >= 1 for batch in batches)


def test_plan_batches_respects_cap(small_contender):
    controller = AdmissionController(
        small_contender, sla_factor=100.0, max_mpl=2
    )
    batches = controller.plan_batches([26, 65, 62, 71])
    assert all(len(batch) <= 2 for batch in batches)


def test_validation(small_contender):
    with pytest.raises(ModelError):
        AdmissionController(small_contender, sla_factor=0.5)
    with pytest.raises(ModelError):
        AdmissionController(small_contender, max_mpl=0)


def test_backend_protocol_duck_typing(small_contender):
    """A custom backend drives the identical policy code."""
    from repro.apps.admission import ContenderBackend

    class Recording:
        def __init__(self, inner):
            self.inner = inner
            self.calls = []

        def predict_known(self, primary, mix):
            self.calls.append((primary, tuple(mix)))
            return self.inner.predict_known(primary, mix)

        def isolated_latency(self, primary):
            return self.inner.isolated_latency(primary)

    backend = Recording(ContenderBackend(small_contender))
    controller = AdmissionController(backend, sla_factor=1.5, max_mpl=4)
    reference = AdmissionController(small_contender, sla_factor=1.5, max_mpl=4)
    assert controller.check((26,), 65) == reference.check((26,), 65)
    assert len(backend.calls) == 2  # one prediction per mix member


def test_contender_backend_exposes_isolated_latency(small_contender):
    from repro.apps.admission import ContenderBackend

    backend = ContenderBackend(small_contender)
    assert backend.isolated_latency(26) == (
        small_contender.data.profile(26).isolated_latency
    )
    assert backend.contender is small_contender


def test_rejects_non_predictor():
    with pytest.raises(ModelError, match="predict_known"):
        AdmissionController(object())
