"""Admission-control application tests."""

import pytest

from repro.apps.admission import AdmissionController
from repro.errors import ModelError


@pytest.fixture()
def controller(small_contender):
    return AdmissionController(small_contender, sla_factor=1.5, max_mpl=4)


def test_first_query_always_admitted(controller):
    decision = controller.check((), 26)
    assert decision.admitted
    assert decision.mix_after == (26,)


def test_mpl_cap_enforced(small_contender):
    controller = AdmissionController(
        small_contender, sla_factor=100.0, max_mpl=2
    )
    assert controller.check((26,), 65).admitted
    decision = controller.check((26, 65), 62)
    assert not decision.admitted
    assert decision.worst_ratio == float("inf")


def test_tight_sla_rejects_heavy_contention(small_contender):
    tight = AdmissionController(small_contender, sla_factor=1.05, max_mpl=4)
    # Two disjoint I/O-bound scans: each predicted well past 1.05x.
    decision = tight.check((26,), 82)
    assert not decision.admitted
    assert decision.worst_ratio > 1.0


def test_loose_sla_admits(small_contender):
    loose = AdmissionController(small_contender, sla_factor=5.0, max_mpl=4)
    decision = loose.check((26,), 82)
    assert decision.admitted
    assert decision.worst_ratio <= 1.0


def test_limiting_template_identified(controller):
    decision = controller.check((26,), 82)
    assert decision.limiting_template in (26, 82)


def test_plan_batches_covers_queue(small_contender):
    # The small campaign samples MPL 2 only, so cap admission at pairs.
    controller = AdmissionController(
        small_contender, sla_factor=1.5, max_mpl=2
    )
    queue = [26, 82, 65, 62, 71]
    batches = controller.plan_batches(queue)
    flattened = [t for batch in batches for t in batch]
    assert flattened == queue  # FIFO order preserved
    assert all(len(batch) >= 1 for batch in batches)


def test_plan_batches_respects_cap(small_contender):
    controller = AdmissionController(
        small_contender, sla_factor=100.0, max_mpl=2
    )
    batches = controller.plan_batches([26, 65, 62, 71])
    assert all(len(batch) <= 2 for batch in batches)


def test_validation(small_contender):
    with pytest.raises(ModelError):
        AdmissionController(small_contender, sla_factor=0.5)
    with pytest.raises(ModelError):
        AdmissionController(small_contender, max_mpl=0)
