"""Batch-scheduling application tests."""

import pytest

from repro.apps.scheduling import (
    greedy_pairing,
    predicted_makespan,
    predicted_pair_cost,
)
from repro.errors import ModelError


def test_pair_cost_symmetric_inputs(small_contender):
    cost_ab = predicted_pair_cost(small_contender, 26, 65)
    cost_ba = predicted_pair_cost(small_contender, 65, 26)
    assert cost_ab == pytest.approx(cost_ba)


def test_pair_cost_reflects_interference(small_contender):
    # Normalized by the isolated sum, an I/O-bound query pairs better
    # with a CPU-bound one than with a disjoint I/O-bound one.
    def normalized(a, b):
        iso = (
            small_contender.data.profile(a).isolated_latency
            + small_contender.data.profile(b).isolated_latency
        )
        return predicted_pair_cost(small_contender, a, b) / iso

    assert normalized(26, 65) < normalized(26, 82)


def test_greedy_pairing_covers_batch(small_contender):
    batch = [26, 65, 71, 82]
    pairs = greedy_pairing(small_contender, batch)
    assert len(pairs) == 2
    flattened = sorted(t for pair in pairs for t in pair)
    assert flattened == sorted(batch)


def test_greedy_pairing_beats_worst_pairing(small_contender):
    batch = [26, 82, 65, 62]
    greedy = greedy_pairing(small_contender, batch)
    greedy_cost = predicted_makespan(small_contender, greedy)
    # The adversarial pairing: both I/O-bound together, both CPU together.
    bad = [(26, 82), (65, 62)]
    bad_cost = predicted_makespan(small_contender, bad)
    assert greedy_cost <= bad_cost + 1e-9


def test_odd_batch_leftover_runs_solo(small_contender):
    batch = [26, 65, 71]
    groups = greedy_pairing(small_contender, batch)
    assert len(groups) == 2
    assert len(groups[0]) == 2
    assert len(groups[-1]) == 1
    flattened = sorted(t for group in groups for t in group)
    assert flattened == sorted(batch)


def test_odd_batch_makespan_includes_solo(small_contender):
    groups = greedy_pairing(small_contender, [26, 65, 71])
    (solo,) = groups[-1]
    pair_only = predicted_makespan(small_contender, groups[:-1])
    full = predicted_makespan(small_contender, groups)
    isolated = small_contender.data.profile(solo).isolated_latency
    assert full == pytest.approx(pair_only + isolated)


def test_single_query_batch_is_one_solo_group(small_contender):
    groups = greedy_pairing(small_contender, [26])
    assert groups == [(26,)]
    assert predicted_makespan(small_contender, groups) == pytest.approx(
        small_contender.data.profile(26).isolated_latency
    )


def test_empty_batch_rejected(small_contender):
    with pytest.raises(ModelError):
        greedy_pairing(small_contender, [])


def test_unknown_template_rejected(small_contender):
    with pytest.raises(ModelError):
        greedy_pairing(small_contender, [26, 999])


def test_makespan_positive(small_contender):
    pairs = greedy_pairing(small_contender, [26, 65])
    assert predicted_makespan(small_contender, pairs) > 0
