"""Measured-execution helper tests."""

import pytest

from repro.apps.simulate import (
    BatchExecution,
    execute_batches,
    measure_placement,
)
from repro.errors import WorkloadError


def test_single_query_batches_run_isolated(small_catalog):
    result = execute_batches(small_catalog, [(26,), (62,)])
    iso26 = small_catalog.run_isolated(26).latency
    iso62 = small_catalog.run_isolated(62).latency
    assert result.makespan == pytest.approx(iso26 + iso62, rel=0.01)
    assert len(result.latencies) == 2


def test_concurrent_batch_extends_makespan(small_catalog):
    solo = execute_batches(small_catalog, [(26,), (82,)])
    paired = execute_batches(small_catalog, [(26, 82)])
    # The pair contends, but still beats fully serial execution.
    assert paired.makespan < solo.makespan
    # And each query inside the pair is slower than isolated.
    for _, template, latency in paired.latencies:
        assert latency > small_catalog.run_isolated(template).latency


def test_worst_slowdown_and_violations(small_catalog):
    result = execute_batches(small_catalog, [(26, 82)])
    worst = result.worst_slowdown(small_catalog)
    assert worst > 1.0
    assert result.sla_violations(small_catalog, sla_factor=1.01) >= 1
    assert result.sla_violations(small_catalog, sla_factor=10.0) == 0


def test_sla_validation(small_catalog):
    result = execute_batches(small_catalog, [(26,)])
    with pytest.raises(WorkloadError):
        result.sla_violations(small_catalog, sla_factor=0.5)


def test_execute_batches_validation(small_catalog):
    with pytest.raises(WorkloadError):
        execute_batches(small_catalog, [])
    with pytest.raises(WorkloadError):
        execute_batches(small_catalog, [()])


def test_measure_placement_reports_all_tenants(small_catalog):
    slowdowns = measure_placement(small_catalog, [(26, 65), (62,)])
    assert set(slowdowns) == {26, 65, 62}
    assert slowdowns[62] == 1.0  # alone on its server
    assert slowdowns[26] >= 1.0


def test_measure_placement_validation(small_catalog):
    with pytest.raises(WorkloadError):
        measure_placement(small_catalog, [])
    with pytest.raises(WorkloadError):
        measure_placement(small_catalog, [()])
