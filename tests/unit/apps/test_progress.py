"""Progress-estimator application tests."""

import pytest

from repro.apps.progress import ProgressEstimator
from repro.errors import ModelError


@pytest.fixture()
def estimator(small_contender):
    return ProgressEstimator(small_contender)


def test_fresh_query_alone_estimates_isolated(estimator, small_contender):
    est = estimator.estimate(26, (26,), 0.0)
    iso = small_contender.data.profile(26).isolated_latency
    assert est.total_seconds == pytest.approx(iso)
    assert est.remaining_seconds == pytest.approx(iso)


def test_remaining_shrinks_with_progress(estimator):
    early = estimator.estimate(26, (26, 65), 0.1)
    late = estimator.estimate(26, (26, 65), 0.9)
    assert late.remaining_seconds < early.remaining_seconds
    assert late.total_seconds == pytest.approx(early.total_seconds)


def test_done_query_has_zero_remaining(estimator):
    est = estimator.estimate(26, (26, 65), 1.0)
    assert est.remaining_seconds == 0.0


def test_contended_mix_extends_estimate(estimator):
    alone = estimator.estimate(26, (26,), 0.5)
    contended = estimator.estimate(26, (26, 82), 0.5)
    assert contended.remaining_seconds > alone.remaining_seconds


def test_replan_keeps_progress(estimator):
    first = estimator.estimate(26, (26, 82), 0.4)
    replanned = estimator.replan(first, (26,))
    assert replanned.fraction_done == 0.4
    assert replanned.mix == (26,)
    assert replanned.remaining_seconds < first.remaining_seconds


def test_validation(estimator):
    with pytest.raises(ModelError):
        estimator.estimate(26, (26,), 1.5)
    with pytest.raises(ModelError):
        estimator.estimate(26, (65,), 0.5)
