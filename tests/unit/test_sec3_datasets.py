"""Unit tests for the Sec. 3 ML dataset construction."""

import numpy as np
import pytest

from repro.core.training import MixObservation
from repro.experiments.harness import ExperimentContext
from repro.experiments.sec3_ml import FIG3_TEMPLATES, build_dataset
from repro.ml.features import FeatureSpace


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.small(mpls=(2,))


def _obs(primary, mix, latency=100.0):
    return MixObservation(
        primary=primary, mix=mix, latency=latency, latency_std=0.0, num_samples=3
    )


def test_fig3_subset_is_the_papers_17():
    assert len(FIG3_TEMPLATES) == 17
    assert 56 in FIG3_TEMPLATES and 60 in FIG3_TEMPLATES
    # Templates the paper dropped (unique features) are absent.
    assert 33 not in FIG3_TEMPLATES
    assert 62 not in FIG3_TEMPLATES


def test_build_dataset_shapes(ctx):
    observations = [_obs(26, (26, 65)), _obs(65, (26, 65)), _obs(26, (26, 71))]
    dataset = build_dataset(ctx, observations)
    assert dataset.X.shape[0] == 3
    assert dataset.y.shape == (3,)
    assert dataset.X.shape[1] % 4 == 0  # the 4n layout
    assert dataset.observations == tuple(observations)


def test_primary_and_concurrent_sides_differ(ctx):
    space = FeatureSpace.build(
        [ctx.catalog.canonical_plan(t) for t in ctx.catalog.template_ids]
    )
    a = build_dataset(ctx, [_obs(26, (26, 65))], space).X[0]
    b = build_dataset(ctx, [_obs(65, (26, 65))], space).X[0]
    # Same mix, different primary: the vectors must differ.
    assert not np.array_equal(a, b)
    # And the halves are swapped feature content.
    n = space.vector_length
    assert np.array_equal(a[:n], b[n:])


def test_duplicate_contender_doubles_concurrent_half(ctx):
    space = FeatureSpace.build(
        [ctx.catalog.canonical_plan(t) for t in ctx.catalog.template_ids]
    )
    single = build_dataset(ctx, [_obs(26, (26, 65))], space).X[0]
    double = build_dataset(ctx, [_obs(26, (26, 65, 65))], space).X[0]
    n = space.vector_length
    assert np.allclose(double[n:], 2 * single[n:])
    assert np.allclose(double[:n], single[:n])


def test_targets_are_latencies(ctx):
    dataset = build_dataset(ctx, [_obs(26, (26, 65), latency=123.0)])
    assert dataset.y[0] == 123.0
