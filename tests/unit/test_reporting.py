"""Text-chart rendering tests."""

import pytest

from repro.errors import ReproError
from repro.reporting import (
    bar_chart,
    grouped_bar_chart,
    scatter_plot,
    series_plot,
)


def test_bar_chart_scales_to_max():
    chart = bar_chart([("a", 0.5), ("b", 1.0)], width=10)
    lines = chart.splitlines()
    assert lines[1].count("█") == 10  # the max fills the width
    assert 4 <= lines[0].count("█") <= 6


def test_bar_chart_labels_aligned():
    chart = bar_chart([("short", 1.0), ("a-long-label", 0.5)])
    lines = chart.splitlines()
    assert lines[0].index("|") == lines[1].index("|")


def test_bar_chart_value_format():
    chart = bar_chart([("a", 0.25)], value_format="{:.0%}")
    assert "25%" in chart


def test_bar_chart_title():
    chart = bar_chart([("a", 1.0)], title="Figure 7")
    assert chart.splitlines()[0] == "Figure 7"


def test_bar_chart_zero_values_ok():
    chart = bar_chart([("a", 0.0), ("b", 0.0)])
    assert "a" in chart and "b" in chart


def test_bar_chart_validation():
    with pytest.raises(ReproError):
        bar_chart([])
    with pytest.raises(ReproError):
        bar_chart([("a", -1.0)])
    with pytest.raises(ReproError):
        bar_chart([("a", 1.0)], width=2)


def test_grouped_bars_have_group_headers():
    chart = grouped_bar_chart(
        {"MPL 2": {"known": 0.1, "unknown": 0.2}, "MPL 3": {"known": 0.15}}
    )
    assert "MPL 2:" in chart and "MPL 3:" in chart
    assert chart.count("|") == 3


def test_grouped_bars_validation():
    with pytest.raises(ReproError):
        grouped_bar_chart({})
    with pytest.raises(ReproError):
        grouped_bar_chart({"g": {"s": -0.1}})


def test_scatter_marks_every_point():
    points = [(0.0, 0.0), (1.0, 1.0), (0.5, 0.5)]
    chart = scatter_plot(points, width=20, height=10)
    assert chart.count("o") == 3


def test_scatter_reports_ranges():
    chart = scatter_plot([(-1.0, 2.0), (3.0, 4.0)], x_label="b", y_label="mu")
    assert "b (-1.00 .. 3.00)" in chart
    assert "mu (2.00 .. 4.00)" in chart


def test_scatter_single_point_degenerate_ranges():
    chart = scatter_plot([(1.0, 1.0)])
    assert chart.count("o") == 1


def test_scatter_validation():
    with pytest.raises(ReproError):
        scatter_plot([])
    with pytest.raises(ReproError):
        scatter_plot([(0, 0)], height=2)


def test_series_plot_uses_distinct_markers():
    chart = series_plot(
        {
            "light": [(1, 100), (2, 200)],
            "heavy": [(1, 100), (2, 500)],
        },
        width=20,
        height=8,
    )
    assert "o = light" in chart
    assert "x = heavy" in chart
    assert "o" in chart and "x" in chart


def test_series_plot_validation():
    with pytest.raises(ReproError):
        series_plot({})
    with pytest.raises(ReproError):
        series_plot({"empty": []})
