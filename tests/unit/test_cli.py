"""CLI tests (driving `repro.cli.main` in process)."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.core.training import TrainingData


def test_workload_lists_templates(capsys):
    assert main(["workload"]) == 0
    out = capsys.readouterr().out
    assert "71" in out and "memory" in out


def test_sql_renders(capsys):
    assert main(["sql", "26", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "SELECT" in out
    assert "${" not in out


def test_isolated_reports_stats(capsys):
    assert main(["isolated", "26"]) == 0
    out = capsys.readouterr().out
    assert "isolated latency" in out
    assert "catalog_sales" in out


def test_mix_reports_slowdowns(capsys):
    assert main(["mix", "26", "65", "--samples", "2"]) == 0
    out = capsys.readouterr().out
    assert "T26" in out and "T65" in out
    assert "x isolated" in out


def test_spoiler_reports_latency(capsys):
    assert main(["spoiler", "62", "--mpl", "3"]) == 0
    out = capsys.readouterr().out
    assert "MPL 3" in out


def test_train_predict_round_trip(tmp_path, capsys):
    out_path = tmp_path / "campaign.pkl"
    assert main([
        "train", "--out", str(out_path), "--mpls", "2", "--lhs-runs", "1",
    ]) == 0
    assert out_path.exists()
    data = TrainingData.load(out_path)
    assert len(data.profiles) == 25

    assert main(["predict", str(out_path), "26", "65"]) == 0
    out = capsys.readouterr().out
    assert "predicted" in out


def test_predict_new_scrubs_template(tmp_path, capsys):
    out_path = tmp_path / "campaign.pkl"
    main(["train", "--out", str(out_path), "--mpls", "2", "--lhs-runs", "1"])
    capsys.readouterr()
    assert main(["predict-new", str(out_path), "71", "26"]) == 0
    out = capsys.readouterr().out
    assert "new T71" in out
    assert "knn" in out


def test_unknown_template_is_a_clean_error(capsys):
    assert main(["isolated", "999"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_experiment_aliases_resolve():
    # Keep the alias table in sync with the experiments package.
    import importlib

    for module_name in EXPERIMENTS.values():
        importlib.import_module(f"repro.experiments.{module_name}")


def test_pack_then_load_test_in_process(tmp_path, capsys, small_training_data):
    campaign = tmp_path / "campaign.pkl"
    small_training_data.save(campaign)
    artifact = tmp_path / "model.json"

    assert main(["pack", str(campaign), "--out", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "packed" in out and "version v1-" in out

    assert main([
        "load-test", str(artifact),
        "--requests", "80", "--submitters", "4", "--pool", "6",
    ]) == 0
    out = capsys.readouterr().out
    assert "p50 latency" in out
    assert "req/s" in out
    assert "cache hit rate" in out
    error_lines = [l for l in out.splitlines() if l.startswith("errors")]
    assert error_lines and error_lines[0].split() == ["errors", "0"]


def test_serve_missing_artifact_fails_cleanly(tmp_path, capsys):
    assert main(["serve", str(tmp_path / "missing.json")]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "cannot read model artifact" in err


def test_serve_schema_mismatch_fails_cleanly(
    tmp_path, capsys, small_training_data
):
    import json

    campaign = tmp_path / "campaign.pkl"
    small_training_data.save(campaign)
    artifact = tmp_path / "model.json"
    main(["pack", str(campaign), "--out", str(artifact)])
    capsys.readouterr()

    doc = json.loads(artifact.read_text())
    doc["schema_version"] = 999
    artifact.write_text(json.dumps(doc))

    assert main(["serve", str(artifact)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "schema version 999" in err
    assert "Traceback" not in err


def test_load_test_requires_exactly_one_target(tmp_path, capsys):
    assert main(["load-test"]) == 2
    err = capsys.readouterr().err
    assert "artifact path or --url" in err

    campaign = tmp_path / "model.json"
    assert main(["load-test", str(campaign), "--url", "127.0.0.1:1"]) == 2


def test_stats_command_against_live_server(
    tmp_path, capsys, small_contender
):
    import json

    from repro.config import ServingConfig
    from repro.serving import PredictionClient, PredictionServer, save_artifact

    artifact = tmp_path / "model.json"
    save_artifact(small_contender, artifact)
    config = ServingConfig(port=0, workers=1, batch_window=0.0)
    with PredictionServer.from_artifact(artifact, config=config) as srv:
        with PredictionClient(srv.host, srv.port) as cli:
            cli.predict(26, (26, 65))
        url = f"{srv.host}:{srv.port}"

        assert main(["stats", url]) == 0
        out = capsys.readouterr().out
        assert "model" in out and "v1-" in out
        assert "hit rate" in out
        assert "enabled (GET /metrics)" in out

        assert main(["stats", url, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["requests"]["predict"] == 1

        assert main(["stats", url, "--prometheus"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE serving_requests_total counter" in text


def test_stats_rejects_malformed_url(capsys):
    assert main(["stats", "no-port-here"]) == 2
    assert "malformed url" in capsys.readouterr().err


def test_stats_unreachable_server_fails_cleanly(capsys):
    assert main(["stats", "127.0.0.1:1"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err


def test_diagnose_command(tmp_path, capsys):
    out_path = tmp_path / "campaign.pkl"
    main(["train", "--out", str(out_path), "--mpls", "2", "--lhs-runs", "1"])
    capsys.readouterr()
    assert main(["diagnose", str(out_path), "--mpl", "2"]) == 0
    out = capsys.readouterr().out
    assert "diagnostics" in out
    assert "unflagged" in out
