"""CLI tests (driving `repro.cli.main` in process)."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.core.training import TrainingData


def test_workload_lists_templates(capsys):
    assert main(["workload"]) == 0
    out = capsys.readouterr().out
    assert "71" in out and "memory" in out


def test_sql_renders(capsys):
    assert main(["sql", "26", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "SELECT" in out
    assert "${" not in out


def test_isolated_reports_stats(capsys):
    assert main(["isolated", "26"]) == 0
    out = capsys.readouterr().out
    assert "isolated latency" in out
    assert "catalog_sales" in out


def test_mix_reports_slowdowns(capsys):
    assert main(["mix", "26", "65", "--samples", "2"]) == 0
    out = capsys.readouterr().out
    assert "T26" in out and "T65" in out
    assert "x isolated" in out


def test_spoiler_reports_latency(capsys):
    assert main(["spoiler", "62", "--mpl", "3"]) == 0
    out = capsys.readouterr().out
    assert "MPL 3" in out


def test_train_predict_round_trip(tmp_path, capsys):
    out_path = tmp_path / "campaign.pkl"
    assert main([
        "train", "--out", str(out_path), "--mpls", "2", "--lhs-runs", "1",
    ]) == 0
    assert out_path.exists()
    data = TrainingData.load(out_path)
    assert len(data.profiles) == 25

    assert main(["predict", str(out_path), "26", "65"]) == 0
    out = capsys.readouterr().out
    assert "predicted" in out


def test_predict_new_scrubs_template(tmp_path, capsys):
    out_path = tmp_path / "campaign.pkl"
    main(["train", "--out", str(out_path), "--mpls", "2", "--lhs-runs", "1"])
    capsys.readouterr()
    assert main(["predict-new", str(out_path), "71", "26"]) == 0
    out = capsys.readouterr().out
    assert "new T71" in out
    assert "knn" in out


def test_unknown_template_is_a_clean_error(capsys):
    assert main(["isolated", "999"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_experiment_aliases_resolve():
    # Keep the alias table in sync with the experiments package.
    import importlib

    for module_name in EXPERIMENTS.values():
        importlib.import_module(f"repro.experiments.{module_name}")


def test_pack_then_load_test_in_process(tmp_path, capsys, small_training_data):
    campaign = tmp_path / "campaign.pkl"
    small_training_data.save(campaign)
    artifact = tmp_path / "model.json"

    assert main(["pack", str(campaign), "--out", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "packed" in out and "version v1-" in out

    assert main([
        "load-test", str(artifact),
        "--requests", "80", "--submitters", "4", "--pool", "6",
    ]) == 0
    out = capsys.readouterr().out
    assert "p50 latency" in out
    assert "req/s" in out
    assert "cache hit rate" in out
    error_lines = [l for l in out.splitlines() if l.startswith("errors")]
    assert error_lines and error_lines[0].split() == ["errors", "0"]


def test_serve_missing_artifact_fails_cleanly(tmp_path, capsys):
    assert main(["serve", str(tmp_path / "missing.json")]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "cannot read model artifact" in err


def test_serve_schema_mismatch_fails_cleanly(
    tmp_path, capsys, small_training_data
):
    import json

    campaign = tmp_path / "campaign.pkl"
    small_training_data.save(campaign)
    artifact = tmp_path / "model.json"
    main(["pack", str(campaign), "--out", str(artifact)])
    capsys.readouterr()

    doc = json.loads(artifact.read_text())
    doc["schema_version"] = 999
    artifact.write_text(json.dumps(doc))

    assert main(["serve", str(artifact)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "schema version 999" in err
    assert "Traceback" not in err


def test_load_test_requires_exactly_one_target(tmp_path, capsys):
    assert main(["load-test"]) == 2
    err = capsys.readouterr().err
    assert "artifact path or --url" in err

    campaign = tmp_path / "model.json"
    assert main(["load-test", str(campaign), "--url", "127.0.0.1:1"]) == 2


def test_stats_command_against_live_server(
    tmp_path, capsys, small_contender
):
    import json

    from repro.config import ServingConfig
    from repro.serving import PredictionClient, PredictionServer, save_artifact

    artifact = tmp_path / "model.json"
    save_artifact(small_contender, artifact)
    config = ServingConfig(port=0, workers=1, batch_window=0.0)
    with PredictionServer.from_artifact(artifact, config=config) as srv:
        with PredictionClient(srv.host, srv.port) as cli:
            cli.predict(26, (26, 65))
        url = f"{srv.host}:{srv.port}"

        assert main(["stats", url]) == 0
        out = capsys.readouterr().out
        assert "model" in out and "v1-" in out
        assert "hit rate" in out
        assert "enabled (GET /metrics)" in out

        assert main(["stats", url, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["requests"]["predict"] == 1

        assert main(["stats", url, "--prometheus"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE serving_requests_total counter" in text


def test_stats_rejects_malformed_url(capsys):
    assert main(["stats", "no-port-here"]) == 2
    assert "malformed url" in capsys.readouterr().err


def test_stats_unreachable_server_fails_cleanly(capsys):
    assert main(["stats", "127.0.0.1:1"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err


def test_diagnose_command(tmp_path, capsys):
    out_path = tmp_path / "campaign.pkl"
    main(["train", "--out", str(out_path), "--mpls", "2", "--lhs-runs", "1"])
    capsys.readouterr()
    assert main(["diagnose", str(out_path), "--mpl", "2"]) == 0
    out = capsys.readouterr().out
    assert "diagnostics" in out
    assert "unflagged" in out


def test_lifecycle_status_on_empty_state_dir(tmp_path, capsys):
    assert main(["lifecycle", "status", "--state-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "current   : -" in out
    assert "0 records" in out


def test_lifecycle_promote_and_rollback_cycle(
    tmp_path, small_contender, small_training_data, capsys
):
    from repro.core.contender import Contender
    from repro.serving.registry import load_artifact, save_artifact

    state = tmp_path / "state"
    state.mkdir()
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    save_artifact(small_contender, first)
    save_artifact(
        Contender(
            small_training_data.restricted_to(
                [t for t in small_training_data.template_ids if t != 22]
            )
        ),
        second,
    )

    # First promote into an empty slot initializes it.
    assert main(["lifecycle", "promote", str(first), "--state-dir", str(state)]) == 0
    assert "initialized" in capsys.readouterr().out
    first_fp = load_artifact(state / "model.json").info.fingerprint

    # Second promote is a forced (ungated) flip.
    assert main(["lifecycle", "promote", str(second), "--state-dir", str(state)]) == 0
    out = capsys.readouterr().out
    assert "promoted" in out and "forced" in out
    assert load_artifact(state / "model.json").info.fingerprint != first_fp

    assert main(["lifecycle", "rollback", "--state-dir", str(state)]) == 0
    assert "rolled back" in capsys.readouterr().out
    assert load_artifact(state / "model.json").info.fingerprint == first_fp

    assert main(["lifecycle", "status", "--state-dir", str(state)]) == 0
    out = capsys.readouterr().out
    assert "3 records" in out
    assert "rollback" in out


def test_lifecycle_status_json_is_machine_readable(
    tmp_path, small_contender, capsys
):
    import json

    from repro.serving.registry import save_artifact

    artifact = tmp_path / "cand.json"
    save_artifact(small_contender, artifact)
    state = tmp_path / "state"
    state.mkdir()
    main(["lifecycle", "promote", str(artifact), "--state-dir", str(state)])
    capsys.readouterr()
    assert main(
        ["lifecycle", "status", "--state-dir", str(state), "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["current_fingerprint"]
    assert [r["action"] for r in doc["promotions"]] == ["initialize"]


def test_lifecycle_rollback_without_backup_fails_cleanly(tmp_path, capsys):
    assert main(["lifecycle", "rollback", "--state-dir", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "roll back" in err


def test_stats_shows_lifecycle_detector_state(
    tmp_path, small_contender, capsys
):
    import json

    from repro.config import LifecycleConfig, ServingConfig
    from repro.serving import PredictionClient, PredictionServer, save_artifact

    artifact = tmp_path / "model.json"
    save_artifact(small_contender, artifact)
    config = ServingConfig(port=0)
    lifecycle = LifecycleConfig(
        reference_window=4, test_window=2, min_samples=4, residual_window=16
    )
    with PredictionServer.from_artifact(
        artifact, config=config, lifecycle=lifecycle
    ) as srv:
        with PredictionClient(srv.host, srv.port) as cli:
            latency = cli.predict(26, (26, 65)).latency
            for _ in range(4):
                cli.observe(26, (26, 65), latency * 1.02)
            for _ in range(4):
                cli.observe(26, (26, 65), latency * 2.0)
        url = f"{srv.host}:{srv.port}"

        assert main(["stats", url]) == 0
        out = capsys.readouterr().out
        assert "lifecycle" in out
        assert "1 drifted (T26)" in out
        assert "last verdict mean_shift" in out

        assert main(["stats", url, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["lifecycle"]["drifted"] == [26]
        assert doc["lifecycle"]["templates"][0]["window_size"] > 0

        assert main(["stats", url, "--prometheus"]) == 0
        text = capsys.readouterr().out
        assert "lifecycle_residuals_total" in text
        assert "lifecycle_residual_window_size" in text
        assert 'lifecycle_template_drifted{template="26"} 1' in text
