"""CLI tests (driving `repro.cli.main` in process)."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.core.training import TrainingData


def test_workload_lists_templates(capsys):
    assert main(["workload"]) == 0
    out = capsys.readouterr().out
    assert "71" in out and "memory" in out


def test_sql_renders(capsys):
    assert main(["sql", "26", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "SELECT" in out
    assert "${" not in out


def test_isolated_reports_stats(capsys):
    assert main(["isolated", "26"]) == 0
    out = capsys.readouterr().out
    assert "isolated latency" in out
    assert "catalog_sales" in out


def test_mix_reports_slowdowns(capsys):
    assert main(["mix", "26", "65", "--samples", "2"]) == 0
    out = capsys.readouterr().out
    assert "T26" in out and "T65" in out
    assert "x isolated" in out


def test_spoiler_reports_latency(capsys):
    assert main(["spoiler", "62", "--mpl", "3"]) == 0
    out = capsys.readouterr().out
    assert "MPL 3" in out


def test_train_predict_round_trip(tmp_path, capsys):
    out_path = tmp_path / "campaign.pkl"
    assert main([
        "train", "--out", str(out_path), "--mpls", "2", "--lhs-runs", "1",
    ]) == 0
    assert out_path.exists()
    data = TrainingData.load(out_path)
    assert len(data.profiles) == 25

    assert main(["predict", str(out_path), "26", "65"]) == 0
    out = capsys.readouterr().out
    assert "predicted" in out


def test_predict_new_scrubs_template(tmp_path, capsys):
    out_path = tmp_path / "campaign.pkl"
    main(["train", "--out", str(out_path), "--mpls", "2", "--lhs-runs", "1"])
    capsys.readouterr()
    assert main(["predict-new", str(out_path), "71", "26"]) == 0
    out = capsys.readouterr().out
    assert "new T71" in out
    assert "knn" in out


def test_unknown_template_is_a_clean_error(capsys):
    assert main(["isolated", "999"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_experiment_aliases_resolve():
    # Keep the alias table in sync with the experiments package.
    import importlib

    for module_name in EXPERIMENTS.values():
        importlib.import_module(f"repro.experiments.{module_name}")


def test_diagnose_command(tmp_path, capsys):
    out_path = tmp_path / "campaign.pkl"
    main(["train", "--out", str(out_path), "--mpls", "2", "--lhs-runs", "1"])
    capsys.readouterr()
    assert main(["diagnose", str(out_path), "--mpl", "2"]) == 0
    out = capsys.readouterr().out
    assert "diagnostics" in out
    assert "unflagged" in out
