"""Goodness-of-fit metric tests."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.metrics.fit import pearson_r, r_squared, signed_r_squared


def test_pearson_perfect_positive():
    assert pearson_r([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)


def test_pearson_perfect_negative():
    assert pearson_r([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)


def test_pearson_constant_input_is_zero():
    assert pearson_r([1, 1, 1], [1, 2, 3]) == 0.0


def test_r_squared_perfect():
    assert r_squared([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)


def test_r_squared_mean_predictor_is_zero():
    obs = [1.0, 2.0, 3.0]
    mean = [2.0, 2.0, 2.0]
    assert r_squared(obs, mean) == pytest.approx(0.0)


def test_r_squared_can_be_negative():
    assert r_squared([1.0, 2.0, 3.0], [3.0, 3.0, 0.0]) < 0


def test_r_squared_constant_observations():
    assert r_squared([2.0, 2.0], [2.0, 2.0]) == 1.0
    assert r_squared([2.0, 2.0], [1.0, 3.0]) == 0.0


def test_signed_r_squared_sign_follows_correlation():
    assert signed_r_squared([1, 2, 3, 4], [2, 4, 5, 9]) > 0
    assert signed_r_squared([1, 2, 3, 4], [9, 5, 4, 2]) < 0


def test_signed_r_squared_magnitude_is_pearson_squared():
    x = [1.0, 2.0, 3.0, 4.0, 5.0]
    y = [2.1, 3.9, 6.2, 7.8, 10.5]
    r = pearson_r(x, y)
    assert signed_r_squared(x, y) == pytest.approx(r * r)


def test_validation():
    with pytest.raises(ModelError):
        pearson_r([1.0], [1.0])
    with pytest.raises(ModelError):
        r_squared([1.0, 2.0], [1.0])
