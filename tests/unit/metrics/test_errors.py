"""Error-metric tests."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.metrics.errors import (
    mean_absolute_error,
    mean_relative_error,
    relative_errors,
)


def test_perfect_prediction_is_zero():
    assert mean_relative_error([1.0, 2.0], [1.0, 2.0]) == 0.0


def test_mre_matches_eq1():
    observed = [100.0, 200.0]
    predicted = [110.0, 150.0]
    expected = (abs(100 - 110) / 100 + abs(200 - 150) / 200) / 2
    assert mean_relative_error(observed, predicted) == pytest.approx(expected)


def test_mre_symmetric_in_error_sign():
    assert mean_relative_error([100.0], [90.0]) == mean_relative_error(
        [100.0], [110.0]
    )


def test_relative_errors_per_sample():
    errs = relative_errors([10.0, 20.0], [11.0, 18.0])
    assert errs == pytest.approx([0.1, 0.1])


def test_mae_in_observation_units():
    assert mean_absolute_error([10.0, 20.0], [12.0, 16.0]) == pytest.approx(3.0)


def test_shape_mismatch_rejected():
    with pytest.raises(ModelError):
        mean_relative_error([1.0], [1.0, 2.0])


def test_empty_rejected():
    with pytest.raises(ModelError):
        mean_relative_error([], [])


def test_nonpositive_observation_rejected():
    with pytest.raises(ModelError):
        mean_relative_error([0.0], [1.0])
    with pytest.raises(ModelError):
        mean_relative_error([-1.0], [1.0])
