"""KCCA regressor tests."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.kcca import KCCARegressor


@pytest.fixture()
def dataset(rng):
    """Latency is a smooth function of 2 informative features."""
    X = rng.uniform(size=(60, 4))
    latency = 100 + 400 * X[:, 0] + 200 * X[:, 1] ** 2
    return X, latency


def test_predicts_training_neighbourhood(dataset):
    X, latency = dataset
    model = KCCARegressor(k=3).fit(X, latency)
    preds = model.predict(X)
    mre = np.mean(np.abs(preds - latency) / latency)
    assert mre < 0.2


def test_generalizes_to_nearby_points(dataset, rng):
    X, latency = dataset
    model = KCCARegressor(k=3).fit(X, latency)
    X_new = np.clip(X[:10] + rng.normal(scale=0.02, size=(10, 4)), 0, 1)
    lat_new = 100 + 400 * X_new[:, 0] + 200 * X_new[:, 1] ** 2
    preds = model.predict(X_new)
    assert np.mean(np.abs(preds - lat_new) / lat_new) < 0.25


def test_projection_dimensions(dataset):
    X, latency = dataset
    model = KCCARegressor(n_components=3).fit(X, latency)
    Z = model.project(X[:5])
    assert Z.shape == (5, 3)


def test_predictions_within_training_latency_range(dataset, rng):
    X, latency = dataset
    model = KCCARegressor(k=3).fit(X, latency)
    preds = model.predict(rng.uniform(size=(20, 4)))
    assert preds.min() >= latency.min()
    assert preds.max() <= latency.max()


def test_far_from_training_gives_poor_but_finite_predictions(dataset):
    X, latency = dataset
    model = KCCARegressor(k=3).fit(X, latency)
    far = np.full((3, 4), 50.0)
    preds = model.predict(far)
    assert np.all(np.isfinite(preds))


def test_validation(dataset):
    X, latency = dataset
    with pytest.raises(ModelError):
        KCCARegressor(n_components=0)
    with pytest.raises(ModelError):
        KCCARegressor(k=0)
    with pytest.raises(ModelError):
        KCCARegressor(reg=0)
    with pytest.raises(ModelError):
        KCCARegressor().fit(X[:2], latency[:2])
    with pytest.raises(NotFittedError):
        KCCARegressor().predict(X)
