"""Cross-validation splitter tests."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.crossval import kfold_indices, leave_one_out


def test_kfold_partitions_everything():
    folds = kfold_indices(10, 5)
    test_union = np.concatenate([test for _, test in folds])
    assert sorted(test_union) == list(range(10))


def test_kfold_train_test_disjoint():
    for train, test in kfold_indices(10, 3):
        assert set(train).isdisjoint(set(test))
        assert len(train) + len(test) == 10


def test_kfold_sizes_balanced():
    folds = kfold_indices(10, 3)
    sizes = sorted(len(test) for _, test in folds)
    assert sizes == [3, 3, 4]


def test_kfold_shuffles_with_rng(rng):
    plain = kfold_indices(10, 2)
    shuffled = kfold_indices(10, 2, rng)
    assert not np.array_equal(plain[0][1], shuffled[0][1])


def test_kfold_validation():
    with pytest.raises(ModelError):
        kfold_indices(1, 2)
    with pytest.raises(ModelError):
        kfold_indices(5, 1)
    with pytest.raises(ModelError):
        kfold_indices(5, 6)


def test_leave_one_out_covers_each_item():
    items = ["a", "b", "c"]
    splits = list(leave_one_out(items))
    assert [held for _, held in splits] == items
    for rest, held in splits:
        assert held not in rest
        assert len(rest) == 2


def test_leave_one_out_needs_two_items():
    with pytest.raises(ModelError):
        list(leave_one_out(["only"]))
