"""ε-SVR tests."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.svm import SVR


@pytest.fixture()
def dataset(rng):
    X = rng.uniform(size=(120, 2))
    y = 100 + 300 * X[:, 0] + 100 * np.sin(3 * X[:, 1])
    return X[:90], y[:90], X[90:], y[90:]


def test_svr_fits_smooth_function(dataset):
    X_train, y_train, X_test, y_test = dataset
    model = SVR(iterations=800).fit(X_train, y_train)
    pred = model.predict(X_test)
    mre = float(np.mean(np.abs(pred - y_test) / y_test))
    assert mre < 0.10


def test_svr_interpolates_training_points(dataset):
    X_train, y_train, _, _ = dataset
    model = SVR(iterations=800).fit(X_train, y_train)
    pred = model.predict(X_train)
    mre = float(np.mean(np.abs(pred - y_train) / y_train))
    assert mre < 0.08


def test_svr_constant_target(rng):
    X = rng.uniform(size=(30, 2))
    y = np.full(30, 42.0)
    model = SVR().fit(X, y)
    assert model.predict(X) == pytest.approx(np.full(30, 42.0), rel=0.05)


def test_svr_epsilon_widens_tolerance(dataset):
    X_train, y_train, X_test, y_test = dataset
    tight = SVR(epsilon=0.01, iterations=800).fit(X_train, y_train)
    loose = SVR(epsilon=1.5, iterations=800).fit(X_train, y_train)
    err_tight = float(np.mean(np.abs(tight.predict(X_test) - y_test)))
    err_loose = float(np.mean(np.abs(loose.predict(X_test) - y_test)))
    assert err_tight < err_loose


def test_svr_validation():
    with pytest.raises(ModelError):
        SVR(C=0)
    with pytest.raises(ModelError):
        SVR(epsilon=-1)
    with pytest.raises(ModelError):
        SVR(iterations=0)
    with pytest.raises(ModelError):
        SVR(learning_rate=0)
    with pytest.raises(ModelError):
        SVR().fit([[0.0]], [1.0, 2.0])
    with pytest.raises(ModelError):
        SVR().fit([[0.0]], [1.0])
    with pytest.raises(NotFittedError):
        SVR().predict([[0.0]])
