"""Kernel-function tests."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.kernels import center_kernel, median_heuristic_gamma, rbf_kernel


def test_rbf_diagonal_is_one():
    X = np.array([[1.0, 2.0], [3.0, 4.0]])
    K = rbf_kernel(X, gamma=0.5)
    assert np.diag(K) == pytest.approx([1.0, 1.0])


def test_rbf_symmetric():
    X = np.random.default_rng(0).normal(size=(5, 3))
    K = rbf_kernel(X, gamma=1.0)
    assert K == pytest.approx(K.T)


def test_rbf_decays_with_distance():
    X = np.array([[0.0], [1.0], [10.0]])
    K = rbf_kernel(X, gamma=1.0)
    assert K[0, 1] > K[0, 2]


def test_rbf_cross_matrix_shape():
    X = np.zeros((3, 2))
    Y = np.zeros((5, 2))
    assert rbf_kernel(X, Y, gamma=1.0).shape == (3, 5)


def test_rbf_matches_definition():
    x = np.array([[0.0, 0.0]])
    y = np.array([[3.0, 4.0]])
    K = rbf_kernel(x, y, gamma=0.1)
    assert K[0, 0] == pytest.approx(np.exp(-0.1 * 25.0))


def test_rbf_rejects_bad_gamma():
    with pytest.raises(ModelError):
        rbf_kernel(np.zeros((2, 2)), gamma=0.0)


def test_median_heuristic_positive():
    X = np.random.default_rng(1).normal(size=(20, 4))
    gamma = median_heuristic_gamma(X)
    assert gamma > 0


def test_median_heuristic_degenerate_input():
    assert median_heuristic_gamma(np.zeros((5, 2))) == 1.0
    assert median_heuristic_gamma(np.zeros((1, 2))) == 1.0


def test_center_kernel_rows_sum_to_zero():
    X = np.random.default_rng(2).normal(size=(6, 3))
    K = center_kernel(rbf_kernel(X, gamma=1.0))
    assert K.sum(axis=0) == pytest.approx(np.zeros(6), abs=1e-9)
    assert K.sum(axis=1) == pytest.approx(np.zeros(6), abs=1e-9)


def test_center_kernel_requires_square():
    with pytest.raises(ModelError):
        center_kernel(np.zeros((2, 3)))
