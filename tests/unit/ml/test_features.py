"""QEP feature-extraction tests (the Sec. 3 layout)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.features import FeatureSpace, mix_feature_vector, standardize_columns


@pytest.fixture()
def plans(catalog):
    return {t: catalog.canonical_plan(t) for t in (26, 62, 71)}


@pytest.fixture()
def space(plans):
    return FeatureSpace.build(list(plans.values()))


def test_space_contains_table_specific_scan_features(space):
    assert "SeqScan:catalog_sales" in space.steps
    assert "SeqScan:store_sales" in space.steps


def test_vector_length_is_2n(space, plans):
    vec = space.vector(plans[26])
    assert len(vec) == 2 * space.num_steps


def test_counts_and_cardinalities_paired(space, plans):
    plan = plans[26]
    vec = space.vector(plan)
    idx = space.steps.index("SeqScan:catalog_sales")
    assert vec[2 * idx] == 1.0  # one catalog_sales scan
    assert vec[2 * idx + 1] > 0  # with its cardinality


def test_unknown_steps_ignored(plans):
    narrow = FeatureSpace.build([plans[26]])
    vec = narrow.vector(plans[71])  # has steps the space never saw
    assert len(vec) == narrow.vector_length
    assert np.all(np.isfinite(vec))


def test_mix_vector_is_4n(space, plans):
    vec = mix_feature_vector(space, plans[26], [plans[62], plans[71]])
    assert len(vec) == 2 * space.vector_length


def test_mix_vector_sums_concurrent_features(space, plans):
    single = mix_feature_vector(space, plans[26], [plans[62]])
    double = mix_feature_vector(space, plans[26], [plans[62], plans[62]])
    n = space.vector_length
    assert double[n:] == pytest.approx(2 * single[n:])
    assert double[:n] == pytest.approx(single[:n])


def test_empty_concurrent_side_is_zero(space, plans):
    vec = mix_feature_vector(space, plans[26], [])
    assert np.all(vec[space.vector_length :] == 0)


def test_space_requires_plans():
    with pytest.raises(ModelError):
        FeatureSpace.build([])


def test_standardize_columns_zero_mean_unit_std():
    X = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
    Xs, mean, scale = standardize_columns(X)
    assert Xs.mean(axis=0) == pytest.approx([0.0, 0.0])
    assert Xs.std(axis=0) == pytest.approx([1.0, 1.0])


def test_standardize_constant_column_maps_to_zero():
    X = np.array([[5.0, 1.0], [5.0, 2.0]])
    Xs, _, scale = standardize_columns(X)
    assert np.all(Xs[:, 0] == 0.0)
    assert scale[0] == 1.0
