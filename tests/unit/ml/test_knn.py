"""KNN regressor tests."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.knn import KNNRegressor


def test_k1_returns_nearest_target():
    knn = KNNRegressor(k=1).fit([[0.0], [10.0]], [1.0, 2.0])
    assert knn.predict_scalar([1.0]) == 1.0
    assert knn.predict_scalar([9.0]) == 2.0


def test_k_averages_targets():
    knn = KNNRegressor(k=2, standardize=False).fit(
        [[0.0], [1.0], [100.0]], [10.0, 20.0, 99.0]
    )
    assert knn.predict_scalar([0.5]) == pytest.approx(15.0)


def test_vector_targets():
    knn = KNNRegressor(k=2, standardize=False).fit(
        [[0.0], [1.0]], [[1.0, 10.0], [3.0, 30.0]]
    )
    assert knn.predict([0.5]) == pytest.approx([2.0, 20.0])


def test_standardization_balances_feature_scales():
    # Feature 0 spans millions, feature 1 spans fractions; without
    # standardization feature 1 would be irrelevant.
    X = [[1e6, 0.0], [1e6, 1.0], [1.1e6, 0.0]]
    y = [0.0, 1.0, 2.0]
    knn = KNNRegressor(k=1).fit(X, y)
    assert knn.predict_scalar([1e6, 0.9]) == 1.0


def test_k_larger_than_train_set_uses_all():
    knn = KNNRegressor(k=10).fit([[0.0], [1.0]], [2.0, 4.0])
    assert knn.predict_scalar([0.5]) == pytest.approx(3.0)


def test_neighbors_indices_sorted_by_distance():
    knn = KNNRegressor(k=2, standardize=False).fit(
        [[0.0], [5.0], [1.0]], [0, 1, 2]
    )
    assert list(knn.neighbors([0.1])) == [0, 2]


def test_constant_feature_column_tolerated():
    knn = KNNRegressor(k=1).fit([[1.0, 5.0], [2.0, 5.0]], [1.0, 2.0])
    assert knn.predict_scalar([1.9, 5.0]) == 2.0


def test_predict_scalar_rejects_vector_targets():
    knn = KNNRegressor(k=1).fit([[0.0]], [[1.0, 2.0]])
    with pytest.raises(ModelError):
        knn.predict_scalar([0.0])


def test_not_fitted():
    with pytest.raises(NotFittedError):
        KNNRegressor().predict([0.0])


def test_validation():
    with pytest.raises(ModelError):
        KNNRegressor(k=0)
    with pytest.raises(ModelError):
        KNNRegressor().fit([[0.0]], [1.0, 2.0])
