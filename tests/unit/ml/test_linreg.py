"""Linear-regression tests (validated against numpy.polyfit)."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.linreg import LinearRegression, SimpleLinearRegression


def test_recovers_exact_line():
    reg = SimpleLinearRegression().fit([0, 1, 2, 3], [1, 3, 5, 7])
    assert reg.slope == pytest.approx(2.0)
    assert reg.intercept == pytest.approx(1.0)
    assert reg.predict(10) == pytest.approx(21.0)


def test_matches_numpy_polyfit(rng):
    x = rng.normal(size=50)
    y = 3.2 * x - 1.1 + rng.normal(scale=0.3, size=50)
    reg = SimpleLinearRegression().fit(x, y)
    slope, intercept = np.polyfit(x, y, 1)
    assert reg.slope == pytest.approx(slope)
    assert reg.intercept == pytest.approx(intercept)


def test_constant_x_predicts_mean():
    reg = SimpleLinearRegression().fit([2, 2, 2], [1, 2, 3])
    assert reg.slope == 0.0
    assert reg.predict(99) == pytest.approx(2.0)


def test_predict_before_fit_raises():
    with pytest.raises(NotFittedError):
        SimpleLinearRegression().predict(1.0)


def test_predict_many_vectorized():
    reg = SimpleLinearRegression().fit([0, 1], [0, 2])
    out = reg.predict_many([0, 1, 2])
    assert out == pytest.approx([0, 2, 4])


def test_too_few_samples_rejected():
    with pytest.raises(ModelError):
        SimpleLinearRegression().fit([1], [1])


def test_shape_mismatch_rejected():
    with pytest.raises(ModelError):
        SimpleLinearRegression().fit([1, 2], [1, 2, 3])


def test_multifeature_recovers_coefficients(rng):
    X = rng.normal(size=(100, 3))
    beta = np.array([1.0, -2.0, 0.5])
    y = X @ beta + 4.0
    reg = LinearRegression().fit(X, y)
    assert reg.coef == pytest.approx(beta)
    assert reg.intercept == pytest.approx(4.0)
    assert reg.predict(X) == pytest.approx(y)


def test_ridge_shrinks_coefficients(rng):
    X = rng.normal(size=(40, 2))
    y = X @ np.array([5.0, -5.0]) + rng.normal(scale=0.1, size=40)
    ols = LinearRegression().fit(X, y)
    ridge = LinearRegression(ridge=100.0).fit(X, y)
    assert np.linalg.norm(ridge.coef) < np.linalg.norm(ols.coef)


def test_rank_deficient_tolerated():
    X = [[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]]  # second column = 2x first
    y = [1.0, 2.0, 3.0]
    reg = LinearRegression().fit(X, y)
    assert reg.predict(X) == pytest.approx(y)


def test_multifeature_validation():
    with pytest.raises(ModelError):
        LinearRegression(ridge=-1)
    with pytest.raises(ModelError):
        LinearRegression().fit([[1, 2]], [1, 2])
    with pytest.raises(NotFittedError):
        LinearRegression().predict([[1.0, 2.0]])
