"""SVM baseline tests."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.svm import SVC, SVMLatencyPredictor


@pytest.fixture()
def blobs(rng):
    """Three well-separated Gaussian blobs."""
    centers = np.array([[0.0, 0.0], [6.0, 6.0], [0.0, 8.0]])
    X, y = [], []
    for label, center in enumerate(centers):
        pts = rng.normal(scale=0.4, size=(25, 2)) + center
        X.append(pts)
        y.extend([label] * 25)
    return np.vstack(X), np.array(y)


def test_svc_separates_blobs(blobs):
    X, y = blobs
    model = SVC(C=10.0, seed=1).fit(X, y)
    pred = model.predict(X)
    assert np.mean(pred == y) > 0.95


def test_svc_classifies_new_points(blobs):
    X, y = blobs
    model = SVC(C=10.0, seed=1).fit(X, y)
    assert model.predict([[0.1, 0.2]])[0] == 0
    assert model.predict([[6.2, 5.9]])[0] == 1
    assert model.predict([[-0.2, 7.9]])[0] == 2


def test_svc_binary_case(rng):
    X = np.vstack([rng.normal(size=(20, 1)) - 4, rng.normal(size=(20, 1)) + 4])
    y = np.array([0] * 20 + [1] * 20)
    model = SVC(seed=2).fit(X, y)
    assert np.mean(model.predict(X) == y) > 0.95


def test_svc_requires_two_classes():
    with pytest.raises(ModelError):
        SVC().fit([[0.0], [1.0]], [1, 1])


def test_svc_not_fitted():
    with pytest.raises(NotFittedError):
        SVC().predict([[0.0]])


def test_svc_rejects_bad_c():
    with pytest.raises(ModelError):
        SVC(C=0)


def test_latency_predictor_returns_bin_means(rng):
    # Latency is a clean function of the single feature.
    X = np.linspace(0, 1, 80)[:, None]
    lat = 100 + 900 * X[:, 0]
    model = SVMLatencyPredictor(num_bins=4, seed=3).fit(X, lat)
    preds = model.predict(X)
    # Predictions are coarse (bin means) but must track the trend.
    assert preds[0] < preds[-1]
    assert np.mean(np.abs(preds - lat) / lat) < 0.35


def test_latency_predictor_output_in_training_range(rng):
    X = rng.normal(size=(60, 2))
    lat = 100 + 50 * np.abs(X[:, 0])
    model = SVMLatencyPredictor(num_bins=4, seed=4).fit(X, lat)
    preds = model.predict(rng.normal(size=(10, 2)))
    assert preds.min() >= lat.min()
    assert preds.max() <= lat.max()


def test_latency_predictor_validation():
    with pytest.raises(ModelError):
        SVMLatencyPredictor(num_bins=1)
    with pytest.raises(ModelError):
        SVMLatencyPredictor().fit([[0.0], [1.0]], [-1.0, 2.0])
    with pytest.raises(ModelError):
        SVMLatencyPredictor().fit([[0.0], [1.0]], [5.0, 5.0])
    with pytest.raises(NotFittedError):
        SVMLatencyPredictor().predict([[0.0]])
