"""SVM baseline tests."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.svm import SVC, SVMLatencyPredictor


@pytest.fixture()
def blobs(rng):
    """Three well-separated Gaussian blobs."""
    centers = np.array([[0.0, 0.0], [6.0, 6.0], [0.0, 8.0]])
    X, y = [], []
    for label, center in enumerate(centers):
        pts = rng.normal(scale=0.4, size=(25, 2)) + center
        X.append(pts)
        y.extend([label] * 25)
    return np.vstack(X), np.array(y)


def test_svc_separates_blobs(blobs):
    X, y = blobs
    model = SVC(C=10.0, seed=1).fit(X, y)
    pred = model.predict(X)
    assert np.mean(pred == y) > 0.95


def test_svc_classifies_new_points(blobs):
    X, y = blobs
    model = SVC(C=10.0, seed=1).fit(X, y)
    assert model.predict([[0.1, 0.2]])[0] == 0
    assert model.predict([[6.2, 5.9]])[0] == 1
    assert model.predict([[-0.2, 7.9]])[0] == 2


def test_svc_binary_case(rng):
    X = np.vstack([rng.normal(size=(20, 1)) - 4, rng.normal(size=(20, 1)) + 4])
    y = np.array([0] * 20 + [1] * 20)
    model = SVC(seed=2).fit(X, y)
    assert np.mean(model.predict(X) == y) > 0.95


def test_svc_requires_two_classes():
    with pytest.raises(ModelError):
        SVC().fit([[0.0], [1.0]], [1, 1])


def test_svc_not_fitted():
    with pytest.raises(NotFittedError):
        SVC().predict([[0.0]])


def test_svc_rejects_bad_c():
    with pytest.raises(ModelError):
        SVC(C=0)


def test_latency_predictor_returns_bin_means(rng):
    # Latency is a clean function of the single feature.
    X = np.linspace(0, 1, 80)[:, None]
    lat = 100 + 900 * X[:, 0]
    model = SVMLatencyPredictor(num_bins=4, seed=3).fit(X, lat)
    preds = model.predict(X)
    # Predictions are coarse (bin means) but must track the trend.
    assert preds[0] < preds[-1]
    assert np.mean(np.abs(preds - lat) / lat) < 0.35


def test_latency_predictor_output_in_training_range(rng):
    X = rng.normal(size=(60, 2))
    lat = 100 + 50 * np.abs(X[:, 0])
    model = SVMLatencyPredictor(num_bins=4, seed=4).fit(X, lat)
    preds = model.predict(rng.normal(size=(10, 2)))
    assert preds.min() >= lat.min()
    assert preds.max() <= lat.max()


def test_latency_predictor_validation():
    with pytest.raises(ModelError):
        SVMLatencyPredictor(num_bins=1)
    with pytest.raises(ModelError):
        SVMLatencyPredictor().fit([[0.0], [1.0]], [-1.0, 2.0])
    with pytest.raises(ModelError):
        SVMLatencyPredictor().fit([[0.0], [1.0]], [5.0, 5.0])
    with pytest.raises(NotFittedError):
        SVMLatencyPredictor().predict([[0.0]])


# ---------------------------------------------------------------------------
# SMO error cache: the screened cache must not change a single decision.


def _fit_smo_reference(K, y, rng, C=10.0, tol=1e-3, max_passes=8):
    """The pre-cache SMO loop, recomputing every error from scratch."""
    n = K.shape[0]
    alpha = np.zeros(n)
    b = 0.0
    passes = 0
    while passes < max_passes:
        changed = 0
        for i in range(n):
            err_i = float((alpha * y) @ K[:, i]) + b - y[i]
            if (y[i] * err_i < -tol and alpha[i] < C) or (
                y[i] * err_i > tol and alpha[i] > 0
            ):
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                err_j = float((alpha * y) @ K[:, j]) + b - y[j]
                ai_old, aj_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, aj_old - ai_old)
                    high = min(C, C + aj_old - ai_old)
                else:
                    low = max(0.0, ai_old + aj_old - C)
                    high = min(C, ai_old + aj_old)
                if low >= high:
                    continue
                eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                if eta >= 0:
                    continue
                aj = aj_old - y[j] * (err_i - err_j) / eta
                aj = float(np.clip(aj, low, high))
                if abs(aj - aj_old) < 1e-5:
                    continue
                ai = ai_old + y[i] * y[j] * (aj_old - aj)
                alpha[i], alpha[j] = ai, aj
                b1 = (
                    b
                    - err_i
                    - y[i] * (ai - ai_old) * K[i, i]
                    - y[j] * (aj - aj_old) * K[i, j]
                )
                b2 = (
                    b
                    - err_j
                    - y[i] * (ai - ai_old) * K[i, j]
                    - y[j] * (aj - aj_old) * K[j, j]
                )
                if 0 < ai < C:
                    b = b1
                elif 0 < aj < C:
                    b = b2
                else:
                    b = (b1 + b2) / 2.0
                changed += 1
        passes = passes + 1 if changed == 0 else 0
    return alpha, b


@pytest.mark.parametrize("trial", range(4))
def test_smo_error_cache_is_bit_identical(rng, trial):
    from repro.ml.kernels import rbf_kernel
    from repro.ml.svm import _BinarySVC

    n = 40 + 20 * trial
    X = rng.normal(size=(n, 4))
    y = np.where(X[:, 0] + 0.3 * rng.normal(size=n) > 0, 1.0, -1.0)
    K = rbf_kernel(X, gamma=0.4)
    alpha_ref, b_ref = _fit_smo_reference(
        K, y, np.random.default_rng(100 + trial)
    )
    machine = _BinarySVC(10.0)
    machine.fit(K, y, np.random.default_rng(100 + trial))
    assert np.array_equal(alpha_ref, machine.alpha)
    assert b_ref == machine.b


def test_top_eigenvalue_matches_eigvalsh(rng):
    from repro.ml.kernels import rbf_kernel
    from repro.ml.svm import _top_eigenvalue

    for _ in range(3):
        X = rng.normal(size=(50, 3))
        K = rbf_kernel(X, gamma=0.5)
        exact = float(np.linalg.eigvalsh(K)[-1])
        assert _top_eigenvalue(K) == pytest.approx(exact, rel=1e-8)


def test_top_eigenvalue_zero_matrix():
    from repro.ml.svm import _top_eigenvalue

    assert _top_eigenvalue(np.zeros((5, 5))) == 0.0


def test_latency_predictor_handles_empty_quantile_bin(recwarn):
    """Heavily tied latencies leave a quantile bin empty; the empty bin
    must be dropped instead of surfacing as a NaN 'prediction'."""
    lat = np.array([0.1, 0.1, 0.1, 1.0, 10.0, 10.0, 10.0, 11.0])
    X = np.column_stack([lat, np.arange(lat.size, dtype=float)])
    model = SVMLatencyPredictor(num_bins=4, seed=5).fit(X, lat)
    preds = model.predict(X)
    assert not np.any(np.isnan(preds))
    # Every prediction is the mean of an occupied bin.
    assert set(np.round(preds, 6)) <= set(
        np.round(model._bin_values, 6)
    )
    assert not any(
        issubclass(w.category, RuntimeWarning) for w in recwarn.list
    )


def test_svc_vote_vectorization_matches_per_row_loop(blobs):
    """np.add.at vote accumulation must reproduce the per-row loop."""
    X, y = blobs
    model = SVC(C=10.0, seed=6).fit(X, y)
    from repro.ml.kernels import rbf_kernel

    Xq = (np.atleast_2d(X) - model._mean) / model._scale
    K_new = rbf_kernel(Xq, model._X, gamma=model._gamma_fitted)
    votes = np.zeros((Xq.shape[0], model._classes.size), dtype=int)
    class_pos = {c: i for i, c in enumerate(model._classes)}
    for cls_a, cls_b, idx, machine in model._machines:
        decision = machine.decision(K_new[:, idx])
        winners = np.where(decision >= 0, cls_a, cls_b)
        for row, winner in enumerate(winners):
            votes[row, class_pos[winner]] += 1
    expected = model._classes[np.argmax(votes, axis=1)]
    assert np.array_equal(model.predict(X), expected)
