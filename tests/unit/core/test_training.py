"""Training-data collection tests."""

import pytest

from repro.core.training import (
    MixObservation,
    SpoilerCurve,
    TemplateProfile,
    collect_training_data,
    measure_spoiler_curve,
    measure_template_profile,
)
from repro.errors import ModelError, SamplingError
from repro.sampling.steady_state import SteadyStateConfig


def test_template_profile_validation():
    with pytest.raises(ModelError):
        TemplateProfile(1, -1.0, 0.5, 0, 0, 1, frozenset())
    with pytest.raises(ModelError):
        TemplateProfile(1, 10.0, 1.5, 0, 0, 1, frozenset())


def test_spoiler_curve_lookup():
    curve = SpoilerCurve(template_id=1, latencies={1: 100.0, 2: 180.0})
    assert curve.latency_at(2) == 180.0
    assert curve.mpls == [1, 2]
    with pytest.raises(ModelError):
        curve.latency_at(5)


def test_spoiler_growth_rate():
    curve = SpoilerCurve(template_id=1, latencies={3: 300.0})
    assert curve.growth_rate(3, 100.0) == pytest.approx(3.0)
    with pytest.raises(ModelError):
        curve.growth_rate(3, 0.0)


def test_mix_observation_concurrent_set():
    obs = MixObservation(primary=5, mix=(5, 5, 7), latency=10.0,
                         latency_std=0.0, num_samples=3)
    assert obs.mpl == 3
    assert obs.concurrent() == (5, 7)


def test_measure_template_profile(small_catalog):
    profile = measure_template_profile(small_catalog, 26)
    assert profile.isolated_latency > 0
    assert 0 < profile.io_fraction <= 1
    assert "catalog_sales" in profile.fact_scans
    assert profile.plan_steps > 1


def test_measure_template_profile_multiple_runs(small_catalog, rng):
    profile = measure_template_profile(small_catalog, 26, runs=3, rng=rng)
    assert profile.isolated_latency > 0
    with pytest.raises(SamplingError):
        measure_template_profile(small_catalog, 26, runs=0)


def test_measure_spoiler_curve(small_catalog):
    curve = measure_spoiler_curve(small_catalog, 26, [1, 2, 3])
    assert curve.mpls == [1, 2, 3]
    lats = [curve.latency_at(m) for m in (1, 2, 3)]
    assert lats == sorted(lats)


def test_collected_data_structure(small_training_data, small_catalog):
    data = small_training_data
    assert set(data.profiles) == set(small_catalog.template_ids)
    assert set(data.spoilers) == set(small_catalog.template_ids)
    assert 2 in data.observations
    # MPL 2 samples all pairs: C(n+1, 2) mixes, ~2 observations each.
    n = len(small_catalog.template_ids)
    pair_count = n * (n + 1) // 2
    assert len(data.observations[2]) == 2 * pair_count - n


def test_observations_for_primary(small_training_data):
    obs = small_training_data.observations_for(26, 2)
    assert obs
    assert all(o.primary == 26 and o.mpl == 2 for o in obs)


def test_spoiler_curves_cover_mpl_1_to_max(small_training_data):
    for tid in small_training_data.template_ids:
        assert small_training_data.spoiler(tid).mpls == [1, 2]


def test_scan_seconds_present_for_facts(small_training_data):
    assert "store_sales" in small_training_data.scan_seconds


def test_restricted_to_scrubs_template(small_training_data):
    ids = small_training_data.template_ids
    keep = [t for t in ids if t != 26]
    restricted = small_training_data.restricted_to(keep)
    assert 26 not in restricted.profiles
    assert 26 not in restricted.spoilers
    for obs in restricted.observations[2]:
        assert 26 not in obs.mix


def test_restricted_to_unknown_template(small_training_data):
    with pytest.raises(ModelError):
        small_training_data.restricted_to([9999])


def test_save_and_load_round_trip(small_training_data, tmp_path):
    path = tmp_path / "cache" / "data.pkl"
    small_training_data.save(path)
    loaded = type(small_training_data).load(path)
    assert loaded.template_ids == small_training_data.template_ids
    assert len(loaded.observations[2]) == len(
        small_training_data.observations[2]
    )


def test_collect_requires_mpls(small_catalog):
    with pytest.raises(SamplingError):
        collect_training_data(small_catalog, mpls=())


def test_measure_spoiler_curve_seeded_is_mpl_order_independent(small_catalog):
    forward = measure_spoiler_curve(small_catalog, 26, [1, 2, 3], seed=11)
    backward = measure_spoiler_curve(small_catalog, 26, [3, 2, 1], seed=11)
    assert forward.latencies == backward.latencies


def test_measure_spoiler_curve_rejects_rng_and_seed(small_catalog, rng):
    with pytest.raises(SamplingError):
        measure_spoiler_curve(small_catalog, 26, [2], rng=rng, seed=1)


def test_collect_observation_counts_match_the_lhs_design(small_catalog):
    """The observation list mirrors the drawn design, duplicates included."""
    from repro.core.campaign import task_rng
    from repro.sampling.lhs import lhs_runs

    data = collect_training_data(
        small_catalog,
        mpls=(3,),
        lhs_runs_per_mpl=2,
        steady_config=SteadyStateConfig(samples_per_stream=2),
    )
    seed = small_catalog.config.simulation.seed
    mixes = lhs_runs(
        list(small_catalog.template_ids), 3, 2, task_rng(seed, "lhs", mpl=3)
    )
    # One observation per distinct template per drawn mix, in design order.
    assert [o.mix for o in data.observations[3]] == [
        mix for mix in mixes for _ in sorted(set(mix))
    ]
