"""Isolated-prediction perturbation tests."""

import numpy as np
import pytest

from repro.core.isolated import perturb_profile
from repro.core.training import TemplateProfile
from repro.errors import ModelError


@pytest.fixture()
def profile():
    return TemplateProfile(
        template_id=1,
        isolated_latency=500.0,
        io_fraction=0.9,
        working_set_bytes=1e9,
        records_accessed=1e7,
        plan_steps=8,
        fact_scans=frozenset({"store_sales"}),
    )


def test_perturbation_within_bounds(profile, rng):
    for _ in range(200):
        p = perturb_profile(profile, rng, error=0.25)
        assert 0.75 * 500.0 <= p.isolated_latency <= 1.25 * 500.0
        assert p.working_set_bytes <= 1.25e9
        assert p.io_fraction <= 1.0


def test_plan_features_untouched(profile, rng):
    p = perturb_profile(profile, rng)
    assert p.plan_steps == profile.plan_steps
    assert p.records_accessed == profile.records_accessed
    assert p.fact_scans == profile.fact_scans


def test_zero_error_is_identity(profile, rng):
    p = perturb_profile(profile, rng, error=0.0)
    assert p.isolated_latency == profile.isolated_latency
    assert p.io_fraction == profile.io_fraction


def test_perturbations_are_independent(profile):
    rng = np.random.default_rng(5)
    p = perturb_profile(profile, rng, error=0.25)
    ratios = (
        p.isolated_latency / profile.isolated_latency,
        p.io_fraction / profile.io_fraction,
        p.working_set_bytes / profile.working_set_bytes,
    )
    assert len(set(round(r, 6) for r in ratios)) > 1


def test_error_validated(profile, rng):
    with pytest.raises(ModelError):
        perturb_profile(profile, rng, error=1.0)
    with pytest.raises(ModelError):
        perturb_profile(profile, rng, error=-0.1)
