"""Prior-work baseline tests."""

import numpy as np
import pytest

from repro.core.prior_work import PriorWorkPredictor, mix_composition_vector
from repro.core.training import TrainingData
from repro.errors import ModelError, NotFittedError


def test_composition_vector_counts_concurrent_occurrences():
    vec = mix_composition_vector([1, 2, 3], primary=1, mix=(1, 2, 2, 3))
    assert list(vec) == [0.0, 2.0, 1.0]


def test_composition_vector_handles_duplicate_primary():
    vec = mix_composition_vector([1, 2], primary=1, mix=(1, 1))
    assert list(vec) == [1.0, 0.0]


def test_composition_vector_validation():
    with pytest.raises(ModelError):
        mix_composition_vector([1, 2], primary=3, mix=(1, 2))
    with pytest.raises(ModelError):
        mix_composition_vector([1, 2], primary=1, mix=(1, 9))


@pytest.fixture()
def predictor(small_training_data):
    return PriorWorkPredictor(small_training_data).fit((2,))


def test_predicts_known_templates_reasonably(predictor, small_training_data):
    errors = []
    for tid in small_training_data.template_ids:
        for obs in small_training_data.observations_for(tid, 2):
            pred = predictor.predict(tid, obs.mix)
            errors.append(abs(obs.latency - pred) / obs.latency)
    assert float(np.mean(errors)) < 0.25


def test_cross_validated_mre_positive(predictor, rng):
    mre = predictor.cross_validated_mre((2,), folds=3, rng=rng)
    assert 0.0 <= mre < 0.6


def test_unfitted_mpl_rejected(predictor):
    with pytest.raises(NotFittedError):
        predictor.predict(26, (26, 62, 65))


def test_new_template_cannot_be_predicted(small_training_data):
    held = 26
    rest = small_training_data.restricted_to(
        [t for t in small_training_data.template_ids if t != held]
    )
    baseline = PriorWorkPredictor(rest).fit((2,))
    with pytest.raises(NotFittedError):
        baseline.predict(held, (held, 65))


def test_onboarding_cost_formula(predictor):
    # 2 * m * k samples (Sec. 5.4).
    assert predictor.samples_required_for_new_template((2, 3, 4), k=25) == 150


def test_requires_per_template_samples(small_training_data):
    # Scrubbing a template's observations breaks the baseline's fit.
    crippled = TrainingData(
        profiles=dict(small_training_data.profiles),
        spoilers=dict(small_training_data.spoilers),
        observations={2: [
            o for o in small_training_data.observations[2] if o.primary != 26
        ]},
        scan_seconds=dict(small_training_data.scan_seconds),
    )
    with pytest.raises(ModelError):
        PriorWorkPredictor(crippled).fit((2,))


def test_empty_data_rejected():
    empty = TrainingData(
        profiles={}, spoilers={}, observations={}, scan_seconds={}
    )
    with pytest.raises(ModelError):
        PriorWorkPredictor(empty)
