"""Contender façade tests."""

import pytest

from repro.core.contender import (
    Contender,
    ContenderOptions,
    NewTemplateVariant,
    SpoilerMode,
)
from repro.core.cqi import CQIVariant
from repro.core.training import TrainingData
from repro.errors import ModelError
from repro.metrics.errors import mean_relative_error


def test_requires_templates():
    empty = TrainingData(
        profiles={}, spoilers={}, observations={}, scan_seconds={}
    )
    with pytest.raises(ModelError):
        Contender(empty)


def test_template_ids_sorted(small_contender):
    ids = small_contender.template_ids
    assert ids == sorted(ids)


def test_qs_models_cached(small_contender):
    a = small_contender.qs_model(26, 2)
    b = small_contender.qs_model(26, 2)
    assert a is b


def test_reference_models_cover_workload(small_contender):
    models = small_contender.reference_models(2)
    assert [m.template_id for m in models] == small_contender.template_ids


def test_predict_known_tracks_observations(small_contender):
    """Fit-quality sanity: predictions on training mixes within 30 %."""
    data = small_contender.data
    for tid in (26, 71):
        obs = data.observations_for(tid, 2)
        preds = [small_contender.predict_known(tid, o.mix) for o in obs]
        assert mean_relative_error([o.latency for o in obs], preds) < 0.3


def test_predict_known_positive(small_contender):
    assert small_contender.predict_known(26, (26, 65)) > 0


def test_cqi_respects_variant_option(small_training_data):
    full = Contender(small_training_data)
    base = Contender(
        small_training_data,
        ContenderOptions(cqi_variant=CQIVariant.BASELINE_IO),
    )
    # Mix with a shared fact table: baseline ignores the sharing.
    assert base.cqi(26, (26, 26)) >= full.cqi(26, (26, 26))


def test_predict_new_rejects_template_missing_from_mix(small_contender):
    profile = small_contender.data.profile(26)
    with pytest.raises(ModelError):
        small_contender.predict_new(profile, (65, 71))


def test_predict_new_rejects_unknown_concurrent(small_contender):
    profile = small_contender.data.profile(26)
    with pytest.raises(ModelError):
        small_contender.predict_new(profile, (26, 999))


def test_predict_new_leave_one_out(small_training_data):
    """The full Fig. 5 pipeline: hold out a template, predict its
    latency in a sampled mix within a loose factor-of-two band."""
    held = 26
    rest = small_training_data.restricted_to(
        [t for t in small_training_data.template_ids if t != held]
    )
    con = Contender(rest)
    profile = small_training_data.profile(held)
    obs = [
        o
        for o in small_training_data.observations_for(held, 2)
        if held not in o.concurrent()
    ]
    assert obs
    for o in obs:
        pred = con.predict_new(
            profile,
            o.mix,
            spoiler_mode=SpoilerMode.MEASURED,
            measured_spoiler=small_training_data.spoiler(held),
        )
        assert 0.5 * o.latency < pred < 2.0 * o.latency


def test_predict_new_knn_spoiler_needs_no_curve(small_training_data):
    held = 62
    rest = small_training_data.restricted_to(
        [t for t in small_training_data.template_ids if t != held]
    )
    con = Contender(rest)
    profile = small_training_data.profile(held)
    mix = (62, 65)
    pred = con.predict_new(profile, mix, spoiler_mode=SpoilerMode.KNN)
    assert pred > 0


def test_predict_new_measured_requires_curve(small_training_data):
    held = 62
    rest = small_training_data.restricted_to(
        [t for t in small_training_data.template_ids if t != held]
    )
    con = Contender(rest)
    with pytest.raises(ModelError):
        con.predict_new(
            small_training_data.profile(held),
            (62, 65),
            spoiler_mode=SpoilerMode.MEASURED,
        )


def test_unknown_y_requires_true_slope(small_contender):
    profile = small_contender.data.profile(26)
    with pytest.raises(ModelError):
        small_contender.synthesize_qs(
            profile, 2, NewTemplateVariant.UNKNOWN_Y
        )


def test_synthesize_qs_variants_differ(small_contender):
    profile = small_contender.data.profile(26)
    uqs = small_contender.synthesize_qs(profile, 2)
    uy = small_contender.synthesize_qs(
        profile, 2, NewTemplateVariant.UNKNOWN_Y, true_slope=0.123
    )
    assert uy.slope == 0.123
    assert uqs.slope != uy.slope


def test_spoiler_latency_for_measured_known_template(small_contender):
    profile = small_contender.data.profile(26)
    value = small_contender.spoiler_latency_for(
        profile, 2, SpoilerMode.MEASURED
    )
    assert value == small_contender.data.spoiler(26).latency_at(2)


def test_spoiler_predictor_modes(small_contender):
    knn = small_contender.spoiler_predictor(SpoilerMode.KNN)
    io_time = small_contender.spoiler_predictor(SpoilerMode.IO_TIME)
    profile = small_contender.data.profile(26)
    assert knn.predict(profile, 2) > 0
    assert io_time.predict(profile, 2) > 0
    with pytest.raises(ModelError):
        small_contender.spoiler_predictor(SpoilerMode.MEASURED)


def test_predict_candidates_matches_scalar_chain(small_contender):
    """The vectorized candidate matrix must equal predict_known /
    isolated latencies bit-for-bit — including duplicate candidates,
    duplicates in the running prefix, and every CQI variant."""
    import numpy as np

    from repro.core.contender import Contender, ContenderOptions

    # The small fixture campaign covers MPL 2 only, so running prefixes
    # stay at one member; duplicate candidates (and a candidate equal to
    # the running member) still exercise the dedup and first-occurrence
    # paths.
    cases = [
        ((), (26, 65, 26)),
        ((26,), (65, 71, 65, 26)),
        ((65,), (22, 22, 71, 65)),
    ]
    for variant in CQIVariant:
        contender = Contender(
            small_contender.data, ContenderOptions(cqi_variant=variant)
        )
        for running, candidates in cases:
            got = contender.predict_candidates(running, candidates)
            assert got.shape == (len(candidates), len(running) + 1)
            for j, candidate in enumerate(candidates):
                mix = (*running, candidate)
                if len(mix) == 1:
                    expected = [
                        contender.data.profile(candidate).isolated_latency
                    ]
                else:
                    expected = [
                        contender.predict_known(member, mix)
                        for member in mix
                    ]
                assert got[j].tolist() == expected


def test_predict_known_many_matches_scalar(small_contender):
    """The batched serving path must equal predict_known bit-for-bit,
    for every variant, with duplicate keys in the batch."""
    import random

    from repro.core.contender import Contender, ContenderOptions

    ids = small_contender.template_ids
    rng = random.Random(11)
    # The small fixture campaign covers MPL 2 only.
    pairs = []
    for _ in range(24):
        mix = (rng.choice(ids), rng.choice(ids))
        pairs.append((rng.choice(mix), mix))
    pairs.append(pairs[0])  # duplicate key
    for variant in CQIVariant:
        contender = Contender(
            small_contender.data, ContenderOptions(cqi_variant=variant)
        )
        got = contender.predict_known_many(pairs)
        expected = [contender.predict_known(p, m) for p, m in pairs]
        assert got == expected


def test_predict_known_many_rejects_bad_key(small_contender):
    with pytest.raises(ModelError):
        small_contender.predict_known_many([(999, (999, 26))])
    assert small_contender.predict_known_many([]) == []
