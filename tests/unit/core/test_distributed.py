"""Distributed CQPP extension tests."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.distributed import (
    DistributedContender,
    DistributedPrediction,
    evaluate_distributed,
)
from repro.engine.cluster import ClusterSpec, run_distributed_steady_state
from repro.errors import ModelError
from repro.sampling.steady_state import SteadyStateConfig

SUBSET = (26, 62, 65, 71)


@pytest.fixture(scope="module")
def cluster_catalog(catalog):
    return catalog.subset(SUBSET)


@pytest.fixture(scope="module")
def predictor(cluster_catalog):
    spec = ClusterSpec(num_hosts=2, host_config=DEFAULT_CONFIG)
    return DistributedContender(cluster_catalog, spec).fit(
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    )


def test_prediction_decomposition(predictor):
    pred = predictor.predict(26, (26, 65))
    assert isinstance(pred, DistributedPrediction)
    assert pred.per_host_latency > 0
    assert pred.straggler_factor >= 1.0
    assert pred.assembly > 0
    assert pred.total == pytest.approx(
        pred.per_host_latency * pred.straggler_factor + pred.assembly
    )


def test_unfitted_predictor_raises(cluster_catalog):
    spec = ClusterSpec(num_hosts=2, host_config=DEFAULT_CONFIG)
    fresh = DistributedContender(cluster_catalog, spec)
    with pytest.raises(ModelError):
        fresh.predict(26, (26, 65))


def test_straggler_factor_grows_with_hosts(cluster_catalog):
    small = DistributedContender(
        cluster_catalog, ClusterSpec(num_hosts=1, host_config=DEFAULT_CONFIG)
    )
    big = DistributedContender(
        cluster_catalog, ClusterSpec(num_hosts=8, host_config=DEFAULT_CONFIG)
    )
    assert small._estimate_straggler() == 1.0
    assert big._estimate_straggler() > small._estimate_straggler()


def test_predictions_track_observed_cluster_runs(predictor, cluster_catalog):
    cfg = SteadyStateConfig(samples_per_stream=2)
    runs = [
        run_distributed_steady_state(
            cluster_catalog, mix, predictor.spec, steady_config=cfg
        )
        for mix in ((26, 65), (71, 26))
    ]
    table = evaluate_distributed(predictor, runs)
    assert table
    for (mix, primary), (predicted, observed) in table.items():
        assert abs(observed - predicted) / observed < 0.35, (mix, primary)


def test_speedup_relative_to_single_host(predictor, cluster_catalog):
    single = cluster_catalog.run_isolated(71).latency
    speedup = predictor.speedup(71, single, (71, 26))
    assert speedup > 1.0  # partitioning wins despite assembly


def test_host_catalog_partitioned(predictor, cluster_catalog):
    host_iso = predictor.host_catalog.run_isolated(71).latency
    global_iso = cluster_catalog.run_isolated(71).latency
    assert host_iso < 0.7 * global_iso
