"""QS model diagnostics tests."""

import pytest

from repro.core.diagnostics import (
    TemplateDiagnosis,
    diagnose_template,
    diagnose_workload,
)
from repro.errors import ModelError


def test_diagnose_template_fields(small_contender):
    diag = diagnose_template(small_contender, 26, 2)
    assert diag.template_id == 26
    assert diag.mpl == 2
    assert diag.num_samples > 2
    assert diag.residual_std >= 0
    assert diag.cqi_range[0] <= diag.cqi_range[1]


def test_io_bound_template_fits_well(small_contender):
    diag = diagnose_template(small_contender, 26, 2)
    assert diag.r2 > 0.5


def test_memory_template_flagged(small_contender):
    diag = diagnose_template(small_contender, 22, 2)
    assert any("memory-intensive" in flag for flag in diag.flags)


def test_healthy_property():
    clean = TemplateDiagnosis(1, 2, 0.9, 0.02, (0.0, 0.8), 20, ())
    flagged = TemplateDiagnosis(1, 2, 0.1, 0.3, (0.0, 0.1), 20, ("weak",))
    assert clean.healthy
    assert not flagged.healthy


def test_diagnose_workload_covers_templates(small_contender):
    report = diagnose_workload(small_contender, mpl=2)
    assert [row.template_id for row in report.rows] == (
        small_contender.template_ids
    )
    table = report.format_table()
    assert "R²" in table
    assert "unflagged" in table


def test_flagged_sorted_by_r2(small_contender):
    report = diagnose_workload(small_contender, mpl=2)
    flagged = report.flagged()
    r2s = [row.r2 for row in flagged]
    assert r2s == sorted(r2s)


def test_subset_of_templates(small_contender):
    report = diagnose_workload(small_contender, mpl=2, template_ids=[26, 65])
    assert len(report.rows) == 2


def test_unknown_template_raises(small_contender):
    with pytest.raises(ModelError):
        diagnose_template(small_contender, 999, 2)
