"""Spoiler-prediction tests (Sec. 5.5, Eq. 8)."""

import pytest

from repro.core.spoiler_model import (
    IOTimeSpoilerPredictor,
    KNNSpoilerPredictor,
    SpoilerGrowthModel,
)
from repro.core.training import SpoilerCurve, TemplateProfile
from repro.errors import ModelError


def _profile(tid, latency, io_fraction, working_set):
    return TemplateProfile(
        template_id=tid,
        isolated_latency=latency,
        io_fraction=io_fraction,
        working_set_bytes=working_set,
        records_accessed=1e6,
        plan_steps=5,
        fact_scans=frozenset(),
    )


def _linear_curve(tid, base, slope):
    return SpoilerCurve(
        template_id=tid,
        latencies={m: base + slope * m for m in range(1, 6)},
    )


def test_fit_latency_recovers_line():
    curve = _linear_curve(1, 50.0, 100.0)
    model = SpoilerGrowthModel.fit_latency(curve)
    assert model.slope == pytest.approx(100.0)
    assert model.intercept == pytest.approx(50.0)
    assert model.predict(7) == pytest.approx(750.0)


def test_fit_latency_on_subset_of_mpls():
    curve = _linear_curve(1, 50.0, 100.0)
    model = SpoilerGrowthModel.fit_latency(curve, mpls=[1, 2, 3])
    assert model.predict(5) == pytest.approx(550.0)


def test_fit_growth_is_scale_independent():
    curve = _linear_curve(1, 0.0, 150.0)
    model = SpoilerGrowthModel.fit_growth(curve, isolated_latency=150.0)
    # growth(n) = n, scaled back by isolated latency.
    assert model.predict(4) == pytest.approx(600.0)


def test_predict_rejects_bad_mpl():
    model = SpoilerGrowthModel(template_id=1, slope=1.0, intercept=0.0)
    with pytest.raises(ModelError):
        model.predict(0)


def test_fit_needs_two_points():
    curve = SpoilerCurve(template_id=1, latencies={1: 100.0})
    with pytest.raises(ModelError):
        SpoilerGrowthModel.fit_latency(curve)


@pytest.fixture()
def known_workload():
    """Growth rate is a clean function of (working set, io fraction):
    similar templates have similar growth — the KNN premise."""
    profiles = {}
    curves = {}
    for tid, (io, ws) in enumerate(
        [(0.2, 1e6), (0.25, 2e6), (0.9, 1e6), (0.95, 2e6), (0.5, 5e9), (0.55, 6e9)],
        start=1,
    ):
        latency = 200.0
        growth_slope = 0.5 + io + (1.0 if ws > 1e9 else 0.0)
        profiles[tid] = _profile(tid, latency, io, ws)
        curves[tid] = SpoilerCurve(
            template_id=tid,
            latencies={
                m: latency * (1.0 + growth_slope * (m - 1)) for m in range(1, 6)
            },
        )
    return profiles, curves


def test_knn_predicts_from_similar_templates(known_workload):
    profiles, curves = known_workload
    predictor = KNNSpoilerPredictor(k=1).fit(profiles, curves)
    new = _profile(99, 300.0, 0.92, 1.5e6)  # closest to templates 3/4
    predicted = predictor.predict(new, 5)
    expected_growth = 1.0 + (0.5 + 0.9 + 0.0) * 4  # template 3's law
    assert predicted == pytest.approx(300.0 * expected_growth, rel=0.15)


def test_knn_scales_by_new_isolated_latency(known_workload):
    profiles, curves = known_workload
    predictor = KNNSpoilerPredictor(k=3).fit(profiles, curves)
    short = _profile(98, 100.0, 0.9, 1e6)
    long = _profile(99, 1000.0, 0.9, 1e6)
    assert predictor.predict(long, 3) == pytest.approx(
        10 * predictor.predict(short, 3)
    )


def test_knn_model_for_returns_growth_model(known_workload):
    profiles, curves = known_workload
    predictor = KNNSpoilerPredictor(k=2).fit(profiles, curves)
    model = predictor.model_for(_profile(99, 300.0, 0.9, 1e6))
    assert model.scale == 300.0
    assert model.predict(1) > 0


def test_knn_unfitted_raises(known_workload):
    with pytest.raises(ModelError):
        KNNSpoilerPredictor().model_for(_profile(9, 1.0, 0.5, 1.0))


def test_io_time_predictor_tracks_io_fraction(known_workload):
    profiles, curves = known_workload
    # Keep only the small-working-set templates so growth is a pure
    # function of the I/O fraction — the baseline's best case.
    small_ids = [1, 2, 3, 4]
    predictor = IOTimeSpoilerPredictor().fit(profiles, curves, small_ids)
    new = _profile(99, 200.0, 0.9, 1e6)
    expected = 200.0 * (1.0 + (0.5 + 0.9) * 4)
    assert predictor.predict(new, 5) == pytest.approx(expected, rel=0.1)


def test_io_time_predictor_blind_to_working_set(known_workload):
    """The baseline cannot distinguish memory-heavy templates with the
    same I/O fraction — the reason KNN wins in Fig. 9."""
    profiles, curves = known_workload
    predictor = IOTimeSpoilerPredictor().fit(profiles, curves)
    light = _profile(98, 200.0, 0.5, 1e6)
    heavy = _profile(99, 200.0, 0.5, 5e9)
    assert predictor.predict(light, 4) == predictor.predict(heavy, 4)

    knn = KNNSpoilerPredictor(k=2).fit(profiles, curves)
    assert knn.predict(heavy, 4) > knn.predict(light, 4)


def test_io_time_needs_two_templates(known_workload):
    profiles, curves = known_workload
    with pytest.raises(ModelError):
        IOTimeSpoilerPredictor().fit(profiles, curves, [1])


def test_missing_curve_rejected(known_workload):
    profiles, curves = known_workload
    del curves[1]
    with pytest.raises(ModelError):
        KNNSpoilerPredictor().fit(profiles, curves)
