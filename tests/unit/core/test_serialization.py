"""TrainingData JSON/pickle interchange tests."""

import pytest

from repro.core.contender import Contender
from repro.core.training import TrainingData
from repro.errors import ModelError


def test_json_round_trip_preserves_everything(small_training_data):
    text = small_training_data.to_json()
    back = TrainingData.from_json(text)
    assert back.template_ids == small_training_data.template_ids
    assert back.config_seed == small_training_data.config_seed
    assert back.scan_seconds == small_training_data.scan_seconds
    for tid in back.template_ids:
        original = small_training_data.profile(tid)
        restored = back.profile(tid)
        assert restored == original
        assert dict(back.spoiler(tid).latencies) == dict(
            small_training_data.spoiler(tid).latencies
        )
    for mpl, obs_list in small_training_data.observations.items():
        assert back.observations[mpl] == obs_list


def test_json_is_deterministic(small_training_data):
    assert small_training_data.to_json() == small_training_data.to_json()


def test_json_restored_data_predicts_identically(small_training_data):
    original = Contender(small_training_data)
    restored = Contender(
        TrainingData.from_json(small_training_data.to_json())
    )
    mix = (26, 65)
    assert restored.predict_known(26, mix) == pytest.approx(
        original.predict_known(26, mix)
    )


def test_malformed_json_rejected():
    with pytest.raises(ModelError):
        TrainingData.from_json('{"profiles": "nope"}')


def test_json_parse_errors_surface_as_model_errors():
    with pytest.raises(Exception):
        TrainingData.from_json("not json at all")


def test_pickle_and_json_agree(small_training_data, tmp_path):
    path = tmp_path / "data.pkl"
    small_training_data.save(path)
    pickled = TrainingData.load(path)
    jsoned = TrainingData.from_json(small_training_data.to_json())
    assert pickled.template_ids == jsoned.template_ids
    assert pickled.profile(26) == jsoned.profile(26)
