"""Operator-level CQPP extension tests."""

import pytest

from repro.core.operator_model import OperatorLatencyModel, PhaseEstimate
from repro.core.training import TrainingData
from repro.errors import ModelError


@pytest.fixture()
def model(small_training_data, small_catalog):
    profiles = {
        t: small_catalog.profile(t) for t in small_training_data.template_ids
    }
    m = OperatorLatencyModel(small_training_data, small_catalog.config)
    return m.fit(profiles, (2,)), profiles


def test_expected_streams_grows_with_io_contenders(model, small_training_data):
    m, _ = model
    # A CPU-bound contender (65) adds less expected contention than a
    # random-I/O one (32, disjoint with 26's catalog scan).
    light = m.expected_streams(26, (26, 65))
    heavy = m.expected_streams(26, (26, 32))
    assert 1.0 <= light < heavy


def test_expected_streams_discounts_shared_scans(model):
    m, _ = model
    # 26 with itself: the contender's whole I/O is a shared scan.
    assert m.expected_streams(26, (26, 26)) == pytest.approx(1.0, abs=0.15)


def test_compose_prices_every_phase(model, small_training_data):
    m, profiles = model
    stats = small_training_data.profile(26)
    estimates = m.compose(profiles[26], stats, (26, 65))
    assert len(estimates) == len(profiles[26].phases)
    assert all(isinstance(e, PhaseEstimate) for e in estimates)
    assert all(e.seconds >= 0 for e in estimates)
    assert {e.kind for e in estimates} <= {"seq", "rand", "cpu", "mixed"}


def test_raw_estimate_increases_with_contention(model, small_training_data):
    m, profiles = model
    stats = small_training_data.profile(26)
    mild = m.raw_estimate(profiles[26], stats, (26, 65))
    harsh = m.raw_estimate(profiles[26], stats, (26, 32, 82))
    assert harsh > mild


def test_predict_tracks_observations(model, small_training_data):
    m, profiles = model
    errors = []
    for tid in small_training_data.template_ids:
        stats = small_training_data.profile(tid)
        for obs in small_training_data.observations_for(tid, 2):
            pred = m.predict(profiles[tid], stats, obs.mix)
            errors.append(abs(obs.latency - pred) / obs.latency)
    assert sum(errors) / len(errors) < 0.35


def test_predict_works_for_held_out_template(small_training_data, small_catalog):
    held = 26
    rest_ids = [t for t in small_training_data.template_ids if t != held]
    rest = small_training_data.restricted_to(rest_ids)
    profiles = {t: small_catalog.profile(t) for t in rest_ids}
    m = OperatorLatencyModel(rest, small_catalog.config).fit(
        profiles, (2,), rest_ids
    )
    stats = small_training_data.profile(held)
    held_profile = small_catalog.profile(held)
    obs = [
        o
        for o in small_training_data.observations_for(held, 2)
        if held not in o.concurrent()
    ]
    for o in obs:
        pred = m.predict(held_profile, stats, o.mix)
        assert 0.4 * o.latency < pred < 2.5 * o.latency


def test_uncalibrated_mpl_rejected(model, small_training_data):
    m, profiles = model
    stats = small_training_data.profile(26)
    with pytest.raises(ModelError):
        m.predict(profiles[26], stats, (26, 65, 71))


def test_requires_templates(small_catalog):
    empty = TrainingData(
        profiles={}, spoilers={}, observations={}, scan_seconds={}
    )
    with pytest.raises(ModelError):
        OperatorLatencyModel(empty, small_catalog.config)


def test_fit_requires_profiles(small_training_data, small_catalog):
    m = OperatorLatencyModel(small_training_data, small_catalog.config)
    with pytest.raises(ModelError):
        m.fit({}, (2,))
