"""Continuum (Eq. 6) tests."""

import pytest

from repro.core.continuum import (
    OUTLIER_THRESHOLD,
    continuum_point,
    exceeds_continuum,
    latency_from_point,
)
from repro.errors import ModelError


def test_bounds_map_to_zero_and_one():
    assert continuum_point(100.0, 100.0, 200.0) == 0.0
    assert continuum_point(200.0, 100.0, 200.0) == 1.0


def test_midpoint():
    assert continuum_point(150.0, 100.0, 200.0) == pytest.approx(0.5)


def test_round_trip():
    for latency in (100.0, 137.0, 200.0, 230.0):
        point = continuum_point(latency, 100.0, 200.0)
        assert latency_from_point(point, 100.0, 200.0) == pytest.approx(latency)


def test_speedup_maps_below_zero():
    assert continuum_point(90.0, 100.0, 200.0) < 0.0


def test_latency_floor_guards_absurd_points():
    assert latency_from_point(-5.0, 100.0, 200.0) == pytest.approx(5.0)


def test_empty_continuum_rejected():
    with pytest.raises(ModelError):
        continuum_point(150.0, 200.0, 100.0)
    with pytest.raises(ModelError):
        continuum_point(150.0, 100.0, 100.0)


def test_nonpositive_inputs_rejected():
    with pytest.raises(ModelError):
        continuum_point(0.0, 100.0, 200.0)
    with pytest.raises(ModelError):
        continuum_point(100.0, 0.0, 200.0)


def test_exceeds_continuum_threshold():
    assert not exceeds_continuum(104.9, 100.0)
    assert exceeds_continuum(105.1, 100.0)
    assert OUTLIER_THRESHOLD == pytest.approx(1.05)


def test_exceeds_continuum_validates():
    with pytest.raises(ModelError):
        exceeds_continuum(1.0, 0.0)
