"""Prediction-interval tests."""

import pytest

from repro.core.qs import QSModel
from repro.errors import ModelError


def _model(residual_std=0.1):
    return QSModel(
        template_id=1,
        mpl=2,
        slope=1.0,
        intercept=0.0,
        num_samples=10,
        residual_std=residual_std,
    )


def test_interval_brackets_point_prediction():
    low, mid, high = _model().predict_interval(0.5, 100.0, 200.0)
    assert low < mid < high
    assert mid == pytest.approx(150.0)


def test_interval_width_scales_with_sigmas():
    low1, _, high1 = _model().predict_interval(0.5, 100.0, 200.0, sigmas=1.0)
    low2, _, high2 = _model().predict_interval(0.5, 100.0, 200.0, sigmas=2.0)
    assert (high2 - low2) == pytest.approx(2 * (high1 - low1))


def test_zero_residual_gives_degenerate_band():
    low, mid, high = _model(residual_std=0.0).predict_interval(
        0.5, 100.0, 200.0
    )
    assert low == mid == high


def test_negative_sigmas_rejected():
    with pytest.raises(ModelError):
        _model().predict_interval(0.5, 100.0, 200.0, sigmas=-1.0)


def test_fitted_models_expose_residual_std(small_contender):
    model = small_contender.qs_model(26, 2)
    assert model.residual_std >= 0.0
    assert model.num_samples > 2


def test_contender_interval_contains_point(small_contender):
    mix = (26, 65)
    low, mid, high = small_contender.predict_known_interval(26, mix)
    point = small_contender.predict_known(26, mix)
    assert low <= point <= high
    assert mid == pytest.approx(point)


def test_contender_interval_covers_most_observations(small_contender):
    """A ±2σ band should cover the bulk of the training mixes."""
    data = small_contender.data
    covered = total = 0
    for tid in data.template_ids:
        for obs in data.observations_for(tid, 2):
            low, _, high = small_contender.predict_known_interval(
                tid, obs.mix, sigmas=2.0
            )
            total += 1
            covered += low <= obs.latency <= high
    assert covered / total > 0.75
