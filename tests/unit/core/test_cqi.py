"""CQI metric tests (Eqs. 2-5), on hand-built profiles."""

import pytest

from repro.core.cqi import CQICalculator, CQIVariant
from repro.core.training import TemplateProfile
from repro.errors import ModelError


def _profile(tid, latency, io_fraction, facts):
    return TemplateProfile(
        template_id=tid,
        isolated_latency=latency,
        io_fraction=io_fraction,
        working_set_bytes=0.0,
        records_accessed=0.0,
        plan_steps=1,
        fact_scans=frozenset(facts),
    )


@pytest.fixture()
def calc():
    profiles = {
        # Primary: scans tables A and B.
        1: _profile(1, 500.0, 0.9, {"A", "B"}),
        # Pure-I/O contender sharing A.
        2: _profile(2, 100.0, 1.0, {"A"}),
        # Pure-I/O contender with a disjoint table.
        3: _profile(3, 100.0, 1.0, {"C"}),
        # CPU-only contender.
        4: _profile(4, 100.0, 0.0, frozenset()),
        # Contender sharing C with template 3 (tau candidate).
        5: _profile(5, 200.0, 0.8, {"C"}),
    }
    scan_seconds = {"A": 60.0, "B": 40.0, "C": 30.0}
    return CQICalculator(profiles=profiles, scan_seconds=scan_seconds)


def test_omega_counts_shared_fact_scans(calc):
    assert calc.omega(2, 1) == 60.0  # shares A
    assert calc.omega(3, 1) == 0.0  # disjoint
    assert calc.omega(4, 1) == 0.0  # no scans at all


def test_omega_sums_multiple_shared_tables(calc):
    # Template 1 as a contender of itself would share A and B.
    assert calc.omega(1, 1) == 100.0


def test_tau_requires_two_sharers(calc):
    # Template 3 alone: no non-primary sharing.
    assert calc.tau(3, 1, [3]) == 0.0
    # Templates 3 and 5 both scan C (primary does not): each saves half.
    assert calc.tau(3, 1, [3, 5]) == pytest.approx(0.5 * 30.0)
    assert calc.tau(5, 1, [3, 5]) == pytest.approx(0.5 * 30.0)


def test_tau_excludes_tables_the_primary_scans(calc):
    # A is scanned by the primary, so it belongs to omega, not tau.
    assert calc.tau(2, 1, [2, 2]) == 0.0


def test_r_c_baseline_is_io_fraction(calc):
    assert calc.r_c(2, 1, [2], CQIVariant.BASELINE_IO) == pytest.approx(1.0)
    assert calc.r_c(4, 1, [4], CQIVariant.BASELINE_IO) == 0.0


def test_r_c_positive_subtracts_omega(calc):
    # io_time = 100, omega = 60 -> 40/100.
    assert calc.r_c(2, 1, [2], CQIVariant.POSITIVE_IO) == pytest.approx(0.4)


def test_r_c_truncates_negative_to_zero(calc):
    # A contender whose shared scans exceed its total I/O time.
    profiles = dict(calc.profiles)
    profiles[6] = _profile(6, 50.0, 0.5, {"A", "B"})  # io 25 < omega 100
    calc2 = CQICalculator(profiles=profiles, scan_seconds=calc.scan_seconds)
    assert calc2.r_c(6, 1, [6]) == 0.0


def test_full_variant_subtracts_tau(calc):
    positive = calc.r_c(3, 1, [3, 5], CQIVariant.POSITIVE_IO)
    full = calc.r_c(3, 1, [3, 5], CQIVariant.FULL)
    assert full == pytest.approx(positive - 15.0 / 100.0)


def test_intensity_is_mean_over_concurrent(calc):
    # Mix (1, 2, 4): contenders 2 (r=0.4) and 4 (r=0).
    assert calc.intensity(1, (1, 2, 4)) == pytest.approx(0.2)


def test_intensity_mpl1_is_zero(calc):
    assert calc.intensity(1, (1,)) == 0.0


def test_intensity_requires_primary_in_mix(calc):
    with pytest.raises(ModelError):
        calc.intensity(1, (2, 3))


def test_intensity_with_duplicate_primary(calc):
    # (1, 1): the second instance of the primary is a contender that
    # shares both scans: io 450s minus omega 100s over latency 500s.
    assert calc.intensity(1, (1, 1), CQIVariant.POSITIVE_IO) == pytest.approx(0.7)


def test_unknown_template_rejected(calc):
    with pytest.raises(ModelError):
        calc.intensity(99, (99, 1))


def test_intensity_bounded(calc):
    for mix in [(1, 2), (1, 3), (1, 4), (1, 2, 3, 4)]:
        value = calc.intensity(1, mix)
        assert 0.0 <= value <= 1.0


def test_intensity_for_pairs_matches_scalar(calc):
    """The batched pair kernel must equal scalar intensity bit-for-bit
    — duplicate templates, duplicated primaries, MPLs 2-5, and every
    variant."""
    import itertools
    import random

    import numpy as np

    ids = sorted(calc.profiles)
    rng = random.Random(7)
    pairs = []
    for mpl in (2, 3, 4, 5):
        for _ in range(12):
            mix = tuple(rng.choice(ids) for _ in range(mpl))
            pairs.append((rng.choice(mix), mix))
    # Exhaustive MPL-2 coverage on top of the random sweep.
    for a, b in itertools.product(ids, ids):
        pairs.append((a, (a, b)))
    for variant in CQIVariant:
        for mpl in (2, 3, 4, 5):
            group = [(p, m) for p, m in pairs if len(m) == mpl]
            got = calc.intensity_for_pairs(
                [p for p, _ in group],
                np.array([m for _, m in group]),
                variant,
            )
            expected = [calc.intensity(p, m, variant) for p, m in group]
            assert got.tolist() == expected


def test_intensity_for_pairs_mpl1_and_empty(calc):
    import numpy as np

    assert calc.intensity_for_pairs(
        [1, 2], np.array([[1], [2]])
    ).tolist() == [0.0, 0.0]
    assert calc.intensity_for_pairs([], np.zeros((0, 3))).tolist() == []


def test_intensity_for_pairs_rejects_bad_pairs(calc):
    import numpy as np

    with pytest.raises(ModelError):  # primary absent from its mix
        calc.intensity_for_pairs([1, 1], np.array([[1, 2], [2, 3]]))
    with pytest.raises(ModelError):  # unknown template
        calc.intensity_for_pairs([99], np.array([[99, 1]]))
