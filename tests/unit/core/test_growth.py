"""Expanding-database extension tests."""

import pytest

from repro.core.growth import (
    GrowthModel,
    ScalingLaw,
    default_catalog_factory,
    fit_growth_model,
    validate_growth_model,
)
from repro.core.training import TemplateProfile
from repro.errors import ModelError
from repro.ml.linreg import SimpleLinearRegression

SUBSET = (26, 62, 65)


@pytest.fixture(scope="module")
def factory(config):
    base = default_catalog_factory(config)
    return lambda sf: base(sf).subset(SUBSET)


@pytest.fixture(scope="module")
def model(factory):
    return fit_growth_model(factory, (40.0, 100.0), SUBSET)


def test_laws_cover_requested_templates(model):
    assert set(model.laws) == set(SUBSET)
    assert model.scale_factors == (40.0, 100.0)


def test_latency_scaling_is_increasing(model):
    for law in model.laws.values():
        assert law.latency.slope > 0


def test_predicted_profile_interpolates(model, factory):
    from repro.core.training import measure_template_profile

    mid = measure_template_profile(factory(70.0), 26)
    predicted = model.predict_profile(26, 70.0)
    assert predicted.isolated_latency == pytest.approx(
        mid.isolated_latency, rel=0.05
    )


def test_predicted_profile_keeps_plan_shape(model):
    reference = model.reference_profiles[26]
    predicted = model.predict_profile(26, 150.0)
    assert predicted.plan_steps == reference.plan_steps
    assert predicted.fact_scans == reference.fact_scans


def test_io_fraction_stays_in_unit_interval(model):
    for sf in (10.0, 100.0, 500.0):
        profile = model.predict_profile(26, sf)
        assert 0.0 <= profile.io_fraction <= 1.0


def test_validation_error_small_on_holdout(model, factory):
    errors = validate_growth_model(model, factory, 130.0)
    assert set(errors) == set(SUBSET)
    assert max(errors.values()) < 0.10


def test_unknown_template_rejected(model):
    with pytest.raises(ModelError):
        model.predict_profile(999, 100.0)


def test_bad_scale_factor_rejected(model):
    with pytest.raises(ModelError):
        model.predict_profile(26, 0.0)


def test_fit_needs_two_sizes(factory):
    with pytest.raises(ModelError):
        fit_growth_model(factory, (100.0,), SUBSET)


def test_scaling_law_clamps_latency():
    law = ScalingLaw(
        template_id=1,
        latency=SimpleLinearRegression(slope=-10.0, intercept=5.0),
        io_fraction=SimpleLinearRegression(slope=0.0, intercept=0.5),
        working_set=SimpleLinearRegression(slope=0.0, intercept=-1.0),
    )
    reference = TemplateProfile(
        template_id=1,
        isolated_latency=100.0,
        io_fraction=0.5,
        working_set_bytes=0.0,
        records_accessed=0.0,
        plan_steps=1,
        fact_scans=frozenset(),
    )
    profile = law.profile_at(1000.0, reference)
    assert profile.isolated_latency > 0
    assert profile.working_set_bytes == 0.0
