"""Query Sensitivity model tests."""

import pytest

from repro.core.cqi import CQICalculator, CQIVariant
from repro.core.qs import QSModel, fit_qs_model, qs_training_pairs
from repro.errors import ModelError


@pytest.fixture()
def calc(small_training_data):
    return CQICalculator(
        profiles=small_training_data.profiles,
        scan_seconds=small_training_data.scan_seconds,
    )


def test_qs_model_is_a_line():
    model = QSModel(template_id=1, mpl=2, slope=0.5, intercept=0.1)
    assert model.predict_point(0.0) == pytest.approx(0.1)
    assert model.predict_point(1.0) == pytest.approx(0.6)


def test_qs_model_latency_scaling():
    model = QSModel(template_id=1, mpl=2, slope=1.0, intercept=0.0)
    assert model.predict_latency(0.5, 100.0, 200.0) == pytest.approx(150.0)


def test_training_pairs_have_cqi_and_continuum(small_training_data, calc):
    pairs = qs_training_pairs(small_training_data, calc, 26, 2)
    assert pairs
    for cqi, point in pairs:
        assert 0.0 <= cqi <= 1.0
        assert -1.0 < point < 1.5


def test_fit_produces_model(small_training_data, calc):
    model = fit_qs_model(small_training_data, calc, 26, 2)
    assert model.template_id == 26
    assert model.mpl == 2
    assert model.num_samples == len(
        qs_training_pairs(small_training_data, calc, 26, 2)
    )


def test_fit_respects_variant(small_training_data, calc):
    full = fit_qs_model(small_training_data, calc, 26, 2, CQIVariant.FULL)
    base = fit_qs_model(
        small_training_data, calc, 26, 2, CQIVariant.BASELINE_IO
    )
    assert (full.slope, full.intercept) != (base.slope, base.intercept)


def test_io_bound_template_has_positive_slope(small_training_data, calc):
    """More concurrent I/O demand must mean more slowdown for an
    I/O-bound template — the core premise of QS."""
    model = fit_qs_model(small_training_data, calc, 26, 2)
    assert model.slope > 0


def test_fit_with_too_few_mixes_raises(small_training_data, calc):
    with pytest.raises(ModelError):
        fit_qs_model(
            small_training_data,
            calc,
            26,
            2,
            observations=small_training_data.observations_for(26, 2)[:1],
        )


def test_explicit_observations_subset(small_training_data, calc):
    obs = small_training_data.observations_for(26, 2)[:4]
    model = fit_qs_model(small_training_data, calc, 26, 2, observations=obs)
    assert model.num_samples <= 4
