"""Coefficient-learning tests (Sec. 5.3)."""

import pytest

from repro.core.coefficients import (
    CoefficientModel,
    coefficient_feature_study,
)
from repro.core.qs import QSModel
from repro.core.training import TemplateProfile
from repro.errors import ModelError


def _profile(tid, latency):
    return TemplateProfile(
        template_id=tid,
        isolated_latency=latency,
        io_fraction=0.8,
        working_set_bytes=1e6,
        records_accessed=1e6,
        plan_steps=5,
        fact_scans=frozenset({"a"}),
    )


@pytest.fixture()
def synthetic():
    """Templates whose QS coefficients follow exact linear laws:
    µ = 1 - latency/1000 and b = 0.5 - 0.4 µ."""
    profiles = {}
    models = []
    for tid, latency in enumerate([100.0, 300.0, 500.0, 700.0, 900.0], start=1):
        mu = 1.0 - latency / 1000.0
        b = 0.5 - 0.4 * mu
        profiles[tid] = _profile(tid, latency)
        models.append(
            QSModel(template_id=tid, mpl=2, slope=mu, intercept=b, num_samples=9)
        )
    return profiles, models


def test_fit_recovers_both_regressions(synthetic):
    profiles, models = synthetic
    coeff = CoefficientModel.fit(models, profiles)
    assert coeff.mpl == 2
    assert coeff.slope_from_latency.slope == pytest.approx(-0.001)
    assert coeff.intercept_from_slope.slope == pytest.approx(-0.4)


def test_synthesize_unknown_qs_follows_the_laws(synthetic):
    profiles, models = synthetic
    coeff = CoefficientModel.fit(models, profiles)
    model = coeff.synthesize_unknown_qs(99, isolated_latency=400.0)
    assert model.slope == pytest.approx(0.6)
    assert model.intercept == pytest.approx(0.5 - 0.4 * 0.6)
    assert model.num_samples == 0


def test_synthesize_unknown_y_uses_true_slope(synthetic):
    profiles, models = synthetic
    coeff = CoefficientModel.fit(models, profiles)
    model = coeff.synthesize_unknown_y(99, true_slope=0.25)
    assert model.slope == 0.25
    assert model.intercept == pytest.approx(0.5 - 0.4 * 0.25)


def test_fit_rejects_mixed_mpls(synthetic):
    profiles, models = synthetic
    bad = models[:2] + [
        QSModel(template_id=9, mpl=3, slope=0.1, intercept=0.1)
    ]
    profiles[9] = _profile(9, 500.0)
    with pytest.raises(ModelError):
        CoefficientModel.fit(bad, profiles)


def test_fit_rejects_missing_profile(synthetic):
    profiles, models = synthetic
    del profiles[1]
    with pytest.raises(ModelError):
        CoefficientModel.fit(models, profiles)


def test_fit_needs_two_models(synthetic):
    profiles, models = synthetic
    with pytest.raises(ModelError):
        CoefficientModel.fit(models[:1], profiles)


def test_synthesize_validates_latency(synthetic):
    profiles, models = synthetic
    coeff = CoefficientModel.fit(models, profiles)
    with pytest.raises(ModelError):
        coeff.synthesize_unknown_qs(99, isolated_latency=0.0)


def test_feature_study_rows_in_paper_order(synthetic):
    profiles, models = synthetic
    spoiler = {tid: 2.0 * profiles[tid].isolated_latency for tid in profiles}
    rows = coefficient_feature_study(models, profiles, spoiler)
    names = [name for name, _, _ in rows]
    assert names[0] == "% execution time spent on I/O"
    assert "Isolated latency" in names
    assert names[-1] == "Spoiler slowdown"


def test_feature_study_detects_exact_correlation(synthetic):
    profiles, models = synthetic
    spoiler = {tid: 2.0 * profiles[tid].isolated_latency for tid in profiles}
    rows = {name: (rb, rm) for name, rb, rm in
            coefficient_feature_study(models, profiles, spoiler)}
    # By construction µ is an exact inverse-linear function of latency.
    assert rows["Isolated latency"][1] == pytest.approx(-1.0)
    # And b is positively related to latency (through µ).
    assert rows["Isolated latency"][0] == pytest.approx(1.0)


def test_feature_study_needs_three_models(synthetic):
    profiles, models = synthetic
    spoiler = {tid: 100.0 for tid in profiles}
    with pytest.raises(ModelError):
        coefficient_feature_study(models[:2], profiles, spoiler)
