"""What-if analysis tests."""

import pytest

from repro.core.whatif import attribute_slowdown, best_swap
from repro.errors import ModelError


def test_report_structure(small_contender):
    report = attribute_slowdown(small_contender, 26, (26, 82))
    assert report.primary == 26
    assert report.predicted > 0
    assert report.slowdown > 0.5
    assert len(report.attributions) == 1
    assert report.attributions[0].contender == 82
    assert "what-if" in report.format_table()


def test_heavy_io_contender_attributed_more_than_cpu(small_contender):
    """In a pair, the marginal of an I/O-bound contender must exceed a
    CPU-bound one's (same primary)."""
    io_report = attribute_slowdown(small_contender, 26, (26, 82))
    cpu_report = attribute_slowdown(small_contender, 26, (26, 65))
    assert (
        io_report.attributions[0].marginal_seconds
        > cpu_report.attributions[0].marginal_seconds
    )


def test_marginal_of_pair_is_slowdown_over_isolated(small_contender):
    report = attribute_slowdown(small_contender, 26, (26, 82))
    expected = report.predicted - small_contender.data.profile(26).isolated_latency
    assert report.attributions[0].marginal_seconds == pytest.approx(expected)


def test_attributions_sorted_descending(small_training_data):
    """With MPL-2-only data we can still rank a pair; for a 3-mix we
    need MPL-2 and MPL-3 models — use the pair variant here."""
    from repro.core.contender import Contender

    con = Contender(small_training_data)
    report = attribute_slowdown(con, 26, (26, 82))
    marginals = [a.marginal_seconds for a in report.attributions]
    assert marginals == sorted(marginals, reverse=True)


def test_worst_contender_identified(small_contender):
    report = attribute_slowdown(small_contender, 26, (26, 82))
    assert report.worst_contender() == 82


def test_primary_must_be_in_mix(small_contender):
    with pytest.raises(ModelError):
        attribute_slowdown(small_contender, 26, (65, 82))


def test_mpl1_report_has_no_contenders(small_contender):
    report = attribute_slowdown(small_contender, 26, (26,))
    assert report.attributions == ()
    with pytest.raises(ModelError):
        report.worst_contender()


def test_best_swap_prefers_friendlier_company(small_contender):
    # Swapping the disjoint I/O-bound contender for a CPU-bound one (or
    # a scan-sharing one) must reduce the predicted latency.
    candidate, predicted = best_swap(
        small_contender, 26, (26, 82), candidates=[65, 71]
    )
    original = small_contender.predict_known(26, (26, 82))
    assert predicted < original
    assert candidate in (65, 71)


def test_best_swap_validation(small_contender):
    with pytest.raises(ModelError):
        best_swap(small_contender, 26, (26, 82), candidates=[])
    with pytest.raises(ModelError):
        best_swap(
            small_contender, 26, (26, 82), candidates=[65], victim=26
        )
