"""Campaign executor unit tests: seeding, jobs resolution, parallel map."""

import os

import pytest

from repro.core.campaign import (
    parallel_map,
    resolve_jobs,
    task_rng,
    task_seed,
)
from repro.errors import SamplingError
from repro.obs.metrics import Registry


# ----------------------------------------------------------------------
# Seeding.


def test_task_seed_is_stable():
    a = task_seed(7, "mix", key=(26, 71), mpl=2)
    b = task_seed(7, "mix", key=(26, 71), mpl=2)
    assert a == b


def test_task_seed_distinguishes_every_component():
    base = task_seed(7, "mix", key=(26, 71), mpl=2)
    assert task_seed(8, "mix", key=(26, 71), mpl=2) != base
    assert task_seed(7, "spoiler", key=(26, 71), mpl=2) != base
    assert task_seed(7, "mix", key=(26, 72), mpl=2) != base
    assert task_seed(7, "mix", key=(26, 71), mpl=3) != base


def test_task_rng_streams_are_independent_of_call_order():
    first = task_rng(7, "mix", key=(26, 71), mpl=2).random(4).tolist()
    task_rng(7, "mix", key=(22, 65), mpl=2).random(100)  # unrelated draw
    second = task_rng(7, "mix", key=(26, 71), mpl=2).random(4).tolist()
    assert first == second


# ----------------------------------------------------------------------
# Jobs resolution.


def test_resolve_jobs_defaults_and_all_cores():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_negative():
    with pytest.raises(SamplingError):
        resolve_jobs(-1)


# ----------------------------------------------------------------------
# parallel_map.


def _square_plus(context, item):
    return item * item + context


def _fail_on_three(context, item):
    if item == 3:
        raise SamplingError("task three exploded")
    return item


def test_parallel_map_serial_matches_comprehension():
    items = list(range(10))
    assert parallel_map(_square_plus, 5, items, jobs=1) == [
        i * i + 5 for i in items
    ]


def test_parallel_map_preserves_item_order_across_processes():
    items = list(range(23))
    expected = [i * i + 1 for i in items]
    assert parallel_map(_square_plus, 1, items, jobs=2) == expected
    assert parallel_map(_square_plus, 1, items, jobs=2, chunk_size=1) == expected
    assert parallel_map(_square_plus, 1, items, jobs=2, chunk_size=50) == expected


def test_parallel_map_single_item_stays_in_process():
    assert parallel_map(_square_plus, 0, [4], jobs=8) == [16]


def test_parallel_map_propagates_worker_errors():
    with pytest.raises(SamplingError, match="task three exploded"):
        parallel_map(_fail_on_three, None, [1, 2, 3, 4], jobs=2, chunk_size=1)


def test_parallel_map_rejects_unpicklable_context():
    context = lambda: None  # noqa: E731 — locals don't pickle
    with pytest.raises(SamplingError, match="not picklable"):
        parallel_map(_square_plus, context, [1, 2], jobs=2)


def test_parallel_map_empty_items():
    assert parallel_map(_square_plus, 0, [], jobs=4) == []


# ----------------------------------------------------------------------
# parallel_map observability.


def _label_of(item):
    return "even" if item % 2 == 0 else "odd"


def test_serial_map_records_campaign_metrics():
    reg = Registry()
    items = list(range(6))
    out = parallel_map(
        _square_plus, 2, items, jobs=1, metrics=reg, task_label=_label_of
    )
    assert out == [i * i + 2 for i in items]
    assert reg.get("campaign_workers").value == 1
    assert reg.get("campaign_tasks_total").labels("even").value == 3
    assert reg.get("campaign_tasks_total").labels("odd").value == 3
    assert reg.get("campaign_task_seconds").labels("even").snapshot().count == 3
    assert (
        reg.get("campaign_worker_tasks_total").labels(os.getpid()).value == 6
    )


def test_pooled_map_merges_worker_metrics_into_parent():
    reg = Registry()
    items = list(range(12))
    out = parallel_map(
        _square_plus,
        0,
        items,
        jobs=2,
        chunk_size=3,
        metrics=reg,
        task_label=_label_of,
    )
    assert out == [i * i for i in items]
    assert reg.get("campaign_workers").value == 2
    assert reg.get("campaign_chunks_total").value == 4
    # Every chunk completed, so the queue fully drained.
    assert reg.get("campaign_chunk_queue_depth").value == 0
    assert reg.get("campaign_tasks_total").total() == 12
    assert reg.get("campaign_task_seconds").labels("odd").snapshot().count == 6
    # Per-worker attribution covers every task, whatever the split.
    assert reg.get("campaign_worker_tasks_total").total() == 12


def test_metrics_do_not_change_results_or_determinism():
    items = list(range(9))
    plain = parallel_map(_square_plus, 3, items, jobs=2, chunk_size=2)
    observed = parallel_map(
        _square_plus, 3, items, jobs=2, chunk_size=2, metrics=Registry()
    )
    assert plain == observed


def test_default_task_label_is_task():
    reg = Registry()
    parallel_map(_square_plus, 0, [1, 2], jobs=1, metrics=reg)
    assert reg.get("campaign_tasks_total").labels("task").value == 2


# ----------------------------------------------------------------------
# Batched execution: grouping tasks into lockstep batches must be pure
# plumbing — campaign results are bit-identical across engines, batch
# sizes, and jobs counts.


def _collect(engine, jobs=1, batch=64):
    from repro.config import CampaignConfig, SimulationConfig, SystemConfig
    from repro.core.training import collect_training_data
    from repro.sampling.steady_state import SteadyStateConfig
    from repro.workload.catalog import TemplateCatalog

    config = SystemConfig(
        simulation=SimulationConfig(engine=engine),
        campaign=CampaignConfig(jobs=jobs, batch_size=batch),
    )
    catalog = TemplateCatalog(config=config).subset((26, 62, 71))
    return collect_training_data(
        catalog,
        mpls=(2,),
        lhs_runs_per_mpl=2,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    ).to_json()


def test_campaign_bit_identical_across_engines_batches_and_jobs():
    scalar = _collect("virtual_time")
    assert _collect("batched", batch=3) == scalar
    assert _collect("batched", batch=64) == scalar
    assert _collect("batched", jobs=2, batch=64) == scalar
