"""Evaluation-procedure tests."""

import pytest

from repro.core.contender import NewTemplateVariant, SpoilerMode
from repro.core.evaluation import (
    PredictionRecord,
    evaluate_known_templates,
    evaluate_new_templates,
    evaluate_spoiler_predictors,
    overall_mre,
    summarize_by_mpl,
    summarize_by_template,
)
from repro.errors import ModelError


def _record(primary, mix, observed, predicted):
    return PredictionRecord(
        primary=primary, mix=mix, observed=observed, predicted=predicted
    )


def test_prediction_record_relative_error():
    rec = _record(1, (1, 2), 100.0, 80.0)
    assert rec.relative_error == pytest.approx(0.2)


def test_summarize_by_mpl_groups_on_mix_size():
    records = [
        _record(1, (1, 2), 100.0, 90.0),
        _record(1, (1, 2, 3), 100.0, 50.0),
    ]
    summary = summarize_by_mpl(records)
    assert summary[2][0] == pytest.approx(0.1)
    assert summary[3][0] == pytest.approx(0.5)


def test_summarize_by_template():
    records = [
        _record(1, (1, 2), 100.0, 90.0),
        _record(1, (1, 3), 100.0, 110.0),
        _record(2, (2, 3), 100.0, 150.0),
    ]
    summary = summarize_by_template(records)
    assert summary[1] == pytest.approx(0.1)
    assert summary[2] == pytest.approx(0.5)


def test_overall_mre_empty_rejected():
    with pytest.raises(ModelError):
        overall_mre([])


def test_known_templates_cross_validation(small_training_data, rng):
    records = evaluate_known_templates(small_training_data, (2,), rng=rng)
    assert records
    assert overall_mre(records) < 0.30
    primaries = {r.primary for r in records}
    assert primaries <= set(small_training_data.template_ids)


def test_known_templates_predictions_are_out_of_fold(small_training_data, rng):
    """Every sampled mix of a template appears exactly once as a test
    point (k-fold covers the data without repetition)."""
    records = evaluate_known_templates(small_training_data, (2,), rng=rng)
    seen = [(r.primary, r.mix) for r in records]
    assert len(seen) == len(set(seen))


def test_new_templates_leave_one_out(small_training_data):
    records = evaluate_new_templates(
        small_training_data, (2,), spoiler_mode=SpoilerMode.MEASURED
    )
    assert records
    # No self-mixes: the held-out template never appears as a contender.
    for rec in records:
        assert list(rec.mix).count(rec.primary) == 1
    assert overall_mre(records) < 0.6


def test_new_templates_exclusion(small_training_data):
    records = evaluate_new_templates(
        small_training_data,
        (2,),
        spoiler_mode=SpoilerMode.MEASURED,
        exclude=(26,),
    )
    assert all(rec.primary != 26 for rec in records)


def test_new_templates_profile_transform_applied(small_training_data):
    """A grossly inflated isolated latency must change predictions."""
    plain = evaluate_new_templates(
        small_training_data, (2,), spoiler_mode=SpoilerMode.MEASURED
    )
    inflated = evaluate_new_templates(
        small_training_data,
        (2,),
        spoiler_mode=SpoilerMode.MEASURED,
        profile_transform=lambda p: type(p)(
            template_id=p.template_id,
            isolated_latency=p.isolated_latency * 1.5,
            io_fraction=p.io_fraction,
            working_set_bytes=p.working_set_bytes,
            records_accessed=p.records_accessed,
            plan_steps=p.plan_steps,
            fact_scans=p.fact_scans,
        ),
    )
    assert overall_mre(inflated) != overall_mre(plain)


def test_unknown_y_uses_full_data_slope(small_training_data):
    uy = evaluate_new_templates(
        small_training_data,
        (2,),
        variant=NewTemplateVariant.UNKNOWN_Y,
        spoiler_mode=SpoilerMode.MEASURED,
    )
    uqs = evaluate_new_templates(
        small_training_data,
        (2,),
        variant=NewTemplateVariant.UNKNOWN_QS,
        spoiler_mode=SpoilerMode.MEASURED,
    )
    assert [r.predicted for r in uy] != [r.predicted for r in uqs]


def test_spoiler_predictor_evaluation(small_training_data):
    out = evaluate_spoiler_predictors(small_training_data, (2,))
    assert set(out) == {"KNN", "I/O Time"}
    for table in out.values():
        assert 2 in table
        assert table[2] >= 0
