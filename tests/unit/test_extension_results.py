"""Unit tests for the extension/baseline result dataclasses."""

import pytest

from repro.experiments.baseline_prior_work import PriorWorkResult
from repro.experiments.ext_database_growth import GrowthResult, _available_mixes
from repro.experiments.ext_distributed import (
    DistributedResult,
    _available_mixes as distributed_mixes,
)
from repro.experiments.ext_operator_model import OperatorModelResult
from repro.experiments.fig10_new_templates import Fig10Result


def test_operator_model_format():
    result = OperatorModelResult(
        qs_known={2: 0.07},
        operator_known={2: 0.14},
        operator_new={2: 0.15},
        mpls=(2,),
    )
    table = result.format_table()
    assert "operator-level" in table
    assert "7.0%" in table and "15.0%" in table


def test_growth_result_format():
    result = GrowthResult(
        isolated_mre=0.004,
        worst_isolated_error=(18, 0.012),
        concurrent={(26, 65): (26, 290.0, 270.0)},
    )
    table = result.format_table()
    assert "expanding database" in table
    assert "T18" in table
    assert "(26, 65)" in table


def test_growth_probe_mixes_filtering():
    assert _available_mixes([26, 65, 71, 62, 82]) == ((26, 65), (71, 26), (62, 82))
    assert _available_mixes([26, 65]) == ((26, 65),)
    # Fallback pairs the extremes when no probe mix fits.
    assert _available_mixes([3, 9]) == ((3, 9),)


def test_distributed_result_format():
    result = DistributedResult(
        mre={2: 0.06},
        rows={2: [((26, 65), 26, 110.0, 100.0)]},
        speedups={2: 1.9},
    )
    table = result.format_table()
    assert "2 hosts" in table
    assert "1.90x" in table


def test_distributed_probe_mix_fallback():
    assert distributed_mixes([1, 2, 3]) == ((1, 3),)


def test_fig10_averages():
    stats = {
        "Known Spoiler": {2: (0.08, 0.07), 3: (0.12, 0.12)},
        "KNN Spoiler": {2: (0.08, 0.07), 3: (0.11, 0.09)},
        "Isolated Prediction": {2: (0.15, 0.10), 3: (0.16, 0.13)},
    }
    result = Fig10Result(stats=stats, mpls=(2, 3))
    assert result.average("Known Spoiler") == pytest.approx(0.10)
    assert "±" in result.format_table()


def test_prior_work_result_format():
    result = PriorWorkResult(
        contender_mre=0.084,
        prior_work_mre=0.161,
        contender_new_template_runs=1,
        prior_work_new_template_runs=200,
        mpls=(2, 3, 4, 5),
    )
    table = result.format_table()
    assert "8.4%" in table and "16.1%" in table
    assert "200" in table
    assert "one isolated run" in table
