"""LifecycleManager.react: the detect -> retrain -> gate -> promote arc
on a two-template micro-scenario."""

import pytest

from repro.config import LifecycleConfig
from repro.core.contender import Contender
from repro.core.training import collect_training_data
from repro.errors import LifecycleError
from repro.lifecycle.manager import LifecycleManager
from repro.lifecycle.monitor import ResidualMonitor
from repro.lifecycle.promotion import PromotionManager
from repro.obs.metrics import Registry
from repro.sampling.steady_state import SteadyStateConfig
from repro.workload.catalog import TemplateCatalog
from repro.workload.schema import build_schema

FAST = LifecycleConfig(
    reference_window=4,
    test_window=2,
    min_samples=4,
    residual_window=16,
)
TEMPLATES = (22, 26)


@pytest.fixture(scope="module")
def incumbent_data(small_catalog):
    return collect_training_data(
        small_catalog.subset(TEMPLATES),
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    )


@pytest.fixture(scope="module")
def grown_catalog(small_catalog):
    return TemplateCatalog(
        config=small_catalog.config,
        schema=build_schema(140.0),
        template_ids=list(TEMPLATES),
    )


def _manager(tmp_path, incumbent, metrics=None):
    promotion = PromotionManager(tmp_path / "model.json")
    promotion.initialize(incumbent)
    return LifecycleManager(
        monitor=ResidualMonitor(FAST, metrics=metrics),
        promotion=promotion,
        config=FAST,
        metrics=metrics,
    )


def _inject_drift(manager, template_id):
    for _ in range(6):
        manager.observe(template_id, predicted=100.0, observed=101.0)
    for _ in range(6):
        manager.observe(template_id, predicted=100.0, observed=160.0)
    assert template_id in manager.monitor.drifted_templates()


def test_react_without_drift_is_a_noop(tmp_path, incumbent_data, small_catalog):
    incumbent = Contender(incumbent_data)
    manager = _manager(tmp_path, incumbent)
    assert manager.react(small_catalog, incumbent) is None
    assert len(manager.promotion.history()) == 1  # initialize only


def test_react_retrains_and_promotes_on_drift(
    tmp_path, incumbent_data, grown_catalog
):
    metrics = Registry()
    incumbent = Contender(incumbent_data)
    manager = _manager(tmp_path, incumbent, metrics=metrics)
    for t in TEMPLATES:
        _inject_drift(manager, t)

    event = manager.react(grown_catalog, incumbent)
    assert event["action"] == "promoted"
    assert event["drifted"] == sorted(TEMPLATES)
    assert event["shadow"]["passed"] is True

    actions = [r.action for r in manager.promotion.history()]
    assert actions == ["initialize", "promote"]
    # A successful promotion re-arms the drifted templates.
    assert manager.monitor.drifted_templates() == []

    families = {f.name: f for f in metrics.collect()}
    assert families["lifecycle_retrains_total"].value == 1
    assert families["lifecycle_promotions_total"].value == 1
    assert families["lifecycle_gate_rejections_total"].value == 0


def test_react_is_deterministic(tmp_path, incumbent_data, grown_catalog):
    events = []
    for run in range(2):
        incumbent = Contender(incumbent_data)
        manager = _manager(tmp_path / f"run{run}", incumbent)
        for t in TEMPLATES:
            _inject_drift(manager, t)
        events.append(manager.react(grown_catalog, incumbent))
    assert events[0]["shadow"] == events[1]["shadow"]
    assert (
        events[0]["promotion"]["fingerprint"]
        == events[1]["promotion"]["fingerprint"]
    )


def test_react_pads_a_singleton_scope_with_a_support_template(
    tmp_path, incumbent_data, grown_catalog
):
    # A one-template campaign cannot produce enough distinct MPL-2
    # mixes for the drifted template's QS fit, so the retrain scope is
    # padded with the lowest-id un-drifted template and the reaction
    # still completes.
    incumbent = Contender(incumbent_data)
    manager = _manager(tmp_path, incumbent)
    _inject_drift(manager, 26)

    event = manager.react(grown_catalog, incumbent)
    assert event["drifted"] == [26]
    assert event["scope"] == [22, 26]
    assert event["action"] == "promoted"
    # Only the drifted template is re-armed; 22 never drifted.
    assert manager.monitor.drifted_templates() == []


def test_react_rejects_when_gate_margin_is_unreachable(
    tmp_path, incumbent_data, grown_catalog
):
    # A 99% required improvement is unreachable; the candidate is
    # rejected, nothing is promoted, and the drift flag stays latched
    # (the problem is still unsolved).
    import dataclasses

    strict = dataclasses.replace(FAST, promotion_margin=0.99)
    metrics = Registry()
    incumbent = Contender(incumbent_data)
    promotion = PromotionManager(tmp_path / "model.json")
    promotion.initialize(incumbent)
    manager = LifecycleManager(
        monitor=ResidualMonitor(strict, metrics=metrics),
        promotion=promotion,
        config=strict,
        metrics=metrics,
    )
    for t in TEMPLATES:
        _inject_drift(manager, t)

    event = manager.react(grown_catalog, incumbent)
    assert event["action"] == "rejected"
    assert "promotion" not in event
    assert [r.action for r in promotion.history()] == ["initialize"]
    assert manager.monitor.drifted_templates() == sorted(TEMPLATES)

    families = {f.name: f for f in metrics.collect()}
    assert families["lifecycle_gate_rejections_total"].value == 1
    assert families["lifecycle_promotions_total"].value == 0


def test_rollback_delegates_to_promotion(tmp_path, incumbent_data):
    incumbent = Contender(incumbent_data)
    manager = _manager(tmp_path, incumbent)
    with pytest.raises(LifecycleError):
        manager.rollback()  # nothing promoted yet — no backup
