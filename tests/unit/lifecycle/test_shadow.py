"""Shadow scoring: holdout determinism and the promotion gate."""

import pytest

from repro.core.contender import Contender
from repro.errors import LifecycleError
from repro.lifecycle.shadow import (
    HoldoutObservation,
    ShadowReport,
    collect_holdout,
    shadow_score,
)

MIXES = [(22, 26), (26, 65)]


def test_holdout_is_seed_deterministic(small_catalog):
    a = collect_holdout(small_catalog, MIXES, seed=11)
    b = collect_holdout(small_catalog, MIXES, seed=11)
    assert a == b
    c = collect_holdout(small_catalog, MIXES, seed=12)
    assert [o.observed for o in a] != [o.observed for o in c]


def test_holdout_mix_order_is_irrelevant(small_catalog):
    a = collect_holdout(small_catalog, [(22, 26), (26, 65)], seed=11)
    b = collect_holdout(small_catalog, [(65, 26), (26, 22)], seed=11)
    assert a == b


def test_holdout_covers_each_primary_of_each_mix(small_catalog):
    observations = collect_holdout(small_catalog, MIXES, seed=11)
    assert {(o.primary, o.mix) for o in observations} == {
        (22, (22, 26)),
        (26, (22, 26)),
        (26, (26, 65)),
        (65, (26, 65)),
    }


def test_holdout_rejects_empty_mix_list(small_catalog):
    with pytest.raises(LifecycleError):
        collect_holdout(small_catalog, [], seed=11)


def _constant_holdout(value=100.0):
    return [HoldoutObservation(primary=22, mix=(22, 26), observed=value)]


class _FixedModel:
    """Predicts a constant — lets tests dial each model's MRE exactly."""

    def __init__(self, prediction):
        self._prediction = prediction

    def predict_known(self, primary, mix):
        return self._prediction


def test_gate_passes_when_candidate_beats_margin():
    report = shadow_score(
        _FixedModel(80.0),  # incumbent MRE 0.2
        _FixedModel(98.0),  # candidate MRE 0.02
        _constant_holdout(),
        margin=0.05,
    )
    assert report.passed
    assert report.incumbent_mre == pytest.approx(0.2)
    assert report.candidate_mre == pytest.approx(0.02)


def test_gate_rejects_improvement_within_noise_margin():
    # 4% better than the incumbent but the margin demands 5%.
    report = shadow_score(
        _FixedModel(80.0),  # incumbent MRE 0.20
        _FixedModel(80.8),  # candidate MRE 0.192
        _constant_holdout(),
        margin=0.05,
    )
    assert not report.passed


def test_gate_rejects_worse_candidate():
    report = shadow_score(
        _FixedModel(98.0),
        _FixedModel(60.0),
        _constant_holdout(),
        margin=0.0,
    )
    assert not report.passed


def test_unpredictable_observations_are_skipped_for_both(
    small_training_data, small_contender
):
    # The candidate lacks template 22 entirely, so observations with
    # primary 22 are skipped for both models — common support only.
    smaller = Contender(
        small_training_data.restricted_to(
            [t for t in small_training_data.template_ids if t != 22]
        )
    )
    holdout = [
        HoldoutObservation(primary=22, mix=(22, 26), observed=100.0),
        HoldoutObservation(primary=26, mix=(26, 65), observed=100.0),
    ]
    report = shadow_score(small_contender, smaller, holdout, margin=0.0)
    assert report.skipped == 1
    assert report.observations == 1


def test_no_common_support_raises(small_training_data, small_contender):
    smaller = Contender(
        small_training_data.restricted_to(
            [t for t in small_training_data.template_ids if t != 22]
        )
    )
    holdout = [HoldoutObservation(primary=22, mix=(22, 26), observed=100.0)]
    with pytest.raises(LifecycleError):
        shadow_score(small_contender, smaller, holdout, margin=0.0)


def test_shadow_score_validates_inputs(small_contender):
    with pytest.raises(LifecycleError):
        shadow_score(small_contender, small_contender, [], margin=0.0)
    with pytest.raises(LifecycleError):
        shadow_score(
            small_contender, small_contender, _constant_holdout(), margin=1.0
        )


def test_report_doc_is_json_ready():
    report = ShadowReport(
        incumbent_mre=0.2,
        candidate_mre=0.05,
        margin=0.05,
        observations=10,
        skipped=1,
        passed=True,
    )
    doc = report.to_doc()
    assert doc["passed"] is True and doc["observations"] == 10
