"""Drift-detector guarantees: no false positives on stationary streams,
guaranteed detection of step changes, latching, and replayability.

The mean-shift test is *structural*: with residual noise confined to
``[-b, +b]`` its statistic can never exceed ``2b``, so any threshold
above that bound has a false-positive rate of exactly zero — hypothesis
is free to pick adversarial bounded sequences.  Page-Hinkley has no such
adversarial bound (a worst-case bounded sequence *is* a mean shift), so
its no-FP property is stated over i.i.d. stationary noise drawn from a
seeded generator.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LifecycleError
from repro.lifecycle.detectors import (
    DriftVerdict,
    MeanShiftDetector,
    PageHinkleyDetector,
)

NOISE = 0.05  # residual noise bound used throughout


def _mean_shift() -> MeanShiftDetector:
    # threshold 0.12 > 2 * NOISE = 0.10: structurally FP-free.
    return MeanShiftDetector(reference_window=10, test_window=5, threshold=0.12)


def _page_hinkley() -> PageHinkleyDetector:
    return PageHinkleyDetector(delta=0.01, lambda_=0.6, min_samples=10)


# ----------------------------------------------------------------------
# No false positives on stationary residuals.


@given(
    st.lists(
        st.floats(min_value=-NOISE, max_value=NOISE, allow_nan=False),
        max_size=200,
    )
)
def test_mean_shift_never_fires_on_bounded_noise(values):
    detector = _mean_shift()
    assert not any(detector.update(v) for v in values)
    assert not detector.fired
    if detector.statistic is not None:
        assert detector.statistic <= 2 * NOISE


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_page_hinkley_never_fires_on_stationary_noise(seed):
    rng = np.random.default_rng(seed)
    detector = _page_hinkley()
    stream = rng.uniform(-NOISE, NOISE, size=300)
    assert not any(detector.update(float(v)) for v in stream)
    assert not detector.fired


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_both_detectors_quiet_on_biased_but_stationary_noise(seed):
    # A constant bias is calibrated away: the mean-shift reference
    # absorbs it and Page-Hinkley's running mean converges onto it.
    rng = np.random.default_rng(seed)
    ms, ph = _mean_shift(), _page_hinkley()
    stream = 0.03 + rng.uniform(-0.02, 0.02, size=300)
    for v in stream:
        assert not ms.update(float(v))
        assert not ph.update(float(v))


# ----------------------------------------------------------------------
# Guaranteed detection of a step change.


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.floats(min_value=0.2, max_value=0.6, allow_nan=False),
)
def test_mean_shift_detects_step(seed, step):
    rng = np.random.default_rng(seed)
    detector = _mean_shift()
    for v in rng.uniform(-NOISE, NOISE, size=30):
        assert not detector.update(float(v))
    # Step exceeds threshold + 2 * noise: once the test window fills
    # with post-step samples the statistic must cross.
    fired_at = None
    for i, v in enumerate(rng.uniform(step - NOISE, step + NOISE, size=20)):
        if detector.update(float(v)):
            fired_at = i
            break
    assert fired_at is not None
    assert fired_at < 5  # within one test window of the step
    assert detector.fired
    assert detector.statistic > detector.threshold


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.floats(min_value=0.2, max_value=0.6, allow_nan=False),
)
def test_page_hinkley_detects_sustained_shift(seed, step):
    rng = np.random.default_rng(seed)
    detector = _page_hinkley()
    for v in rng.uniform(-NOISE, NOISE, size=30):
        assert not detector.update(float(v))
    # After the shift the statistic grows ~(step/2 - delta) per sample
    # (the running mean chases the new level), so it must cross any
    # finite lambda.
    fired = False
    for v in rng.uniform(step - NOISE, step + NOISE, size=60):
        if detector.update(float(v)):
            fired = True
            break
    assert fired


# ----------------------------------------------------------------------
# Latching and reset.


def test_detectors_latch_until_reset():
    for detector in (_mean_shift(), _page_hinkley()):
        for _ in range(30):
            detector.update(0.0)
        fired = [detector.update(1.0) for _ in range(20)]
        assert sum(fired) == 1, detector.name
        assert detector.fired
        detector.reset()
        assert not detector.fired
        assert detector.statistic is None
        # Re-armed: a fresh stationary stream does not fire.
        assert not any(detector.update(0.0) for _ in range(30))


def test_mean_shift_reference_is_frozen_not_sliding():
    detector = MeanShiftDetector(
        reference_window=4, test_window=2, threshold=0.1
    )
    for _ in range(4):
        detector.update(0.0)  # reference freezes at mean 0
    # A slow creep the frozen reference cannot absorb.
    assert not detector.update(0.1)  # test window not full yet
    assert detector.update(0.3) or detector.fired


def test_replaying_a_stream_replays_the_verdict_ordinal():
    stream = [0.0] * 25 + [0.4] * 10
    ordinals = []
    for _ in range(2):
        detector = _mean_shift()
        for i, v in enumerate(stream):
            if detector.update(v):
                ordinals.append(i)
                break
    assert len(ordinals) == 2 and ordinals[0] == ordinals[1]


# ----------------------------------------------------------------------
# Construction and verdict serialization.


@pytest.mark.parametrize(
    "kwargs",
    [
        {"reference_window": 0, "test_window": 5, "threshold": 0.1},
        {"reference_window": 5, "test_window": 0, "threshold": 0.1},
        {"reference_window": 5, "test_window": 5, "threshold": 0.0},
    ],
)
def test_mean_shift_rejects_bad_parameters(kwargs):
    with pytest.raises(LifecycleError):
        MeanShiftDetector(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"delta": -0.1, "lambda_": 0.5, "min_samples": 5},
        {"delta": 0.01, "lambda_": 0.0, "min_samples": 5},
        {"delta": 0.01, "lambda_": 0.5, "min_samples": 0},
    ],
)
def test_page_hinkley_rejects_bad_parameters(kwargs):
    with pytest.raises(LifecycleError):
        PageHinkleyDetector(**kwargs)


def test_verdict_doc_round_trip():
    verdict = DriftVerdict(
        template_id=26,
        detector="mean_shift",
        statistic=0.19,
        threshold=0.12,
        sample_ordinal=17,
    )
    assert DriftVerdict.from_doc(verdict.to_doc()) == verdict


def test_verdict_rejects_malformed_doc():
    with pytest.raises(LifecycleError):
        DriftVerdict.from_doc({"detector": "mean_shift"})
