"""PromotionManager: gated installs, one-step rollback, ledger replay."""

import json

import pytest

from repro.core.contender import Contender
from repro.errors import LifecycleError
from repro.lifecycle.promotion import PromotionManager, PromotionRecord
from repro.lifecycle.shadow import ShadowReport
from repro.serving.registry import ModelRegistry, load_artifact


@pytest.fixture(scope="module")
def models(small_contender, small_training_data):
    """Two distinct contenders (different fingerprints)."""
    other = Contender(
        small_training_data.restricted_to(
            [t for t in small_training_data.template_ids if t != 22]
        )
    )
    return small_contender, other


def _gate(passed=True):
    return ShadowReport(
        incumbent_mre=0.3,
        candidate_mre=0.05 if passed else 0.4,
        margin=0.05,
        observations=8,
        skipped=0,
        passed=passed,
    )


def test_initialize_then_promote_then_rollback(tmp_path, models):
    a, b = models
    manager = PromotionManager(tmp_path / "model.json")
    info_a = manager.initialize(a)
    record = manager.promote(b, gate=_gate())
    assert record.action == "promote"
    assert record.previous_fingerprint == info_a.fingerprint
    assert load_artifact(manager.artifact_path).info.fingerprint == (
        record.fingerprint
    )

    back = manager.rollback()
    assert back.action == "rollback"
    assert back.fingerprint == info_a.fingerprint
    assert load_artifact(manager.artifact_path).info.fingerprint == (
        info_a.fingerprint
    )
    # One-step history: rolling back again flips forward to B.
    forward = manager.rollback()
    assert forward.fingerprint == record.fingerprint


def test_initialize_refuses_occupied_slot(tmp_path, models):
    a, _ = models
    manager = PromotionManager(tmp_path / "model.json")
    manager.initialize(a)
    with pytest.raises(LifecycleError):
        manager.initialize(a)


def test_promote_refuses_failed_gate(tmp_path, models):
    a, b = models
    manager = PromotionManager(tmp_path / "model.json")
    manager.initialize(a)
    with pytest.raises(LifecycleError, match="shadow gate failed"):
        manager.promote(b, gate=_gate(passed=False))
    # The incumbent still serves.
    assert load_artifact(manager.artifact_path).info.fingerprint


def test_promote_refuses_identical_candidate(tmp_path, models):
    a, _ = models
    manager = PromotionManager(tmp_path / "model.json")
    manager.initialize(a)
    with pytest.raises(LifecycleError, match="bitwise-identical"):
        manager.promote(a, gate=_gate())


def test_promote_requires_an_incumbent(tmp_path, models):
    a, _ = models
    manager = PromotionManager(tmp_path / "model.json")
    with pytest.raises(LifecycleError):
        manager.promote(a, gate=_gate())


def test_rollback_requires_a_backup(tmp_path, models):
    a, _ = models
    manager = PromotionManager(tmp_path / "model.json")
    manager.initialize(a)
    with pytest.raises(LifecycleError):
        manager.rollback()


def test_ledger_survives_a_new_manager_instance(tmp_path, models):
    a, b = models
    manager = PromotionManager(tmp_path / "model.json")
    manager.initialize(a)
    manager.promote(b, gate=_gate())

    reopened = PromotionManager(tmp_path / "model.json")
    actions = [r.action for r in reopened.history()]
    assert actions == ["initialize", "promote"]
    # Ordinals keep counting where the ledger left off.
    record = reopened.rollback()
    assert record.ordinal == 3


def test_ledger_records_gate_and_no_timestamps(tmp_path, models):
    a, b = models
    manager = PromotionManager(tmp_path / "model.json")
    manager.initialize(a)
    manager.promote(b, gate=_gate())
    doc = json.loads((tmp_path / "ledger.json").read_text())
    promote = doc["records"][1]
    assert promote["gate"]["passed"] is True
    assert set(promote) == {
        "ordinal",
        "action",
        "fingerprint",
        "previous_fingerprint",
        "gate",
    }


def test_malformed_ledger_raises(tmp_path):
    (tmp_path / "ledger.json").write_text('{"records": [{"ordinal": "x"}]}')
    with pytest.raises(LifecycleError):
        PromotionManager(tmp_path / "model.json")


def test_record_doc_round_trip():
    record = PromotionRecord(
        ordinal=2,
        action="promote",
        fingerprint="abc",
        previous_fingerprint="def",
        gate=_gate().to_doc(),
    )
    assert PromotionRecord.from_doc(record.to_doc()) == record


def test_promotion_notifies_a_live_registry(tmp_path, models):
    a, b = models
    registry = ModelRegistry()
    manager = PromotionManager(tmp_path / "model.json", registry=registry)
    manager.initialize(a)
    first = registry.entry("default")

    swaps = []
    registry.subscribe(swaps.append)
    record = manager.promote(b, gate=_gate())
    assert registry.entry("default").model.info.fingerprint == (
        record.fingerprint
    )
    assert len(swaps) == 1

    manager.rollback()
    assert registry.entry("default").model.info.fingerprint == (
        first.model.info.fingerprint
    )
    assert len(swaps) == 2
