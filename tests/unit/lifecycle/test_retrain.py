"""Scoped retraining: seed derivation, merge semantics, determinism."""

import pytest

from repro.errors import LifecycleError
from repro.lifecycle.retrain import (
    merge_training_data,
    retrain_seed,
    scoped_retrain,
)
from repro.workload.catalog import TemplateCatalog
from repro.workload.schema import build_schema

AFFECTED = (22, 26)


def test_retrain_seed_is_deterministic_and_round_keyed():
    assert retrain_seed(7, 0) == retrain_seed(7, 0)
    assert retrain_seed(7, 0) != retrain_seed(7, 1)
    assert retrain_seed(7, 0) != retrain_seed(8, 0)
    # And distinct from the raw config seed — retraining must not
    # replay the original campaign's draws.
    assert retrain_seed(7, 0) != 7


@pytest.fixture(scope="module")
def grown_catalog(small_catalog):
    """The same workload at a grown database (scale factor 140)."""
    return TemplateCatalog(
        config=small_catalog.config,
        schema=build_schema(140.0),
        template_ids=list(small_catalog.template_ids),
    )


@pytest.fixture(scope="module")
def merged(small_training_data, grown_catalog):
    return scoped_retrain(
        small_training_data, grown_catalog, AFFECTED, round_ordinal=0
    )


def test_merge_replaces_affected_profiles_and_spoilers(
    small_training_data, merged
):
    for t in AFFECTED:
        assert (
            merged.profiles[t].isolated_latency
            != small_training_data.profiles[t].isolated_latency
        )
    untouched = [
        t for t in small_training_data.template_ids if t not in AFFECTED
    ]
    for t in untouched:
        assert merged.profiles[t] is small_training_data.profiles[t]
        assert merged.spoilers[t] is small_training_data.spoilers[t]


def test_merge_drops_affected_primaries_but_keeps_cross_mixes(
    small_training_data, merged
):
    affected = set(AFFECTED)
    for mpl, obs_list in merged.observations.items():
        incumbent_obs = small_training_data.observations.get(mpl, [])
        # Observations with an affected primary must all come from the
        # fresh within-set campaign (mix confined to the affected set).
        for obs in obs_list:
            if obs.primary in affected:
                assert set(obs.mix) <= affected
    # Un-drifted primaries keep their cross-mixes with drifted
    # templates (dropping them would starve their QS fits).
    kept_cross = [
        obs
        for mpl, obs_list in merged.observations.items()
        for obs in obs_list
        if obs.primary not in affected and affected & set(obs.mix)
    ]
    assert kept_cross


def test_merge_takes_fresh_scan_seconds(small_training_data, merged):
    assert merged.scan_seconds != small_training_data.scan_seconds
    assert merged.config_seed == retrain_seed(
        small_training_data.config_seed, 0
    )


def test_scoped_retrain_is_deterministic(
    small_training_data, grown_catalog, merged
):
    again = scoped_retrain(
        small_training_data, grown_catalog, AFFECTED, round_ordinal=0
    )
    for t in AFFECTED:
        assert (
            again.profiles[t].isolated_latency
            == merged.profiles[t].isolated_latency
        )
    for mpl in merged.observations:
        assert [
            (o.primary, o.mix, o.latency)
            for o in again.observations[mpl]
        ] == [
            (o.primary, o.mix, o.latency)
            for o in merged.observations[mpl]
        ]


def test_later_round_draws_fresh_noise(
    small_training_data, grown_catalog, merged
):
    round_two = scoped_retrain(
        small_training_data, grown_catalog, AFFECTED, round_ordinal=1
    )
    affected = set(AFFECTED)

    def fresh_latencies(data):
        return [
            o.latency
            for obs_list in data.observations.values()
            for o in obs_list
            if o.primary in affected
        ]

    # Profiles are deterministic measurements, but the steady-state
    # mixes draw from the campaign RNG — a new round, a new stream.
    assert fresh_latencies(round_two) != fresh_latencies(merged)


def test_merge_rejects_missing_affected(small_training_data):
    with pytest.raises(LifecycleError):
        merge_training_data(
            small_training_data, small_training_data, affected=[999]
        )


def test_scoped_retrain_rejects_empty_and_unknown(
    small_training_data, grown_catalog
):
    with pytest.raises(LifecycleError):
        scoped_retrain(small_training_data, grown_catalog, [])
    with pytest.raises(LifecycleError):
        scoped_retrain(small_training_data, grown_catalog, [999])
