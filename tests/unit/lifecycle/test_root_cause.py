"""Drift root-cause wiring: monitor mix history, the manager's blame
analysis sidecar, and the ``lifecycle status`` surfacing path."""

import json

import pytest

from repro.cli import main
from repro.config import LifecycleConfig
from repro.core.contender import Contender
from repro.core.training import collect_training_data
from repro.lifecycle.manager import LifecycleManager
from repro.lifecycle.monitor import ResidualMonitor
from repro.lifecycle.promotion import PromotionManager
from repro.sampling.steady_state import SteadyStateConfig

FAST = LifecycleConfig(
    reference_window=4,
    test_window=2,
    min_samples=4,
    residual_window=16,
)
MIX = (26, 71)


# -- monitor mix history ----------------------------------------------


def test_monitor_records_distinct_recent_mixes():
    monitor = ResidualMonitor(FAST)
    monitor.ingest(26, predicted=100.0, observed=100.0, mix=(26, 71))
    monitor.ingest(26, predicted=100.0, observed=100.0, mix=(26, 65))
    monitor.ingest(26, predicted=100.0, observed=100.0, mix=(26, 71))
    # Dedup moves the repeated mix to the most-recent slot.
    assert monitor.recent_mixes(26) == [(26, 65), (26, 71)]
    assert monitor.recent_mixes(99) == []


def test_monitor_mix_history_is_bounded():
    monitor = ResidualMonitor(FAST)
    limit = monitor.MIX_HISTORY if hasattr(monitor, "MIX_HISTORY") else 8
    for other in range(100, 100 + limit + 4):
        monitor.ingest(26, predicted=1.0, observed=1.0, mix=(26, other))
    mixes = monitor.recent_mixes(26)
    assert len(mixes) == limit
    assert mixes[-1] == (26, 100 + limit + 3)  # newest kept


def _drift(monitor_or_manager, template_id, mix=None):
    observe = (
        monitor_or_manager.observe
        if hasattr(monitor_or_manager, "observe")
        else monitor_or_manager.ingest
    )
    for _ in range(6):
        observe(template_id, 100.0, 101.0, mix=mix)
    for _ in range(6):
        observe(template_id, 100.0, 160.0, mix=mix)


def test_snapshot_attaches_analyzer_root_cause():
    monitor = ResidualMonitor(FAST)
    monitor.set_root_cause_analyzer(
        lambda template_id, mixes: {"template_id": template_id,
                                    "mixes": [list(m) for m in mixes]}
    )
    _drift(monitor, 26, mix=MIX)
    doc = monitor.snapshot()
    assert doc["root_cause"]["26"]["mixes"] == [list(MIX)]


def test_snapshot_degrades_analyzer_failures():
    monitor = ResidualMonitor(FAST)

    def broken(template_id, mixes):
        raise RuntimeError("simulator exploded")

    monitor.set_root_cause_analyzer(broken)
    _drift(monitor, 26, mix=MIX)
    doc = monitor.snapshot()
    assert "simulator exploded" in doc["root_cause"]["26"]["error"]


def test_snapshot_skips_root_cause_without_mixes_or_analyzer():
    monitor = ResidualMonitor(FAST)
    _drift(monitor, 26)  # drifted, but no mix history
    monitor.set_root_cause_analyzer(lambda t, m: {"t": t})
    assert "root_cause" not in monitor.snapshot()
    bare = ResidualMonitor(FAST)  # no analyzer at all
    _drift(bare, 26, mix=MIX)
    assert "root_cause" not in bare.snapshot()


# -- manager sidecar ---------------------------------------------------


@pytest.fixture(scope="module")
def incumbent(small_catalog):
    data = collect_training_data(
        small_catalog.subset(MIX),
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    )
    return Contender(data)


def _manager(tmp_path, incumbent):
    promotion = PromotionManager(tmp_path / "model.json")
    promotion.initialize(incumbent)
    return LifecycleManager(
        monitor=ResidualMonitor(FAST), promotion=promotion, config=FAST
    )


def test_root_cause_writes_sidecar_and_names_co_runner(
    tmp_path, incumbent, small_catalog
):
    manager = _manager(tmp_path, incumbent)
    _drift(manager, 26, mix=MIX)
    doc = manager.root_cause(small_catalog)
    assert doc is not None
    analysis = doc["templates"]["26"]
    assert analysis["top"][0]["template_id"] == 71
    sidecar = manager.promotion.root_cause_path
    assert sidecar.exists()
    assert json.loads(sidecar.read_text()) == doc
    # The status doc picks the sidecar up generically.
    status = manager.promotion.status_doc()
    assert status["root_cause"] == doc


def test_root_cause_skips_templates_without_mixes(
    tmp_path, incumbent, small_catalog
):
    manager = _manager(tmp_path, incumbent)
    _drift(manager, 26)  # no mix attached
    assert manager.root_cause(small_catalog) is None
    assert not manager.promotion.root_cause_path.exists()


def test_root_cause_degrades_per_template_errors(
    tmp_path, incumbent, small_catalog
):
    manager = _manager(tmp_path, incumbent)
    # Observed under a mix the template is not part of: the analyzer
    # raises ExplainError, captured per template.
    _drift(manager, 26, mix=(65, 71))
    doc = manager.root_cause(small_catalog)
    assert "error" in doc["templates"]["26"]


def test_status_doc_degrades_malformed_sidecar(tmp_path, incumbent):
    manager = _manager(tmp_path, incumbent)
    manager.promotion.root_cause_path.write_text("{not json")
    status = manager.promotion.status_doc()
    assert "malformed sidecar" in status["root_cause"]["error"]


# -- regression: drift surfaces the blamed co-runner in the CLI --------


def test_lifecycle_status_surfaces_top_blamed_co_runner(
    tmp_path, incumbent, small_catalog, capsys
):
    state = tmp_path / "state"
    state.mkdir()
    promotion = PromotionManager(state / "model.json")
    promotion.initialize(incumbent)
    manager = LifecycleManager(
        monitor=ResidualMonitor(FAST), promotion=promotion, config=FAST
    )
    _drift(manager, 26, mix=MIX)
    manager.root_cause(small_catalog)

    assert main(
        ["lifecycle", "status", "--state-dir", str(state), "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    analysis = doc["root_cause"]["templates"]["26"]
    assert analysis["top"][0]["template_id"] == 71
    assert analysis["mixes"] == [list(MIX)]

    # The human-readable rendering names the same culprit.
    assert main(["lifecycle", "status", "--state-dir", str(state)]) == 0
    text = capsys.readouterr().out
    assert "root cause (latest drift reaction):" in text
    assert "t26 blames: t71" in text
