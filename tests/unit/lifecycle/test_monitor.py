"""ResidualMonitor: ingestion, verdict bookkeeping, reset, metrics."""

import pytest

from repro.config import LifecycleConfig
from repro.errors import LifecycleError
from repro.lifecycle.monitor import ResidualMonitor
from repro.obs.metrics import Registry

#: Small windows so tests drift within a handful of samples.
FAST = LifecycleConfig(
    reference_window=4,
    test_window=2,
    min_samples=4,
    residual_window=8,
)


def feed(monitor, template_id, residuals):
    """Ingest a residual stream as (predicted, observed) pairs with
    observed fixed at 1.0, so residual == 1 - predicted."""
    verdicts = []
    for r in residuals:
        verdict = monitor.ingest(template_id, predicted=1.0 - r, observed=1.0)
        if verdict is not None:
            verdicts.append(verdict)
    return verdicts


def test_ingest_computes_signed_relative_residual():
    monitor = ResidualMonitor(FAST)
    monitor.ingest(26, predicted=80.0, observed=100.0)
    state = monitor.snapshot()["templates"][0]
    assert state["template_id"] == 26
    assert state["window_mean_residual"] == pytest.approx(0.2)


def test_ingest_rejects_nonpositive_observed():
    monitor = ResidualMonitor(FAST)
    with pytest.raises(LifecycleError):
        monitor.ingest(26, predicted=1.0, observed=0.0)


def test_step_change_fires_and_latches_one_verdict_per_detector():
    monitor = ResidualMonitor(FAST)
    verdicts = feed(monitor, 26, [0.0] * 8 + [0.5] * 10)
    # Mean-shift fires first (priority), Page-Hinkley follows on a later
    # sample; each latched detector contributes at most one verdict.
    assert [v.detector for v in verdicts] == ["mean_shift", "page_hinkley"]
    assert monitor.drifted_templates() == [26]
    assert verdicts[0].sample_ordinal < verdicts[1].sample_ordinal


def test_both_detectors_see_every_sample():
    # If ingestion stopped at the first firing detector, Page-Hinkley
    # would miss that sample and fire later (or not at all) compared to
    # feeding it the identical stream directly.
    from repro.lifecycle.detectors import PageHinkleyDetector

    stream = [0.0] * 8 + [0.5] * 10
    monitor = ResidualMonitor(FAST)
    verdicts = feed(monitor, 26, stream)
    solo = PageHinkleyDetector(
        delta=FAST.ph_delta, lambda_=FAST.ph_lambda, min_samples=FAST.min_samples
    )
    solo_ordinal = None
    for i, r in enumerate(stream, start=1):
        if solo.update(r):
            solo_ordinal = i
            break
    ph = [v for v in verdicts if v.detector == "page_hinkley"]
    assert ph and ph[0].sample_ordinal == solo_ordinal


def test_templates_are_monitored_independently():
    monitor = ResidualMonitor(FAST)
    feed(monitor, 65, [0.0] * 8 + [0.5] * 6)
    feed(monitor, 22, [0.01, -0.01] * 10)
    assert monitor.drifted_templates() == [65]
    doc = monitor.snapshot()
    assert [s["template_id"] for s in doc["templates"]] == [22, 65]
    assert doc["drifted"] == [65]


def test_reset_rearms_but_keeps_verdict_history():
    monitor = ResidualMonitor(FAST)
    feed(monitor, 26, [0.0] * 8 + [0.5] * 6)
    fired = len(monitor.verdicts())
    assert fired >= 1
    monitor.reset([26])
    assert monitor.drifted_templates() == []
    assert len(monitor.verdicts()) == fired  # audit trail survives
    # Re-armed: the same step drifts again from a fresh reference.
    verdicts = feed(monitor, 26, [0.5] * 8 + [1.2] * 6)
    assert verdicts


def test_reset_without_ids_covers_all_templates():
    monitor = ResidualMonitor(FAST)
    for t in (22, 26):
        feed(monitor, t, [0.0] * 8 + [0.5] * 6)
    assert monitor.drifted_templates() == [22, 26]
    monitor.reset()
    assert monitor.drifted_templates() == []


def test_residual_window_is_bounded():
    monitor = ResidualMonitor(FAST)
    feed(monitor, 26, [0.01] * 50)
    state = monitor.snapshot()["templates"][0]
    assert state["observations"] == 50
    assert state["window_size"] == FAST.residual_window


def test_metrics_counters_and_published_gauges():
    registry = Registry()
    monitor = ResidualMonitor(FAST, metrics=registry)
    feed(monitor, 26, [0.0] * 8 + [0.5] * 6)
    monitor.publish()
    families = {f.name: f for f in registry.collect()}
    assert families["lifecycle_residuals_total"].value == 14
    verdicts = families["lifecycle_drift_verdicts_total"].children()
    assert {labels for labels, _ in verdicts} == {
        ("26", "mean_shift"),
        ("26", "page_hinkley"),
    }
    assert all(child.value == 1.0 for _, child in verdicts)
    window = families["lifecycle_residual_window_size"].children()
    assert window[0][0] == ("26",) and window[0][1].value > 0
    drifted = families["lifecycle_template_drifted"].children()
    assert drifted[0][1].value == 1.0
    assert families["lifecycle_templates_monitored"].value == 1.0


def test_snapshot_reports_config_and_last_verdict():
    monitor = ResidualMonitor(FAST)
    feed(monitor, 26, [0.0] * 8 + [0.5] * 6)
    doc = monitor.snapshot()
    assert doc["config"]["reference_window"] == FAST.reference_window
    state = doc["templates"][0]
    # Both detectors fired on this stream; last_verdict is the latest.
    assert state["last_verdict"]["detector"] == "page_hinkley"
    assert doc["verdicts"][0]["detector"] == "mean_shift"
    assert state["drifted"] is True
