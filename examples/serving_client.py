#!/usr/bin/env python3
"""Serving: the prediction service from a client's point of view.

Contender normally lives inside the process that needs predictions.
The serving subsystem (``repro.serving``) instead packs a trained model
into a versioned JSON artifact and serves it over HTTP, so schedulers,
admission controllers, and dashboards can share one warm model.

This example runs the whole loop in one process:

1. train a small campaign and pack it into a model artifact,
2. start the prediction server on an ephemeral localhost port,
3. predict known-template latencies over the wire (exactly equal to the
   in-process model, and cached on repetition),
4. onboard a *new* template remotely from its isolated profile,
5. drive SLA-aware admission control through the remote backend,
6. measure throughput with the built-in load generator.

Run:  python examples/serving_client.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.apps.admission import AdmissionController
from repro.config import ServingConfig
from repro.core import Contender, SpoilerMode, collect_training_data
from repro.core.isolated import perturb_profile
from repro.sampling import SteadyStateConfig
from repro.serving import (
    LoadGenerator,
    PredictionClient,
    PredictionServer,
    RemotePredictionBackend,
    mix_pool_workload,
    save_artifact,
)
from repro.workload import TemplateCatalog

TEMPLATES = (22, 26, 62, 65, 71)


def main() -> None:
    # --- 1. Train and pack.  `repro pack` does the same from the CLI.
    catalog = TemplateCatalog().subset(TEMPLATES)
    data = collect_training_data(
        catalog,
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    )
    contender = Contender(data)
    tmp = tempfile.TemporaryDirectory(prefix="serving-example-")
    artifact = Path(tmp.name) / "model.json"
    info = save_artifact(contender, artifact)
    print(f"packed model {info.version} ({artifact.stat().st_size:,} bytes)")

    # --- 2. Serve it.  `repro serve model.json` does this from the CLI;
    # port 0 picks a free ephemeral port.
    config = ServingConfig(port=0, workers=2)
    with PredictionServer.from_artifact(artifact, config=config) as server:
        print(f"serving on http://{server.host}:{server.port}\n")
        with PredictionClient(server.host, server.port) as client:

            # --- 3. Known-template predictions over the wire.
            print("known-template predictions (served == in-process):")
            for primary, mix in [(26, (26, 65)), (22, (22, 71)), (62, (62, 26))]:
                served = client.predict(primary, mix)
                direct = contender.predict_known(primary, mix)
                assert served.latency == direct
                again = client.predict(primary, mix)
                print(
                    f"  T{primary} in {mix}: {served.latency:7.1f} s "
                    f"(model {served.model_version}, "
                    f"repeat cached={again.cached})"
                )

            # --- 4. Onboard a new template remotely: ship its isolated
            # profile, get a prediction back — zero concurrent samples.
            rng = np.random.default_rng(7)
            profile = perturb_profile(data.profile(71), rng)
            result = client.predict_new(
                profile, (71, 26), spoiler_mode=SpoilerMode.KNN
            )
            print(
                f"\nnew template (T71's profile, perturbed) in (71, 26): "
                f"{result.latency:.1f} s via KNN spoiler"
            )

            # --- 5. Admission control against the remote model: the same
            # AdmissionController runs embedded or over HTTP.
            controller = AdmissionController(
                RemotePredictionBackend(client), sla_factor=1.6, max_mpl=4
            )
            decision = controller.check(running=(26,), candidate=65)
            verdict = "admit" if decision.admitted else "reject"
            print(
                f"admission (26,)+65 @ SLA 1.6x: {verdict} "
                f"(worst ratio {decision.worst_ratio:.2f}x isolated)"
            )

        # --- 6. Throughput: repeated-mix workload, 8 concurrent clients.
        workload = mix_pool_workload(
            contender.template_ids, requests=400, pool_size=12, seed=3
        )
        report = LoadGenerator(server.host, server.port, submitters=8).run(
            workload
        )
        print(f"\nload test ({len(workload)} requests, 8 submitters):")
        print(report.format_table())
    tmp.cleanup()


if __name__ == "__main__":
    main()
