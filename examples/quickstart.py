#!/usr/bin/env python3
"""Quickstart: predict concurrent query latency with Contender.

Walks the whole public API in one sitting:

1. build the simulated PostgreSQL/TPC-DS testbed,
2. collect the training campaign (isolated runs, spoiler runs,
   steady-state mix samples),
3. fit Contender,
4. predict the latency of a *known* template in an unseen mix,
5. predict the latency of a *new* template the framework has never
   sampled under concurrency — using only one isolated run.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Contender,
    SpoilerMode,
    collect_training_data,
    measure_template_profile,
)
from repro.sampling import run_steady_state
from repro.workload import TemplateCatalog


def main() -> None:
    # --- 1. The testbed: a simulated 8-core/8 GB PostgreSQL host with a
    # 100 GB TPC-DS-like database and 25 query templates.
    catalog = TemplateCatalog()
    print("Workload:")
    print(catalog.describe())

    # --- 2. Train on a *subset* pretending template 71 does not exist
    # yet; it will arrive later as the "new" ad-hoc template.
    new_template = 71
    known = [t for t in catalog.template_ids if t != new_template]
    training_catalog = catalog.subset(known)
    print("\nCollecting training campaign (all pairs at MPL 2)...")
    data = collect_training_data(training_catalog, mpls=(2,), lhs_runs_per_mpl=1)

    # --- 3. Fit.
    contender = Contender(data)

    # --- 4. Known template in a fresh mix.
    primary, buddy = 26, 65
    predicted = contender.predict_known(primary, (primary, buddy))
    observed = run_steady_state(catalog, (primary, buddy)).mean_latency(primary)
    isolated = data.profile(primary).isolated_latency
    print(f"\nKnown template T{primary} running with T{buddy}:")
    print(f"  isolated latency : {isolated:8.1f} s")
    print(f"  predicted        : {predicted:8.1f} s")
    print(f"  observed         : {observed:8.1f} s")
    print(f"  relative error   : {abs(observed - predicted) / observed:8.1%}")

    # --- 5. A new template arrives.  One isolated run is all we sample.
    profile = measure_template_profile(catalog, new_template)
    mix = (new_template, 26)
    predicted = contender.predict_new(
        profile, mix, spoiler_mode=SpoilerMode.KNN
    )
    observed = run_steady_state(catalog, mix).mean_latency(new_template)
    print(f"\nNew template T{new_template} (never sampled under concurrency)")
    print(f"running with T{mix[1]}:")
    print(f"  isolated latency : {profile.isolated_latency:8.1f} s")
    print(f"  predicted        : {predicted:8.1f} s")
    print(f"  observed         : {observed:8.1f} s")
    print(f"  relative error   : {abs(observed - predicted) / observed:8.1%}")


if __name__ == "__main__":
    main()
