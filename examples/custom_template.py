#!/usr/bin/env python3
"""Bring your own query: custom templates through the whole pipeline.

A downstream user's queries are not TPC-DS.  This example registers a
user-defined template from an EXPLAIN-style plan text, onboards it with
one isolated run, and predicts its latency inside live mixes — the
complete ad-hoc story on a query the library has never seen.

Run:  python examples/custom_template.py
"""

from repro.core import (
    Contender,
    SpoilerMode,
    collect_training_data,
    measure_template_profile,
)
from repro.sampling import run_steady_state
from repro.workload import TemplateCatalog
from repro.workload.custom import catalog_with_templates, template_from_plan_text

#: The user's report: web revenue by item class for a narrow slice,
#: written in the EXPLAIN-style plan format of repro.engine.plan_parser.
PLAN_TEXT = """\
Sort (cpu=0.5)
  HashAggregate (groups=8000 width=40)
    HashJoin (sel=0.85 width=40)
      HashJoin (sel=0.9 width=48)
        SeqScan web_sales (sel=0.12 cpu=0.6 width=48)
        SeqScan item
      SeqScan date_dim
"""

TEMPLATE_ID = 500


def main() -> None:
    base = TemplateCatalog()
    spec = template_from_plan_text(
        TEMPLATE_ID, "web revenue by item class (user query)", PLAN_TEXT
    )
    catalog = catalog_with_templates(base, [spec])
    print("registered custom template:")
    print(catalog.canonical_plan(TEMPLATE_ID).describe())

    print("\nTraining on the built-in workload only (MPL 2)...")
    data = collect_training_data(
        catalog.subset(base.template_ids), mpls=(2,), lhs_runs_per_mpl=1
    )
    contender = Contender(data)

    # Constant-time onboarding: one isolated run of the user query.
    profile = measure_template_profile(catalog, TEMPLATE_ID)
    print(
        f"\nisolated run: {profile.isolated_latency:.1f}s, "
        f"{profile.io_fraction:.0%} I/O, fact scans: "
        f"{sorted(profile.fact_scans)}"
    )

    print(f"\n{'mix':<14} {'predicted (s)':>14} {'observed (s)':>13} {'error':>7}")
    for buddy in (26, 65, 71):
        mix = (TEMPLATE_ID, buddy)
        predicted = contender.predict_new(
            profile, mix, spoiler_mode=SpoilerMode.KNN
        )
        observed = run_steady_state(catalog, mix).mean_latency(TEMPLATE_ID)
        error = abs(observed - predicted) / observed
        print(f"{str(mix):<14} {predicted:>14.1f} {observed:>13.1f} {error:>6.1%}")


if __name__ == "__main__":
    main()
