#!/usr/bin/env python3
"""Query-to-server assignment with CQPP (the paper's cloud application).

"With CQPP, cloud-based database applications would be able to make
more informed resource provisioning and query-to-server assignment
plans."  (Sec. 1)

Six tenant queries must be placed on two identical database servers,
three per server (MPL 3 each).  We compare:

* round-robin  — blind placement;
* contender    — enumerate the balanced placements and pick the one
                 minimizing the worst predicted per-query slowdown.

Both placements are then executed on the simulator.

Run:  python examples/cloud_provisioning.py
"""

import statistics
from typing import List, Sequence, Tuple

from repro.apps.placement import balanced_placement, predicted_slowdowns
from repro.core import Contender, collect_training_data
from repro.sampling import SteadyStateConfig, run_steady_state
from repro.workload import TemplateCatalog

TENANTS = [26, 33, 71, 62, 65, 90]
PER_SERVER = 3


def best_placement(
    contender: Contender, tenants: Sequence[int]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Balanced 2-server placement minimizing the worst slowdown."""
    return balanced_placement(contender, tenants, num_servers=2)


def measure_placement(
    catalog: TemplateCatalog,
    placement: Tuple[Tuple[int, ...], Tuple[int, ...]],
) -> Tuple[float, float]:
    """(worst, mean) measured slowdown across both servers."""
    steady = SteadyStateConfig(samples_per_stream=2)
    slowdowns = []
    for server_mix in placement:
        result = run_steady_state(catalog, server_mix, config=steady)
        for tenant in server_mix:
            observed = result.mean_latency(tenant)
            isolated = catalog.run_isolated(tenant).latency
            slowdowns.append(observed / isolated)
    return max(slowdowns), statistics.fmean(slowdowns)


def main() -> None:
    catalog = TemplateCatalog()
    print("Collecting training campaign (MPL 2-3)...")
    data = collect_training_data(catalog, mpls=(2, 3), lhs_runs_per_mpl=2)
    contender = Contender(data)

    round_robin = (tuple(TENANTS[0::2]), tuple(TENANTS[1::2]))
    smart = best_placement(contender, TENANTS)

    print(f"\ntenants            : {TENANTS}")
    print(f"round-robin servers: {round_robin}")
    print(f"contender servers  : {smart}")

    for name, placement in (("round-robin", round_robin), ("contender", smart)):
        worst, mean = measure_placement(catalog, placement)
        print(
            f"{name:<12} measured slowdown: worst {worst:5.2f}x  "
            f"mean {mean:5.2f}x"
        )


if __name__ == "__main__":
    main()
