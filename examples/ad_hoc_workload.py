#!/usr/bin/env python3
"""Ad-hoc (dynamic) workloads: Contender's signature capability.

Exploration-oriented applications keep producing query templates the
system has never seen.  Prior CQPP work must re-run a full sampling
campaign per new template; Contender needs a single isolated run.

This example simulates an evolving workload: a system trained on 20
templates receives the remaining 5 as "ad-hoc" arrivals, predicts each
one's latency inside live mixes with constant-time sampling (KNN
spoiler), and reports accuracy and onboarding cost side by side.

Run:  python examples/ad_hoc_workload.py
"""

import statistics

from repro.core import (
    Contender,
    SpoilerMode,
    collect_training_data,
    measure_template_profile,
)
from repro.sampling import run_steady_state
from repro.workload import TemplateCatalog

AD_HOC = [17, 40, 60, 70, 90]


def main() -> None:
    catalog = TemplateCatalog()
    known = [t for t in catalog.template_ids if t not in AD_HOC]
    print(f"pre-existing workload: {known}")
    print(f"ad-hoc arrivals      : {AD_HOC}")

    print("\nTraining on the pre-existing workload only (MPL 2-3)...")
    data = collect_training_data(
        catalog.subset(known), mpls=(2, 3), lhs_runs_per_mpl=2
    )
    contender = Contender(data)

    print(f"\n{'template':>8} {'sampling cost':>14} {'pred (s)':>9} "
          f"{'obs (s)':>9} {'error':>7}")
    errors = []
    for template in AD_HOC:
        # Constant-time onboarding: ONE isolated run.
        profile = measure_template_profile(catalog, template)
        onboarding = profile.isolated_latency

        # Predict inside a live mix with two known templates.
        mix = (template, known[0], known[5])
        predicted = contender.predict_new(
            profile, mix, spoiler_mode=SpoilerMode.KNN
        )
        observed = run_steady_state(catalog, mix).mean_latency(template)
        error = abs(observed - predicted) / observed
        errors.append(error)
        print(
            f"{template:>8} {onboarding:>12.0f} s {predicted:>9.1f} "
            f"{observed:>9.1f} {error:>6.1%}"
        )

    print(f"\nmean relative error over ad-hoc templates: "
          f"{statistics.fmean(errors):.1%}")
    print("each template cost exactly one isolated run to onboard —")
    print("prior work would have re-sampled mixes against all 20 templates.")


if __name__ == "__main__":
    main()
