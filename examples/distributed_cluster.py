#!/usr/bin/env python3
"""Distributed CQPP on a shared-nothing cluster (future work #3).

The workload's fact tables are hash-partitioned over N hosts and every
query runs as N co-partitioned sub-plans plus an assembly step.  A
Contender trained on just ONE host's partition predicts whole-cluster
latencies: per-host prediction x straggler allowance + network assembly.

The example sizes a cluster: for each candidate N it predicts the
latency of a reporting mix and picks the smallest cluster meeting a
deadline, then verifies the choice against full cluster simulations.

Run:  python examples/distributed_cluster.py
"""

from repro.core.distributed import DistributedContender
from repro.engine.cluster import ClusterSpec, run_distributed_steady_state
from repro.sampling import SteadyStateConfig
from repro.workload import TemplateCatalog

MIX = (71, 26)  # the long channel report next to a light rollup
PRIMARY = 71
DEADLINE_S = 300.0
CANDIDATES = (1, 2, 3, 4, 6)


def main() -> None:
    catalog = TemplateCatalog()
    steady = SteadyStateConfig(samples_per_stream=3)

    print(f"mix {MIX}, primary T{PRIMARY}, deadline {DEADLINE_S:.0f}s")
    print(f"{'hosts':>5} {'predicted (s)':>14} {'observed (s)':>13} "
          f"{'meets deadline':>15}")

    chosen = None
    for hosts in CANDIDATES:
        spec = ClusterSpec(num_hosts=hosts, host_config=catalog.config)
        predictor = DistributedContender(catalog, spec).fit(
            mpls=(2,), steady_config=steady
        )
        predicted = predictor.predict(PRIMARY, MIX).total
        observed = run_distributed_steady_state(
            catalog, MIX, spec, steady_config=steady
        ).latency(PRIMARY)
        verdict = "yes" if predicted <= DEADLINE_S else "no"
        if chosen is None and predicted <= DEADLINE_S:
            chosen = hosts
        print(f"{hosts:>5} {predicted:>14.1f} {observed:>13.1f} {verdict:>15}")

    if chosen is None:
        print("\nno candidate cluster meets the deadline")
    else:
        print(f"\nprovision {chosen} hosts: smallest cluster predicted to "
              f"meet the {DEADLINE_S:.0f}s deadline")
    print("(training sampled ONE host's partition; the other hosts were "
          "never measured)")


if __name__ == "__main__":
    main()
