#!/usr/bin/env python3
"""Batch scheduling with CQPP (the paper's first motivating application).

"Accurate CQPP ... would allow system administrators to make better
scheduling decisions for large query batches, reducing the completion
time of individual queries and that of the entire batch."  (Sec. 1)

We run a batch of analytical queries at MPL 2 two ways:

* naive      — pair queries in arrival order;
* contender  — greedily pair each query with the partner whose mix
               minimizes the *predicted* combined slowdown.

Both schedules are then executed on the simulator, and the measured
batch makespans compared.

Run:  python examples/batch_scheduling.py
"""

from typing import List, Sequence, Tuple

from repro.apps.scheduling import greedy_pairing
from repro.core import Contender, collect_training_data
from repro.sampling import run_steady_state, SteadyStateConfig
from repro.workload import TemplateCatalog

#: The batch: a shuffled workload slice with deliberately bad naive
#: pairings (disjoint I/O-heavy queries back to back).
BATCH = [26, 33, 61, 71, 82, 22, 62, 65]


def pair_naively(batch: Sequence[int]) -> List[Tuple[int, int]]:
    """Pair queries in arrival order."""
    return [(batch[i], batch[i + 1]) for i in range(0, len(batch), 2)]


def pair_with_contender(
    contender: Contender, batch: Sequence[int]
) -> List[Tuple[int, int]]:
    """Greedy pairing by predicted combined cost (repro.apps)."""
    return greedy_pairing(contender, batch)


def execute_schedule(
    catalog: TemplateCatalog, pairs: Sequence[Tuple[int, int]]
) -> float:
    """Run the pairs back to back; return the measured makespan."""
    steady = SteadyStateConfig(samples_per_stream=1, warmup=0, cooldown=0)
    makespan = 0.0
    for pair in pairs:
        result = run_steady_state(catalog, pair, config=steady)
        makespan += max(
            stats.end_time for slot in result.samples for stats in slot
        )
    return makespan


def main() -> None:
    catalog = TemplateCatalog()
    print("Collecting training campaign...")
    data = collect_training_data(catalog, mpls=(2,), lhs_runs_per_mpl=1)
    contender = Contender(data)

    naive = pair_naively(BATCH)
    smart = pair_with_contender(contender, BATCH)

    print(f"\nBatch: {BATCH}")
    print(f"naive pairs     : {naive}")
    print(f"contender pairs : {smart}")

    naive_makespan = execute_schedule(catalog, naive)
    smart_makespan = execute_schedule(catalog, smart)
    print(f"\nnaive schedule makespan     : {naive_makespan:9.1f} s")
    print(f"contender schedule makespan : {smart_makespan:9.1f} s")
    saving = 1.0 - smart_makespan / naive_makespan
    print(f"saving                      : {saving:9.1%}")


if __name__ == "__main__":
    main()
