#!/usr/bin/env python3
"""Mix-aware completion-time estimates (the progress-indicator use case).

"High quality predictions would also pave the way for more refined
query progress indicators by analyzing in real time how resource
availability affects a query's estimated completion time."  (Sec. 1)

A long analytical query runs while the concurrent mix around it
changes.  A naive progress indicator assumes isolated speed; a
Contender-backed one re-estimates the remaining time from the current
mix's CQI whenever the mix changes.

Run:  python examples/progress_estimation.py
"""

from repro.apps.progress import ProgressEstimator
from repro.core import Contender, collect_training_data
from repro.workload import TemplateCatalog

PRIMARY = 71  # a long, I/O-bound query
PHASES = [
    ("alone", (PRIMARY,)),
    ("light CPU-bound company", (PRIMARY, 65)),
    ("heavy disjoint I/O", (PRIMARY, 17, 25)),
    ("shared-scan company", (PRIMARY, 33)),
]


def main() -> None:
    catalog = TemplateCatalog()
    print("Collecting training campaign (MPL 2-3)...")
    data = collect_training_data(catalog, mpls=(2, 3), lhs_runs_per_mpl=2)
    contender = Contender(data)

    estimator = ProgressEstimator(contender)
    isolated = data.profile(PRIMARY).isolated_latency
    print(f"\nprimary: T{PRIMARY}, isolated latency {isolated:.0f}s")
    print(f"{'mix phase':<26} {'est. total (s)':>14} {'vs isolated':>12}")

    for label, mix in PHASES:
        estimate = estimator.estimate(PRIMARY, mix, fraction_done=0.0)
        total = estimate.total_seconds
        print(f"{label:<26} {total:>14.1f} {total / isolated:>11.2f}x")

    print(
        "\nA fixed-speed progress bar would report the 'alone' estimate in "
        "every phase; the CQI-aware estimate tracks the changing mix."
    )


if __name__ == "__main__":
    main()
