#!/usr/bin/env python3
"""SLA-aware admission control built on Contender.

A database server admits queued analytical queries up to some
multiprogramming level.  A fixed-MPL policy admits blindly; a
Contender-backed policy simulates the admission first: it only admits
the next query if the *predicted* latency of every query in the
resulting mix stays within an SLA multiple of its isolated latency.

Both policies process the same Zipf-skewed queue; we compare SLA
violations and throughput measured on the simulator.

Run:  python examples/admission_control.py
"""

import statistics
from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.admission import AdmissionController
from repro.core import Contender, collect_training_data
from repro.sampling import SteadyStateConfig, run_steady_state
from repro.workload import TemplateCatalog, draw_templates, zipf_weights

#: Admit while predicted latency <= SLA_FACTOR * isolated latency.
SLA_FACTOR = 1.6
MAX_MPL = 4
QUEUE_LENGTH = 16


def plan_admissions(
    contender: Contender, queue: Sequence[int], policy: str
) -> List[Tuple[int, ...]]:
    """Group the queue into consecutive admission batches.

    ``fixed`` packs MAX_MPL queries per batch; ``contender`` delegates
    to :class:`repro.apps.admission.AdmissionController`.
    """
    if policy == "contender":
        controller = AdmissionController(
            contender, sla_factor=SLA_FACTOR, max_mpl=MAX_MPL
        )
        return controller.plan_batches(queue)
    batches: List[Tuple[int, ...]] = []
    pending = list(queue)
    while pending:
        batch = [pending.pop(0)]
        while pending and len(batch) < MAX_MPL:
            batch.append(pending.pop(0))
        batches.append(tuple(batch))
    return batches


def execute(catalog: TemplateCatalog, batches: Sequence[Tuple[int, ...]]):
    """Run the batches; return (violations, total queries, makespan)."""
    steady = SteadyStateConfig(samples_per_stream=1, warmup=0, cooldown=0)
    violations = 0
    total = 0
    makespan = 0.0
    for batch in batches:
        if len(batch) == 1:
            stats = catalog.run_isolated(batch[0])
            makespan += stats.latency
            total += 1
            continue
        result = run_steady_state(catalog, batch, config=steady)
        makespan += max(
            s.end_time for slot in result.samples for s in slot
        )
        for template in batch:
            observed = result.mean_latency(template)
            isolated = catalog.run_isolated(template).latency
            total += 1
            if observed > SLA_FACTOR * isolated:
                violations += 1
    return violations, total, makespan


def main() -> None:
    catalog = TemplateCatalog()
    print("Collecting training campaign (MPL 2-4)...")
    data = collect_training_data(catalog, mpls=(2, 3, 4), lhs_runs_per_mpl=2)
    contender = Contender(data)

    rng = np.random.default_rng(7)
    templates = list(catalog.template_ids)
    queue = draw_templates(
        templates, QUEUE_LENGTH, rng, weights=zipf_weights(len(templates), 0.8)
    )
    print(f"\nqueue ({QUEUE_LENGTH} queries, Zipf-skewed): {queue}")
    print(f"SLA: latency <= {SLA_FACTOR}x isolated, MPL cap {MAX_MPL}")

    for policy in ("fixed", "contender"):
        batches = plan_admissions(contender, queue, policy)
        violations, total, makespan = execute(catalog, batches)
        mean_mpl = statistics.fmean(len(b) for b in batches)
        print(
            f"\n{policy:<10} batches={len(batches)} (mean MPL {mean_mpl:.1f})"
            f"  SLA violations: {violations}/{total}"
            f"  makespan: {makespan:,.0f}s"
        )


if __name__ == "__main__":
    main()
