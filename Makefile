PYTHON ?= python

.PHONY: install test serve-smoke bench report templates examples clean

install:
	pip install -e . --no-build-isolation

test: serve-smoke
	$(PYTHON) -m pytest tests/

serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.experiments.report > EXPERIMENTS.md

templates:
	$(PYTHON) -m repro.workload.reference > docs/TEMPLATES.md

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex"; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf benchmarks/.cache .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
