PYTHON ?= python

.PHONY: install test test-fast coverage serve-smoke serve-bench lifecycle-smoke sched-smoke eval-smoke explain-smoke bench bench-check profile-campaign profile-campaign-batched report templates examples clean

install:
	pip install -e . --no-build-isolation

test: serve-smoke
	$(PYTHON) -m pytest tests/

# The sub-minute tier: unit tests only (markers are applied per
# directory in tests/conftest.py, so -m unit == tests/unit/).
test-fast:
	$(PYTHON) -m pytest -m unit

# Line-coverage gate over the observability and serving layers.
# Dependency-free (sys.settrace); uses pytest-cov instead if you
# installed the `cov` extra and prefer its reports.
coverage:
	$(PYTHON) scripts/coverage_check.py

serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# Multi-worker serving throughput: the 10x gate (predict-batch on the
# pre-fork tier vs the single-process plain-predict ceiling) plus the
# p99 ceiling, without the rest of the bench suite.
serve-bench:
	$(PYTHON) scripts/serve_bench.py

# The growth-injection e2e demo: drift detected, scoped retrain,
# shadow-gated promotion, accuracy restored — deterministically.
lifecycle-smoke:
	$(PYTHON) -m pytest tests/integration/test_lifecycle_e2e.py -q

# Queue-replay demo: three trace families x three policies, twice,
# asserting completion and bit-reproducibility from the seeds.
sched-smoke:
	$(PYTHON) scripts/sched_smoke.py

# Ranking-quality demo: small scenario matrix scored by both backends,
# twice, asserting the 0.5 accuracy floor and bit-reproducibility.
eval-smoke:
	$(PYTHON) scripts/eval_smoke.py

# Blame-attribution demo: a small mix explained twice, asserting the
# conservation invariant and bit-reproducible blame matrices.
explain-smoke:
	$(PYTHON) scripts/explain_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-max-time=0.5 --benchmark-min-rounds=1

bench-check:
	$(PYTHON) scripts/bench_check.py

profile-campaign:
	$(PYTHON) scripts/profile_campaign.py

profile-campaign-batched:
	$(PYTHON) scripts/profile_campaign.py --batched

report:
	$(PYTHON) -m repro.experiments.report > EXPERIMENTS.md

templates:
	$(PYTHON) -m repro.workload.reference > docs/TEMPLATES.md

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex"; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf benchmarks/.cache .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
