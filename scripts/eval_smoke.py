#!/usr/bin/env python
"""Evaluation smoke: a small scenario matrix, twice, from seed.

Runs the ``repro eval compare`` path end to end — in-process campaign,
candidate-set expansion, simulated ground truth, both backends scored —
and checks the report clears the ranking floor (pairwise accuracy above
the 0.5 chance line for the fitted QS path).  Everything derives from
one seed, so a second run must reproduce the first document
bit-for-bit; that comparison is the point of the smoke.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.training import collect_training_data
from repro.eval import default_matrix, named_backends, run_matrix
from repro.sampling.steady_state import SteadyStateConfig
from repro.workload.catalog import TemplateCatalog

TEMPLATES = (22, 26, 32, 62, 65, 71, 82)
SEED = 7
STEADY = SteadyStateConfig(samples_per_stream=3)
MATRIX = default_matrix(mpls=(2,), window=3, sets=2)


def run_once():
    catalog = TemplateCatalog().subset(TEMPLATES)
    data = collect_training_data(
        catalog,
        mpls=(2,),
        lhs_runs_per_mpl=2,
        steady_config=STEADY,
    )
    return run_matrix(
        catalog,
        named_backends(data),
        matrix=MATRIX,
        seed=SEED,
        steady=STEADY,
    )


def main() -> int:
    first = run_once()
    for report in first.reports:
        print(f"\n== {report.backend} ==")
        print(report.format_table())
        assert len(report.scenarios) == len(MATRIX), "missing a scenario"
    qs = first.report_for("qs")
    assert qs.pairwise_accuracy > 0.5, (
        f"qs pairwise accuracy {qs.pairwise_accuracy:.3f} at chance level"
    )
    second = run_once()
    assert first.to_doc() == second.to_doc(), "matrix not reproducible"
    print(
        f"\neval smoke OK: {len(MATRIX)} scenarios x "
        f"{len(first.reports)} backends over {first.mixes} mixes, "
        "reproducible"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
