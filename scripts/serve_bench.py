#!/usr/bin/env python
"""Serving-tier throughput gate, standalone.

Runs only the serving metrics from ``scripts/bench_check.py`` — the
multi-worker predict-batch throughput against the live-measured
single-process plain-predict ceiling (>= 10x floor), and the plain
predict p99 ceiling — so `make serve-bench` answers "did I break the
serving tier?" in under a minute.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "scripts"))

from bench_check import _serving_throughput_metrics  # noqa: E402

P99_CEILING_MS = 50.0
SPEEDUP_FLOOR = 10.0


def main() -> int:
    print("measuring serving throughput (interleaved rounds)...")
    serving = _serving_throughput_metrics()
    floor = SPEEDUP_FLOOR * serving["ceiling_qps"]
    rows = [
        ("single-process ceiling", f"{serving['ceiling_qps']:,.0f} predictions/sec"),
        ("multi-worker batched", f"{serving['predictions_per_sec']:,.0f} predictions/sec"),
        ("speedup", f"{serving['speedup']:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)"),
        ("plain predict p99", f"{serving['p99_ms']:.2f} ms (ceiling {P99_CEILING_MS:.0f} ms)"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")

    failures = []
    if serving["predictions_per_sec"] < floor:
        failures.append(
            f"throughput {serving['predictions_per_sec']:,.0f}/s is below "
            f"the 10x floor ({floor:,.0f}/s)"
        )
    if serving["p99_ms"] > P99_CEILING_MS:
        failures.append(
            f"p99 {serving['p99_ms']:.2f} ms exceeds {P99_CEILING_MS:.0f} ms"
        )
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print("\nserving gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
