#!/usr/bin/env python
"""Scheduling smoke: three trace families x three policies, from seed.

Runs the ``repro sched compare`` path end to end — in-process campaign,
trace generation, queue replay under FIFO / gated / predictive — and
checks the report is complete.  Everything derives from fixed seeds, so
two consecutive runs must agree; the second run's report is compared to
the first to prove it.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.apps.admission import ContenderBackend
from repro.core.contender import Contender
from repro.core.training import collect_training_data
from repro.sampling.steady_state import SteadyStateConfig
from repro.sched import (
    TemplateDistribution,
    TraceConfig,
    compare_policies,
    generate_trace,
    make_policy,
)
from repro.sched.traces import TRACE_KINDS
from repro.workload.catalog import TemplateCatalog

TEMPLATES = (22, 26, 32, 62, 65, 71, 82)
MAX_MPL = 3
COUNT = 12


def run_all():
    catalog = TemplateCatalog().subset(TEMPLATES)
    data = collect_training_data(
        catalog,
        mpls=(2, 3),
        lhs_runs_per_mpl=2,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    )
    backend = ContenderBackend(Contender(data))
    dist = TemplateDistribution.uniform(TEMPLATES)
    policies = [
        make_policy("fifo"),
        make_policy("gated", backend, sla_factor=2.5, max_mpl=MAX_MPL),
        make_policy("predictive", backend, max_mpl=MAX_MPL),
    ]
    reports = []
    for kind in TRACE_KINDS:
        trace = generate_trace(
            TraceConfig(
                kind=kind,
                templates=dist,
                rate=1.0 / 120.0,
                count=COUNT,
                seed=0,
            )
        )
        reports.append(
            compare_policies(trace, policies, catalog, max_mpl=MAX_MPL)
        )
    return reports


def main() -> int:
    first = run_all()
    for report in first:
        print(f"\n== {report.trace_kind} ==")
        print(report.format_table())
        assert len(report.results) == 3, "missing a policy"
        for result in report.results:
            assert len(result.outcomes) == COUNT, (
                f"{result.policy} on {report.trace_kind}: "
                f"{len(result.outcomes)} of {COUNT} completed"
            )
    second = run_all()
    for a, b in zip(first, second):
        assert a.to_doc() == b.to_doc(), (
            f"{a.trace_kind} replay not reproducible"
        )
    print("\nsched smoke OK: 3 trace families x 3 policies, reproducible")
    return 0


if __name__ == "__main__":
    sys.exit(main())
