#!/usr/bin/env python
"""Benchmark regression gate: compare hot-path throughput to a baseline.

Measures the metrics that PRs most easily regress by accident — engine
events/sec (both engines, so the virtual-time speedup itself is guarded)
and the end-to-end serial campaign wall-clock — and compares them to the
committed ``BENCH_baseline.json``.  Any metric more than 20% worse than
baseline fails the check.

Workflow:

    make bench-check                      # gate against the baseline
    python scripts/bench_check.py --update  # re-measure and rewrite it

The baseline is machine-relative: after changing hardware (or after an
*intentional* performance change), rerun with ``--update`` and commit
the new file alongside the change that justified it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import numpy as np

from repro.config import SimulationConfig, SystemConfig
from repro.core.training import collect_training_data
from repro.engine.executor import ConcurrentExecutor
from repro.engine.profile import ResourceProfile
from repro.obs.metrics import Registry
from repro.sampling.steady_state import SteadyStateConfig
from repro.workload.catalog import TemplateCatalog

BASELINE_PATH = REPO / "BENCH_baseline.json"
TOLERANCE = 0.20
SMALL_TEMPLATES = (26, 62, 71, 22, 65, 17)


@dataclass
class _ListStream:
    """A stream over pre-generated profiles (no plan compilation in the
    timed region — same isolation as benchmarks/test_engine_throughput)."""

    profiles: List[ResourceProfile]
    name: str

    def next_profile(self, now, completed):
        if completed < len(self.profiles):
            return self.profiles[completed]
        return None


def _engine_workload(catalog: TemplateCatalog, mpl: int):
    rng = np.random.default_rng(0)
    ids = list(catalog.template_ids)
    mix = [ids[i % len(ids)] for i in range(mpl)]
    return [[catalog.profile(t, rng) for _ in range(20)] for t in mix]


def _events_per_sec(engine: str, per_stream, repeats: int = 15) -> float:
    # Individual runs are a few milliseconds, so scheduler noise swamps
    # any single timing; take the best of many (first run is warmup).
    config = SystemConfig(simulation=SimulationConfig(engine=engine))
    best = float("inf")
    events = 0
    for i in range(repeats + 1):
        executor = ConcurrentExecutor(config, rng=np.random.default_rng(1))
        streams = [
            _ListStream(profiles=ps, name=f"s{i}")
            for i, ps in enumerate(per_stream)
        ]
        start = time.perf_counter()
        result = executor.run(streams)
        elapsed = time.perf_counter() - start
        if i > 0:
            best = min(best, elapsed)
        events = result.events
    return events / best


def _batched_metrics(batch: int = 2048, mpl: int = 8) -> Dict[str, float]:
    """Batched-engine throughput on a spoiler-style campaign workload.

    The workload is the campaign's hot shape: one single-shot primary
    against ``mpl - 1`` background readers.  The scalar side runs a few
    representative runs through one :class:`ConcurrentExecutor` each;
    the batched side advances *batch* such runs in lockstep, and both
    normalize to events/sec, so the ratio is the per-run speedup of
    feeding the campaign through ``run_batch``.
    """
    from repro.engine.batched import RunSpec, run_batch
    from repro.engine.executor import SingleShotStream
    from repro.engine.spoiler import Spoiler

    catalog = TemplateCatalog()
    config_vt = SystemConfig(simulation=SimulationConfig(engine="virtual_time"))
    config_bt = SystemConfig(simulation=SimulationConfig(engine="batched"))
    ids = catalog.template_ids[:8]
    spoiler = Spoiler(mpl=mpl, ram_bytes=config_vt.hardware.ram_bytes)
    readers = spoiler.readers()
    profiles = {
        t: catalog.profile(t, np.random.default_rng(j))
        for j, t in enumerate(ids)
    }

    specs = [
        RunSpec(
            streams=[
                SingleShotStream(profiles[ids[k % len(ids)]], name="primary")
            ],
            background=readers,
            pinned_bytes=spoiler.pinned_bytes,
            rng=np.random.default_rng(k % len(ids)),
        )
        for k in range(batch)
    ]
    # Scalar and batched timings are interleaved per round and the
    # speedup taken as the best per-round ratio: a machine-load spike
    # then skews one round's ratio, not the scalar numerator of one
    # measurement against the batched denominator of another.
    best_eps = 0.0
    best_ratio = 0.0
    for i in range(7):
        start = time.perf_counter()
        events_vt = 0
        for j, t in enumerate(ids):
            executor = ConcurrentExecutor(
                config_vt, rng=np.random.default_rng(j)
            )
            result = executor.run(
                streams=[SingleShotStream(profiles[t], name="primary")],
                background=spoiler.readers(),
                pinned_bytes=spoiler.pinned_bytes,
            )
            events_vt += result.events
        scalar_eps = events_vt / (time.perf_counter() - start)
        start = time.perf_counter()
        results = run_batch(config_bt, specs)
        batched_eps = sum(r.events for r in results) / (
            time.perf_counter() - start
        )
        if i == 0:  # warmup round
            continue
        best_eps = max(best_eps, batched_eps)
        best_ratio = max(best_ratio, batched_eps / scalar_eps)
    return {
        "events_per_sec": best_eps,
        "speedup": best_ratio,
    }


def _campaign_batched_speedup(batch: int = 256) -> float:
    """End-to-end chunk speedup: batched campaign execution vs the
    scalar per-task loop, on a full spoiler sweep (every template at
    MPLs 1-8).  Also cross-checks that both paths return identical
    results — the batched engine's contract."""
    from repro.config import CampaignConfig
    from repro.core.training import (
        _CampaignContext,
        _execute_campaign_chunk,
        _execute_campaign_task,
    )

    ids = tuple(TemplateCatalog().template_ids)
    tasks = [("spoiler", t, m) for t in ids for m in range(1, 9)]

    def context(engine: str) -> "_CampaignContext":
        config = SystemConfig(
            simulation=SimulationConfig(engine=engine),
            campaign=CampaignConfig(jobs=1, batch_size=batch),
        )
        return _CampaignContext(
            catalog=TemplateCatalog(config=config).subset(ids),
            steady=SteadyStateConfig(),
            config_seed=config.simulation.seed,
            batch_size=batch,
        )

    scalar_ctx = context("virtual_time")
    best_scalar = float("inf")
    reference = None
    for i in range(4):
        start = time.perf_counter()
        reference = [_execute_campaign_task(scalar_ctx, t) for t in tasks]
        if i > 0:
            best_scalar = min(best_scalar, time.perf_counter() - start)

    batched_ctx = context("batched")
    best_batched = float("inf")
    for i in range(4):
        start = time.perf_counter()
        results = _execute_campaign_chunk(batched_ctx, tasks)
        if i > 0:
            best_batched = min(best_batched, time.perf_counter() - start)
    if results != reference:
        raise AssertionError(
            "batched campaign chunk diverged from the scalar task loop"
        )
    return best_scalar / best_batched


def _campaign_seconds(repeats: int = 3) -> float:
    catalog = TemplateCatalog().subset(SMALL_TEMPLATES)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        collect_training_data(
            catalog,
            mpls=(2, 3),
            lhs_runs_per_mpl=2,
            steady_config=SteadyStateConfig(samples_per_stream=3),
            jobs=1,
        )
        best = min(best, time.perf_counter() - start)
    return best


def _sched_metrics() -> Dict[str, float]:
    """Scheduling hot-path numbers: decision rate, replay rate, and the
    wall-clock cost of one predictive decision."""
    from repro.apps.admission import ContenderBackend
    from repro.core.contender import Contender
    from repro.sched.policies import make_policy
    from repro.sched.replay import replay_trace
    from repro.sched.traces import TemplateDistribution, poisson_trace

    ids = (22, 26, 32, 62, 65, 71, 82)
    catalog = TemplateCatalog().subset(ids)
    backend = ContenderBackend(
        Contender(
            collect_training_data(
                catalog,
                mpls=(2, 3),
                lhs_runs_per_mpl=2,
                steady_config=SteadyStateConfig(samples_per_stream=3),
                jobs=1,
            )
        )
    )
    trace = poisson_trace(
        TemplateDistribution.uniform(ids), rate=1.0 / 120.0, count=40, seed=3
    )

    # Predictive decision throughput over representative queue states:
    # running mixes of 1-2 (the MPLs the campaign covers) and queues
    # deep enough to fill the policy's default window of 8 — decision
    # cost is a function of the scored window, so the gate measures a
    # full one.
    predictive = make_policy("predictive", backend, max_mpl=3)
    states = [
        ((26,), (65, 71, 82, 22, 32, 62, 26, 71)),
        ((65, 71), (26, 82, 32, 62, 22, 71, 65, 82)),
        ((82,), (22, 26, 62, 71, 32, 65, 82, 26)),
        ((22, 32), (65, 26, 82, 71, 62, 22, 32, 65)),
    ]
    best = float("inf")
    for i in range(6):
        start = time.perf_counter()
        for _ in range(25):
            for running, queue in states:
                predictive.pick(0.0, running, queue)
        elapsed = time.perf_counter() - start
        if i > 0:  # warmup round
            best = min(best, elapsed)
    decisions_per_sec = (25 * len(states)) / best

    # Replay throughput (FIFO isolates the simulator from the model) and
    # per-decision cost inside a real predictive replay.
    best_replay = float("inf")
    decision_seconds = float("inf")
    for i in range(4):
        start = time.perf_counter()
        replay_trace(trace, make_policy("fifo"), catalog, max_mpl=3)
        elapsed = time.perf_counter() - start
        result = replay_trace(trace, predictive, catalog, max_mpl=3)
        if i > 0:
            best_replay = min(best_replay, elapsed)
            decision_seconds = min(
                decision_seconds, result.decision_seconds / result.decisions
            )
    return {
        "decisions_per_sec": decisions_per_sec,
        "replay_queries_per_sec": len(trace) / best_replay,
        "decision_seconds": decision_seconds,
    }


def _eval_metrics() -> Dict[str, float]:
    """Evaluation-harness numbers: matrix scoring throughput and the
    ranking floor.  One campaign is shared across the timing rounds; a
    round covers candidate-set expansion, simulated ground truth, and
    both backends scored, so scenarios/sec is the end-to-end rate an
    ``repro eval compare`` run sees."""
    from repro.eval import default_matrix, named_backends, run_matrix

    ids = (22, 26, 32, 62, 65, 71, 82)
    catalog = TemplateCatalog().subset(ids)
    backends = named_backends(
        collect_training_data(
            catalog,
            mpls=(2,),
            lhs_runs_per_mpl=2,
            steady_config=SteadyStateConfig(samples_per_stream=3),
            jobs=1,
        )
    )
    matrix = default_matrix(mpls=(2,), window=3, sets=2)
    steady = SteadyStateConfig(samples_per_stream=3)
    best = float("inf")
    result = None
    for i in range(4):
        start = time.perf_counter()
        result = run_matrix(
            catalog, backends, matrix=matrix, seed=7, steady=steady, jobs=1
        )
        elapsed = time.perf_counter() - start
        if i > 0:  # warmup round
            best = min(best, elapsed)
    return {
        "scenarios_per_sec": len(matrix) / best,
        "pairwise_accuracy": result.report_for("qs").pairwise_accuracy,
    }


def measure() -> Dict[str, Dict[str, object]]:
    """All gated metrics.  ``higher_is_better`` decides the regression
    direction; throughput regresses downward, wall-clock upward."""
    catalog = TemplateCatalog()
    mpl4 = _engine_workload(catalog, 4)
    mpl8 = _engine_workload(catalog, 8)
    sched = _sched_metrics()
    evals = _eval_metrics()
    batched = _batched_metrics()
    serving = _serving_throughput_metrics()
    metrics = {
        "engine_virtual_time_events_per_sec_mpl4": {
            "value": _events_per_sec("virtual_time", mpl4),
            "unit": "events/sec",
            "higher_is_better": True,
        },
        "engine_virtual_time_events_per_sec_mpl8": {
            "value": _events_per_sec("virtual_time", mpl8),
            "unit": "events/sec",
            "higher_is_better": True,
        },
        "engine_reference_events_per_sec_mpl8": {
            "value": _events_per_sec("reference", mpl8),
            "unit": "events/sec",
            "higher_is_better": True,
        },
        # The batched engine's reason to exist: lockstep advancement of
        # many independent campaign runs.  The floor is absolute — on
        # any machine, batching spoiler-style runs must stay at least
        # 5x faster per run than the scalar virtual-time loop.
        "engine_batched_events_per_sec": {
            "value": batched["events_per_sec"],
            "unit": "events/sec",
            "higher_is_better": True,
        },
        "engine_batched_speedup": {
            "value": batched["speedup"],
            "unit": "x",
            "higher_is_better": True,
            "min_value": 5.0,
        },
        # End-to-end campaign chunk: includes the per-task plumbing and
        # the canonical-profile cache, so the ratio is what campaign
        # callers actually see on a spoiler sweep.  Amdahl holds it
        # below the pure-engine ratio (plan compilation and result
        # collection don't batch), and machine load moves the measured
        # value between ~1.45x and ~1.65x — the floor sits below that
        # band so the gate asserts the win without flaking.
        "campaign_batched_speedup": {
            "value": _campaign_batched_speedup(),
            "unit": "x",
            "higher_is_better": True,
            "min_value": 1.2,
        },
        "campaign_small_serial_seconds": {
            "value": _campaign_seconds(),
            "unit": "seconds",
            "higher_is_better": False,
        },
        # An absolute gate, not a baseline-relative one: attaching a
        # metrics registry to the virtual-time engine (the default
        # instrumentation tier — the opt-in engine_phase_timings debug
        # tier is exempt) may cost at most 5% of event throughput, on
        # any machine.
        "engine_instrumentation_overhead": {
            "value": _instrumentation_overhead(mpl8),
            "unit": "fraction",
            "higher_is_better": False,
            "max_value": 0.05,
        },
        # Same contract for the blame-attribution hook: recording phase
        # intervals for repro.explain on the virtual-time engine may
        # cost at most 5% of event throughput, on any machine — the
        # hook stays cheap enough to attach wherever a blame report
        # might be wanted afterwards.
        "explain_attribution_overhead": {
            "value": _attribution_overhead(mpl8),
            "unit": "fraction",
            "higher_is_better": False,
            "max_value": 0.05,
        },
        # Absolute gate on the lifecycle feedback loop: feeding one
        # residual into the drift monitor may cost at most 5% of one
        # prediction — an observe-per-predict serving workload must not
        # meaningfully slow the hot path.
        "serving_residual_ingestion_overhead": {
            "value": _residual_ingestion_overhead(),
            "unit": "fraction",
            "higher_is_better": False,
            "max_value": 0.05,
        },
        # The serving tier's reason to exist: the multi-worker front end
        # driven through predict-batch must beat the single-process
        # threaded plain-predict ceiling by at least 10x.  The floor is
        # live — 10x whatever the ceiling measures on THIS machine in
        # the same run, both sides interleaved round-for-round — so the
        # gate holds on any hardware without a committed constant.
        "serving_predictions_per_sec": {
            "value": serving["predictions_per_sec"],
            "unit": "predictions/sec",
            "higher_is_better": True,
            "min_value": 10.0 * serving["ceiling_qps"],
        },
        # Interactive latency must not regress while batch throughput
        # scales: p99 of plain /v1/predict against the multi-worker
        # tier, under the same 4-connection load.
        "serving_predict_p99_ms": {
            "value": serving["p99_ms"],
            "unit": "ms",
            "higher_is_better": False,
            "max_value": 50.0,
        },
        # Prediction-driven scheduling hot paths: how fast the
        # predictive policy ranks a queue, and how fast the replay
        # simulator turns a trace into percentiles.
        "scheduler_decisions_per_sec": {
            "value": sched["decisions_per_sec"],
            "unit": "decisions/sec",
            "higher_is_better": True,
        },
        "sched_replay_queries_per_sec": {
            "value": sched["replay_queries_per_sec"],
            "unit": "queries/sec",
            "higher_is_better": True,
        },
        # Absolute gate, like the instrumentation overhead above: one
        # predictive admission decision (window 8, MPL <= 3) may cost at
        # most 50 ms of wall clock on any machine — the budget that
        # keeps the policy viable at real queue depths.
        "sched_decision_overhead": {
            "value": sched["decision_seconds"],
            "unit": "seconds/decision",
            "higher_is_better": False,
            "max_value": 0.05,
        },
        # Ranking-quality harness throughput: end-to-end scenario
        # scoring rate (candidate expansion + simulated ground truth +
        # two backends), gated against the committed baseline.
        "eval_scenarios_per_sec": {
            "value": evals["scenarios_per_sec"],
            "unit": "scenarios/sec",
            "higher_is_better": True,
        },
        # Absolute decision-quality floor, on any machine: the fitted
        # QS predictor must order candidate mixes better than a coin
        # flip on the seeded matrix, or predictions have stopped
        # carrying schedulable signal.
        "eval_pairwise_accuracy": {
            "value": evals["pairwise_accuracy"],
            "unit": "fraction",
            "higher_is_better": True,
            "min_value": 0.5,
        },
    }
    return metrics


def _instrumentation_overhead(per_stream, repeats: int = 20) -> float:
    # Measured interleaved, not as two separate best-of-N batches: on a
    # shared box the background load drifts on the scale of one batch,
    # which would charge (or credit) the difference to instrumentation.
    # Alternating run-for-run samples both variants under the same
    # conditions, and best-of-N still converges to each true floor.
    config = SystemConfig(simulation=SimulationConfig(engine="virtual_time"))
    best_plain = best_instr = float("inf")
    for i in range(repeats + 1):
        for instrumented in (False, True):
            executor = ConcurrentExecutor(
                config,
                rng=np.random.default_rng(1),
                metrics=Registry() if instrumented else None,
            )
            streams = [
                _ListStream(profiles=ps, name=f"s{j}")
                for j, ps in enumerate(per_stream)
            ]
            start = time.perf_counter()
            executor.run(streams)
            elapsed = time.perf_counter() - start
            if i == 0:  # warmup pair
                continue
            if instrumented:
                best_instr = min(best_instr, elapsed)
            else:
                best_plain = min(best_plain, elapsed)
    # An instrumented floor below the plain floor is jitter, not a
    # negative cost.
    return max(0.0, best_instr / best_plain - 1.0)


def _attribution_overhead(
    per_stream, repeats: int = 8, rounds: int = 8
) -> float:
    # Same interleaved scheme as _instrumentation_overhead — alternate
    # plain and recorder-attached runs pair-by-pair, best-of-N floors,
    # clamp jitter-negative ratios to zero — with two hardening twists,
    # because the hook's true cost (~1%) is far enough under the
    # ceiling that only measurement noise can fail the gate:
    #
    # * runs are timed on ``process_time``, not wall clock.  One engine
    #   run is ~10 ms, and on a shared box scheduler steal and
    #   frequency drift move wall time by double-digit percents on the
    #   scale of a batch — CPU time is immune to steal and much
    #   steadier round-to-round;
    # * the best-of-N pass runs several independent *rounds* and the
    #   lowest round ratio is reported.  Allocator layout and frequency
    #   state are sticky across a whole round, so a single pass can
    #   carry a bias that interleaving cannot cancel; noise only ever
    #   adds time, so the minimum over rounds converges to the true
    #   ratio, while a hook that genuinely cost more than the ceiling
    #   would fail every round and still fails the gate.
    #
    # The recorder is the blame attribution hook (repro.explain) on
    # the virtual-time engine.
    from repro.explain import ExplainRecorder

    config = SystemConfig(simulation=SimulationConfig(engine="virtual_time"))
    ratio = float("inf")
    for _ in range(rounds):
        best_plain = best_attr = float("inf")
        for i in range(repeats + 1):
            for attributing in (False, True):
                executor = ConcurrentExecutor(
                    config,
                    rng=np.random.default_rng(1),
                    recorder=ExplainRecorder() if attributing else None,
                )
                streams = [
                    _ListStream(profiles=ps, name=f"s{j}")
                    for j, ps in enumerate(per_stream)
                ]
                start = time.process_time()
                executor.run(streams)
                elapsed = time.process_time() - start
                if i == 0:  # warmup pair
                    continue
                if attributing:
                    best_attr = min(best_attr, elapsed)
                else:
                    best_plain = min(best_plain, elapsed)
        ratio = min(ratio, max(0.0, best_attr / best_plain - 1.0))
    return ratio


def _residual_ingestion_overhead(
    http_batch: int = 200, http_repeats: int = 4, ingest_calls: int = 5000
) -> float:
    # Amortized cost of one ResidualMonitor.ingest (the work /v1/observe
    # adds on top of plain request handling, metrics registry attached
    # as in serving) relative to the floor of one served /v1/predict
    # request.  The denominator is the *request* cost, not a bare
    # Contender.predict_known call: the monitor rides on the serving
    # path, where HTTP handling and instruments dominate, and that is
    # the path the <= 5% ceiling protects.
    import tempfile

    from repro.config import LifecycleConfig, ServingConfig
    from repro.core.contender import Contender
    from repro.lifecycle.monitor import ResidualMonitor
    from repro.serving.client import PredictionClient
    from repro.serving.registry import save_artifact
    from repro.serving.server import PredictionServer

    catalog = TemplateCatalog().subset(SMALL_TEMPLATES[:4])
    model = Contender(
        collect_training_data(
            catalog,
            mpls=(2,),
            lhs_runs_per_mpl=1,
            steady_config=SteadyStateConfig(samples_per_stream=2),
            jobs=1,
        )
    )
    ids = sorted(catalog.template_ids)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.json"
        save_artifact(model, path)
        server = PredictionServer.from_artifact(
            path, config=ServingConfig(port=0), lifecycle=LifecycleConfig()
        )
        with server:
            client = PredictionClient("127.0.0.1", server.port)
            for _ in range(30):  # warmup: sockets, caches, JIT-warm dicts
                client.predict(ids[0], (ids[0], ids[1]))
            best_request = float("inf")
            for _ in range(http_repeats):
                start = time.perf_counter()
                for _ in range(http_batch):
                    client.predict(ids[0], (ids[0], ids[1]))
                best_request = min(
                    best_request, (time.perf_counter() - start) / http_batch
                )

    monitor = ResidualMonitor(LifecycleConfig(), metrics=Registry())
    # Stationary residuals: the steady no-drift regime is the hot path.
    best_ingest = float("inf")
    for i in range(4):
        start = time.perf_counter()
        for j in range(ingest_calls):
            r = 0.01 if j % 2 else -0.01
            monitor.ingest(ids[0], predicted=1.0 - r, observed=1.0)
        elapsed = (time.perf_counter() - start) / ingest_calls
        if i > 0:  # first batch is warmup
            best_ingest = min(best_ingest, elapsed)
    return best_ingest / best_request


def _serving_throughput_metrics(
    rounds: int = 4, requests: int = 2000, batch: int = 64
) -> Dict[str, float]:
    """Multi-worker serving tier throughput vs the single-process ceiling.

    Starts both front ends over the same artifact and alternates
    measurement rounds between them, so machine-load drift lands on both
    sides of the ratio.  The ceiling is the threaded single-process
    server driven with plain ``/v1/predict`` round trips — the old
    tier's best case — and the tier number is the multi-worker server
    driven through ``/v1/predict-batch``, where coalesced requests
    evaluate with one vectorized model pass.  The p99 is taken from
    plain predicts against the multi-worker tier (interactive latency
    must not regress while batch throughput scales).
    """
    import tempfile

    from repro.config import ServingConfig
    from repro.core.contender import Contender
    from repro.serving.client import LoadGenerator, mix_pool_workload
    from repro.serving.frontend import MultiWorkerServer, multiworker_supported
    from repro.serving.registry import save_artifact
    from repro.serving.server import PredictionServer

    catalog = TemplateCatalog().subset(SMALL_TEMPLATES[:4])
    model = Contender(
        collect_training_data(
            catalog,
            mpls=(2,),
            lhs_runs_per_mpl=1,
            steady_config=SteadyStateConfig(samples_per_stream=2),
            jobs=1,
        )
    )
    ids = sorted(catalog.template_ids)
    workload = mix_pool_workload(
        ids, requests=requests, pool_size=32, mpl=2, seed=0
    )

    supported, reason = multiworker_supported()
    workers = 2 if supported else 1
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.json"
        save_artifact(model, path)
        threaded = PredictionServer.from_artifact(
            path, config=ServingConfig(port=0)
        ).start()
        tier = (
            MultiWorkerServer(
                path, ServingConfig(port=0, worker_processes=workers)
            ).start()
            if supported
            else None
        )
        tier_host, tier_port = (
            (tier.host, tier.port) if tier else (threaded.host, threaded.port)
        )
        try:
            best_ceiling = best_tier = best_ratio = 0.0
            best_p99 = float("inf")
            for i in range(rounds + 1):
                ceiling = LoadGenerator(
                    threaded.host, threaded.port, submitters=4
                ).run(workload)
                batched = LoadGenerator(
                    tier_host, tier_port, submitters=4, batch_size=batch
                ).run(workload)
                plain = LoadGenerator(
                    tier_host, tier_port, submitters=4
                ).run(workload)
                if i == 0:  # warmup round: sockets, caches, workers
                    continue
                best_ceiling = max(best_ceiling, ceiling.qps)
                best_tier = max(best_tier, batched.qps)
                best_ratio = max(best_ratio, batched.qps / ceiling.qps)
                best_p99 = min(best_p99, plain.p99_ms)
        finally:
            threaded.shutdown()
            if tier is not None:
                tier.shutdown()
    return {
        "ceiling_qps": best_ceiling,
        "predictions_per_sec": best_tier,
        "speedup": best_ratio,
        "p99_ms": best_p99,
    }


def _speedup(metrics) -> float:
    vt = metrics["engine_virtual_time_events_per_sec_mpl8"]["value"]
    ref = metrics["engine_reference_events_per_sec_mpl8"]["value"]
    return vt / ref


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="re-measure and rewrite BENCH_baseline.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help="allowed fractional regression (default 0.20)",
    )
    args = parser.parse_args()

    print("measuring hot-path benchmarks (best-of-N)...")
    metrics = measure()
    print(f"virtual-time / reference speedup at MPL 8: {_speedup(metrics):.2f}x")

    if args.update:
        BASELINE_PATH.write_text(
            json.dumps({"metrics": metrics}, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update first")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())["metrics"]

    failures = []
    width = max(len(name) for name in metrics)
    for name, current in metrics.items():
        if "max_value" in current:
            # Absolute gate: the committed ceiling applies on every
            # machine, with or without a baseline entry.
            value, ceiling = current["value"], current["max_value"]
            regressed = value > ceiling
            verdict = "FAIL" if regressed else "ok"
            print(
                f"{name:<{width}}  {value:>12.4f} "
                f"{current['unit']:<10} (ceiling {ceiling})  {verdict}"
            )
            if regressed:
                failures.append(name)
            continue
        if "min_value" in current:
            # Absolute floor — the mirror of max_value, used for
            # speedup ratios that must hold on any machine.
            value, floor = current["value"], current["min_value"]
            regressed = value < floor
            verdict = "FAIL" if regressed else "ok"
            print(
                f"{name:<{width}}  {value:>12.4f} "
                f"{current['unit']:<10} (floor {floor})  {verdict}"
            )
            if regressed:
                failures.append(name)
            continue
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  (no baseline entry — skipped)")
            continue
        new, old = current["value"], base["value"]
        if current["higher_is_better"]:
            change = new / old - 1.0  # negative = regression
            regressed = change < -args.tolerance
        else:
            change = old / new - 1.0  # negative = slower than baseline
            regressed = change < -args.tolerance
        verdict = "FAIL" if regressed else "ok"
        print(
            f"{name:<{width}}  {old:>12.1f} -> {new:>12.1f} "
            f"{current['unit']:<10} ({change:+.1%})  {verdict}"
        )
        if regressed:
            failures.append(name)

    if failures:
        print(
            f"\nREGRESSION: {len(failures)} metric(s) more than "
            f"{args.tolerance:.0%} worse than baseline: {', '.join(failures)}"
        )
        print(
            "If the slowdown is intentional, rerun with --update and "
            "commit the new baseline."
        )
        return 1
    print(f"\nall metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
