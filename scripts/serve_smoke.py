#!/usr/bin/env python3
"""Smoke test for the serving stack: pack -> serve -> 50 predictions.

Exercises the full deployment path in one process tree: collect a small
training campaign, pack it into a model artifact, start the HTTP
prediction server on an ephemeral port, issue 50 predictions through
the client, and check a sample against the in-process model.  Exits
non-zero (with a message on stderr) on any failure, so it can gate CI:

    make serve-smoke        # or: python scripts/serve_smoke.py
"""

import sys
import tempfile
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # a checkout without `make install`
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import ServingConfig
from repro.core.contender import Contender
from repro.core.training import collect_training_data
from repro.sampling.steady_state import SteadyStateConfig
from repro.serving import (
    PredictionClient,
    PredictionServer,
    mix_pool_workload,
    save_artifact,
)
from repro.workload.catalog import TemplateCatalog

TEMPLATES = (22, 26, 62, 65, 71)
REQUESTS = 50


def main() -> int:
    print("serve-smoke: collecting small training campaign ...")
    data = collect_training_data(
        TemplateCatalog().subset(TEMPLATES),
        mpls=(2,),
        lhs_runs_per_mpl=1,
        steady_config=SteadyStateConfig(samples_per_stream=3),
    )
    contender = Contender(data)

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        artifact = Path(tmp) / "model.json"
        info = save_artifact(contender, artifact)
        print(f"serve-smoke: packed {info.version} -> {artifact.name}")

        config = ServingConfig(port=0, workers=2, batch_window=0.001)
        with PredictionServer.from_artifact(artifact, config=config) as server:
            print(f"serve-smoke: serving on {server.host}:{server.port}")
            workload = mix_pool_workload(
                contender.template_ids,
                requests=REQUESTS,
                pool_size=8,
                seed=11,
            )
            with PredictionClient(server.host, server.port) as client:
                if client.health().status != "ok":
                    raise AssertionError("health endpoint not ok")
                for request in workload:
                    result = client.predict(request.primary, request.mix)
                    if not result.latency > 0:
                        raise AssertionError(
                            f"non-positive latency for {request}"
                        )
                sample = workload[0]
                served = client.predict(sample.primary, sample.mix).latency
                direct = contender.predict_known(sample.primary, sample.mix)
                if served != direct:
                    raise AssertionError(
                        f"served {served!r} != direct {direct!r}"
                    )
                hit_rate = client.stats()["cache"]["hit_rate"]
            print(
                f"serve-smoke: {REQUESTS} predictions ok, sample matches "
                f"direct model exactly, cache hit rate {hit_rate:.0%}"
            )
    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except AssertionError as exc:
        print(f"serve-smoke: FAIL: {exc}", file=sys.stderr)
        raise SystemExit(1)
