#!/usr/bin/env python3
"""Maintainer tool: calibration tables for the evaluation workload.

The 25 template definitions carry selectivities, CPU factors, and
projections calibrated so that the workload matches the paper's
behavioural notes (see ``repro.workload.templates``).  When touching
the engine's cost constants or the template builders, run this script
and check the REQUIREMENTS column stays green.

    python scripts/calibrate_workload.py
"""

from repro.engine.spoiler import measure_spoiler_latency
from repro.units import fmt_bytes
from repro.workload import TemplateCatalog

#: Behavioural requirements from the paper (template id -> check).
REQUIREMENTS = {
    "latency band": lambda rows: all(130 <= r["latency"] <= 1100 for r in rows.values()),
    "io-bound >= 96%": lambda rows: all(
        rows[t]["io"] >= 0.96 for t in (26, 33, 61, 71)
    ),
    "cpu templates < 60% io": lambda rows: all(
        rows[t]["io"] < 0.60 for t in (65, 90)
    ),
    "memory ws > 2 GiB": lambda rows: all(
        rows[t]["ws"] > 2 * 1024**3 for t in (2, 22)
    ),
    "spoiler growth order 62 < 71 < 22": lambda rows: (
        rows[62]["growth5"] < rows[71]["growth5"] < rows[22]["growth5"]
    ),
}


def main() -> None:
    catalog = TemplateCatalog()
    rows = {}
    print(f"{'id':>4} {'latency':>9} {'io%':>6} {'ws':>10} {'growth@5':>9}  cat")
    for tid in catalog.template_ids:
        stats = catalog.run_isolated(tid)
        growth5 = (
            measure_spoiler_latency(catalog.profile(tid), 5, catalog.config).latency
            / stats.latency
        )
        rows[tid] = {
            "latency": stats.latency,
            "io": stats.io_fraction,
            "ws": stats.working_set_bytes,
            "growth5": growth5,
        }
        print(
            f"{tid:>4} {stats.latency:>8.1f}s {stats.io_fraction:>5.1%} "
            f"{fmt_bytes(stats.working_set_bytes):>10} {growth5:>8.2f}x  "
            f"{catalog.spec(tid).category}"
        )

    print("\nrequirements:")
    failures = 0
    for name, check in REQUIREMENTS.items():
        ok = check(rows)
        failures += not ok
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    raise SystemExit(1 if failures else 0)


if __name__ == "__main__":
    main()
