#!/usr/bin/env python
"""Dependency-free line-coverage gate for the obs and serving layers.

The container this repo targets ships no ``coverage``/``pytest-cov``, so
this script measures line coverage itself: it installs a trace function
(``sys.settrace`` + ``threading.settrace``) that records executed lines
in the gated source trees, runs the matching unit-test tier in-process,
and compares against per-tree fail-under floors.

Executable lines come from the compiled code objects (``co_lines()``),
so docstrings, blank lines, and comments never count against a file;
lines ending in ``# pragma: no cover`` are excluded, as under the
classic coverage tool.

Workflow:

    make coverage                          # gate the floors
    python scripts/coverage_check.py -v    # ...and list missed lines

Tracing is confined to the gated trees, but the script must own the
process from the first import — run it directly, not under pytest.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from types import CodeType
from typing import Dict, Set, Tuple

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: (source tree, tests that exercise it, minimum line coverage).
GATES = [
    ("src/repro/obs", ["tests/unit/obs"], 0.90),
    (
        "src/repro/serving",
        ["tests/unit/serving", "tests/unit/test_cli.py"],
        0.80,
    ),
    ("src/repro/lifecycle", ["tests/unit/lifecycle"], 0.85),
    ("src/repro/eval", ["tests/unit/eval"], 0.85),
    ("src/repro/explain", ["tests/unit/explain"], 0.85),
]

_executed: Set[Tuple[str, int]] = set()
_watched: Dict[str, bool] = {}
_prefixes: Tuple[str, ...] = ()


def _is_watched(filename: str) -> bool:
    hit = _watched.get(filename)
    if hit is None:
        hit = filename.startswith(_prefixes)
        _watched[filename] = hit
    return hit


def _trace(frame, event, arg):
    if event == "call":
        # Return a local tracer only inside the gated trees; everything
        # else runs untraced after this one dictionary probe.
        return _trace if _is_watched(frame.f_code.co_filename) else None
    if event == "line":
        _executed.add((frame.f_code.co_filename, frame.f_lineno))
    return _trace


def _executable_lines(path: Path) -> Set[int]:
    source = path.read_text()
    excluded = {
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if line.rstrip().endswith("# pragma: no cover")
    }
    lines: Set[int] = set()

    def walk(code: CodeType) -> None:
        for _, _, lineno in code.co_lines():
            if lineno is not None and lineno not in excluded:
                lines.add(lineno)
        for const in code.co_consts:
            if isinstance(const, CodeType):
                walk(const)

    walk(compile(source, str(path), "exec"))
    return lines


def main() -> int:
    global _prefixes

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="list missed line numbers per file",
    )
    args = parser.parse_args()

    trees = [REPO / tree for tree, _, _ in GATES]
    _prefixes = tuple(str(tree) + "/" for tree in trees) + tuple(
        str(tree / "__init__.py") for tree in trees
    )

    test_paths = sorted({t for _, tests, _ in GATES for t in tests})
    print(f"tracing {', '.join(tree for tree, _, _ in GATES)}")
    print(f"running {', '.join(test_paths)} under the line tracer...")

    threading.settrace(_trace)
    sys.settrace(_trace)
    try:
        import pytest

        code = pytest.main(["-q", "--no-header", "-p", "no:cacheprovider",
                            *test_paths])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if code != 0:
        print(f"\ntest run failed (exit {code}); coverage not evaluated")
        return 1

    failures = []
    for tree, _, floor in GATES:
        root = REPO / tree
        total = hit = 0
        missing: Dict[str, Set[int]] = {}
        for path in sorted(root.rglob("*.py")):
            lines = _executable_lines(path)
            ran = {
                lineno
                for filename, lineno in _executed
                if filename == str(path)
            }
            missed = lines - ran
            total += len(lines)
            hit += len(lines) - len(missed)
            if missed:
                missing[path.relative_to(REPO).as_posix()] = missed
        ratio = hit / total if total else 1.0
        verdict = "ok" if ratio >= floor else "FAIL"
        print(
            f"{tree:<22} {hit:>5}/{total:<5} lines "
            f"({ratio:.1%}, floor {floor:.0%})  {verdict}"
        )
        if args.verbose:
            for name, missed in sorted(missing.items()):
                ranges = ",".join(str(n) for n in sorted(missed))
                print(f"  {name}: missing {ranges}")
        if ratio < floor:
            failures.append(tree)

    if failures:
        print(f"\nCOVERAGE: below floor in {', '.join(failures)}")
        return 1
    print("\nall coverage floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
