#!/usr/bin/env python
"""Explain smoke: blame a small mix, twice, from seed.

Runs the ``repro explain`` path end to end — steady-state simulation
with the attribution recorder attached, per-instance accounting,
per-template aggregation — and checks the two invariants the subsystem
promises: conservation (each template's blame rows plus its self
adjustments sum to its slowdown within rel 1e-6) and determinism
(everything derives from one seed, so a second run must reproduce the
first blame document bit-for-bit).
"""

from __future__ import annotations

import sys
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.explain import RESOURCES, explain_mix
from repro.workload.catalog import TemplateCatalog

MIX = (26, 71, 65)
REL_TOL = 1e-6


def run_once():
    catalog = TemplateCatalog().subset(sorted(set(MIX)))
    return explain_mix(catalog, MIX)


def main() -> int:
    first = run_once()
    print(first.format_table())
    assert first.max_residual <= REL_TOL, (
        f"conservation residual {first.max_residual:.3e} above {REL_TOL:.0e}"
    )
    for entry in first.templates:
        assert entry.samples > 0, f"t{entry.template_id} has no samples"
        for row in entry.rows.values():
            assert set(row) <= set(RESOURCES), "unknown resource axis"
    second = run_once()
    assert first.to_doc() == second.to_doc(), "blame report not reproducible"
    print(
        f"\nexplain smoke OK: mix {list(MIX)} blamed over "
        f"{len(first.templates)} templates, max residual "
        f"{first.max_residual:.2e}, reproducible"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
