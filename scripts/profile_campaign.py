#!/usr/bin/env python3
"""Profile the sampling campaign's serial hot path.

Runs a small in-process campaign (jobs=1, so the simulator itself is on
the profile rather than pool plumbing) under cProfile and prints the
top entries by cumulative time.  Use it before and after touching the
executor or the sampling layers to see where the time went:

    make profile-campaign   # or: python scripts/profile_campaign.py
"""

import cProfile
import pstats
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # a checkout without `make install`
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.training import collect_training_data
from repro.sampling.steady_state import SteadyStateConfig
from repro.workload.catalog import TemplateCatalog

SMALL_TEMPLATES = (26, 62, 71, 22, 65, 17)
TOP_N = 20


def main() -> int:
    catalog = TemplateCatalog().subset(SMALL_TEMPLATES)
    profiler = cProfile.Profile()
    profiler.enable()
    data = collect_training_data(
        catalog,
        mpls=(2, 3),
        lhs_runs_per_mpl=2,
        steady_config=SteadyStateConfig(samples_per_stream=3),
        jobs=1,
    )
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(TOP_N)
    print(
        f"campaign: {len(data.profiles)} templates, "
        f"{sum(len(v) for v in data.observations.values())} observations"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
