#!/usr/bin/env python3
"""Profile the sampling campaign's serial hot path.

Runs a small in-process campaign (jobs=1, so the simulator itself is on
the profile rather than pool plumbing) under cProfile and prints the
top entries by cumulative time.  Use it before and after touching the
executor or the sampling layers to see where the time went:

    make profile-campaign           # scalar virtual-time engine
    make profile-campaign-batched   # lockstep batched engine

With ``--batched`` the campaign runs through the batched engine
(``engine="batched"``, tasks grouped into lockstep batches), so the
profile shows the array-side cost centres — ``run_batch``, the
transition waves — instead of the scalar event loop.
"""

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # a checkout without `make install`
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import CampaignConfig, SimulationConfig, SystemConfig
from repro.core.training import collect_training_data
from repro.sampling.steady_state import SteadyStateConfig
from repro.workload.catalog import TemplateCatalog

SMALL_TEMPLATES = (26, 62, 71, 22, 65, 17)
TOP_N = 20


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--batched",
        action="store_true",
        help="run the campaign through the batched lockstep engine",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="tasks per lockstep batch (batched mode only)",
    )
    args = parser.parse_args()

    engine = "batched" if args.batched else "virtual_time"
    config = SystemConfig(
        simulation=SimulationConfig(engine=engine),
        campaign=CampaignConfig(jobs=1, batch_size=args.batch_size),
    )
    catalog = TemplateCatalog(config=config).subset(SMALL_TEMPLATES)
    profiler = cProfile.Profile()
    profiler.enable()
    data = collect_training_data(
        catalog,
        mpls=(2, 3),
        lhs_runs_per_mpl=2,
        steady_config=SteadyStateConfig(samples_per_stream=3),
        jobs=1,
    )
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(TOP_N)
    print(
        f"campaign ({engine}): {len(data.profiles)} templates, "
        f"{sum(len(v) for v in data.observations.values())} observations"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
